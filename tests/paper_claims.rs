//! Integration tests for the paper's qualitative claims (DESIGN.md §3).
//!
//! These drive the full stack — workload models through the out-of-order
//! core and memory hierarchy — and check the *relationships* the paper
//! reports. Absolute IPC values are not asserted (our substrate is a
//! synthetic-workload simulator, not SimOS on a 1997 testbed).

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;

const INSTRUCTIONS: u64 = 40_000;
const WARMUP: u64 = 8_000;

fn ipc(b: Benchmark, kib: u64, ports: PortModel, hit: u64, lb: bool) -> f64 {
    SimBuilder::new(b)
        .cache_size_kib(kib)
        .hit_cycles(hit)
        .ports(ports)
        .line_buffer(lb)
        .instructions(INSTRUCTIONS)
        .warmup(WARMUP)
        .run()
        .ipc()
}

fn avg<F: Fn(Benchmark) -> f64>(f: F) -> f64 {
    Benchmark::ALL.iter().map(|&b| f(b)).sum::<f64>() / 9.0
}

/// Claim 1 (Section 2.1 / 5): adding a second ideal port helps; third and
/// fourth ports show strongly diminishing returns.
#[test]
fn ports_show_diminishing_returns() {
    let reps = Benchmark::REPRESENTATIVES;
    let mean =
        |n: u32| reps.iter().map(|&b| ipc(b, 32, PortModel::Ideal(n), 1, false)).sum::<f64>() / 3.0;
    let one = mean(1);
    let two = mean(2);
    let three = mean(3);
    let four = mean(4);
    assert!(two > one * 1.01, "second port must help: {one:.3} -> {two:.3}");
    let first_gain = two - one;
    let second_gain = three - two;
    let third_gain = four - three;
    assert!(second_gain < first_gain * 0.6, "2->3 should gain much less than 1->2");
    assert!(third_gain < first_gain * 0.4, "3->4 should gain almost nothing");
}

/// Claim 2 (Section 4.1): pipelining costs IPC at a fixed cycle time, and
/// floating-point codes lose far less than integer codes.
#[test]
fn pipelining_costs_int_more_than_fp() {
    let loss = |b| {
        let base = ipc(b, 32, PortModel::Ideal(2), 1, false);
        let deep = ipc(b, 32, PortModel::Ideal(2), 3, false);
        (base - deep) / base
    };
    let gcc = loss(Benchmark::Gcc);
    let tomcatv = loss(Benchmark::Tomcatv);
    assert!(gcc > 0.08, "gcc must lose noticeably to pipelining: {gcc:.3}");
    assert!(tomcatv < gcc * 0.6, "tomcatv must hide most of it: {tomcatv:.3} vs {gcc:.3}");
    assert!(tomcatv >= -0.02, "pipelining cannot help tomcatv: {tomcatv:.3}");
}

/// Claim 4 (Section 4.2): the line buffer helps pipelined caches more than
/// single-cycle ones, and helps the two-port duplicate cache more than the
/// eight-way banked cache.
#[test]
fn line_buffer_helps_pipelined_duplicate_caches_most() {
    let gain = |ports, hit| {
        let base = ipc(Benchmark::Gcc, 32, ports, hit, false);
        ipc(Benchmark::Gcc, 32, ports, hit, true) / base - 1.0
    };
    let dup_1 = gain(PortModel::Duplicate, 1);
    let dup_3 = gain(PortModel::Duplicate, 3);
    let banked_1 = gain(PortModel::Banked(8), 1);
    assert!(dup_3 > dup_1 + 0.05, "LB gain must grow with depth: {dup_1:.3} -> {dup_3:.3}");
    assert!(dup_1 >= banked_1 - 0.01, "LB favors the two-port duplicate cache");
    assert!(dup_3 > 0.08, "three-cycle duplicate cache should gain >8%: {dup_3:.3}");
}

/// Claim 4b (Section 4.4): with line buffers, the duplicate cache is on
/// average at least as good as the eight-way banked cache.
#[test]
fn duplicate_with_line_buffer_matches_banked() {
    let dup = avg(|b| ipc(b, 32, PortModel::Duplicate, 2, true));
    let banked = avg(|b| ipc(b, 32, PortModel::Banked(8), 2, true));
    assert!(
        dup >= banked * 0.99,
        "duplicate+LB must be >= banked+LB on average: {dup:.3} vs {banked:.3}"
    );
}

/// Claim 5 (Section 4.3): the aggressive 6-cycle DRAM cache is no compelling
/// win over the 16 KB SRAM cache with an off-chip L2 — our synthetic streams
/// give the 512-byte rows somewhat more prefetch benefit than the paper's
/// traces, so we assert near-parity on average, a clear SRAM win for the
/// representative multiprogramming workload, and that each extra DRAM hit
/// cycle costs performance (see EXPERIMENTS.md for the full discussion).
#[test]
fn dram_cache_is_no_compelling_win() {
    let dram = |b: Benchmark, hit| {
        SimBuilder::new(b)
            .dram_cache(hit)
            .line_buffer(true)
            .instructions(INSTRUCTIONS)
            .warmup(WARMUP)
            .run()
            .ipc()
    };
    let sram_avg = avg(|b| ipc(b, 16, PortModel::Banked(8), 1, true));
    let dram6_avg = avg(|b| dram(b, 6));
    let dram8_avg = avg(|b| dram(b, 8));
    assert!(
        sram_avg > dram6_avg * 0.9,
        "SRAM must stay within 10% of the DRAM cache on average: {sram_avg:.3} vs {dram6_avg:.3}"
    );
    assert!(
        ipc(Benchmark::Database, 16, PortModel::Banked(8), 1, true) > dram(Benchmark::Database, 6),
        "the large-working-set database workload must prefer the SRAM system"
    );
    assert!(dram8_avg < dram6_avg, "slower DRAM must cost IPC: {dram6_avg:.3} -> {dram8_avg:.3}");
}

/// Claim 6 (Section 4.4 / Figure 8): at a fixed cycle time, IPC grows with
/// cache size all the way to 1 MB (the execution-time trade-off against
/// cycle time is Figure 9's, not IPC's).
#[test]
fn bigger_caches_help_ipc() {
    let at = |kib| avg(|b| ipc(b, kib, PortModel::Duplicate, 1, true));
    let small = at(4);
    let mid = at(32);
    let big = at(1024);
    assert!(mid > small, "32K must beat 4K: {small:.3} vs {mid:.3}");
    assert!(big > mid, "1M must beat 32K on average: {mid:.3} vs {big:.3}");
}

/// The benchmark groups keep their Figure 3 ordering end to end: the
/// multiprogramming group misses more and runs slower than SPEC95 integer.
#[test]
fn group_ordering_survives_the_full_stack() {
    let gcc = ipc(Benchmark::Gcc, 32, PortModel::Ideal(2), 1, false);
    let database = ipc(Benchmark::Database, 32, PortModel::Ideal(2), 1, false);
    assert!(
        gcc > database * 1.2,
        "gcc must comfortably outrun database: {gcc:.3} vs {database:.3}"
    );
}
