//! End-to-end determinism: every simulation is a pure function of
//! (configuration, seed), across all crates at once.

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::cpu::{Core, CpuConfig};
use hbcache::mem::{MemConfig, MemSystem, PortModel};
use hbcache::workloads::WorkloadGen;

#[test]
fn full_sim_results_are_bit_identical() {
    let run = || {
        SimBuilder::new(Benchmark::Vcs)
            .cache_size_kib(64)
            .hit_cycles(2)
            .ports(PortModel::Banked(8))
            .line_buffer(true)
            .instructions(20_000)
            .warmup(4_000)
            .cache_warm(400_000)
            .seed(9)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.ipc(), b.ipc());
    assert_eq!(a.run(), b.run());
    assert_eq!(a.mem(), b.mem());
}

#[test]
fn manual_core_assembly_matches_builder() {
    // Drive the stack by hand with the same parameters the builder uses and
    // confirm identical cycle counts.
    let build = || {
        let cfg = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate);
        let mut mem = MemSystem::new(cfg).unwrap();
        let mut gen = WorkloadGen::new(hbcache::workloads::Benchmark::Li, 42);
        for _ in 0..100_000u64 {
            if let Some(a) = gen.next_inst().addr() {
                mem.warm_touch(a);
            }
        }
        let mut core = Core::new(CpuConfig::paper(), mem, gen).unwrap();
        core.run(5_000);
        core.run(20_000)
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
    assert!(a.ipc() > 0.2);
}

#[test]
fn dram_mode_is_deterministic_too() {
    let run = || {
        SimBuilder::new(Benchmark::Apsi)
            .dram_cache(7)
            .line_buffer(true)
            .instructions(15_000)
            .warmup(3_000)
            .cache_warm(300_000)
            .run()
            .ipc()
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_streams_but_not_configs() {
    let at = |seed| {
        SimBuilder::new(Benchmark::Compress)
            .instructions(20_000)
            .warmup(4_000)
            .cache_warm(400_000)
            .seed(seed)
            .run()
            .ipc()
    };
    let a = at(1);
    let b = at(2);
    assert_ne!(a, b, "different seeds must differ");
    assert!((a - b).abs() / a < 0.3, "but only statistically: {a:.3} vs {b:.3}");
}
