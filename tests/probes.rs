//! Property tests for the `hbc-probe` observability layer: the per-cycle
//! stall attribution is complete (every cycle charged to exactly one
//! cause), the issue-width histogram covers every cycle, and the registry
//! mirrors the legacy stat getters — across benchmarks, port structures,
//! and hit times.
//!
//! Compiled only with the `probe` feature (`cargo test --features probe`),
//! since the per-cycle attribution is conditionally compiled.

#![cfg(feature = "probe")]

use hbc_ptest::check;
use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;
use hbcache::probe::StallCause;

const BENCHMARKS: [Benchmark; 3] = [Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Database];
const PORTS: [PortModel; 3] = [PortModel::Ideal(2), PortModel::Banked(8), PortModel::Duplicate];

fn sim(g: &mut hbc_ptest::Gen) -> SimBuilder {
    let b = *g.pick(&BENCHMARKS);
    let ports = *g.pick(&PORTS);
    SimBuilder::new(b)
        .cache_size_kib(32)
        .ports(ports)
        .hit_cycles(g.u64_in(1, 3))
        .line_buffer(g.bool())
        .seed(g.u64_in(1, 1 << 20))
        .instructions(4_000)
        .warmup(1_000)
        .cache_warm(50_000)
        .probes(true)
}

#[test]
fn stall_attribution_is_complete() {
    check("stall_attribution_is_complete", 12, |g| {
        let result = sim(g).run();
        let run = result.run();
        assert_eq!(
            run.stall.total(),
            run.cycles,
            "every measured cycle must be charged to exactly one stall cause"
        );
        let issue_total: u64 = run.issue_width.iter().sum();
        assert_eq!(issue_total, run.cycles, "issue-width histogram must cover every cycle");
    });
}

#[test]
fn registry_mirrors_legacy_getters() {
    check("registry_mirrors_legacy_getters", 8, |g| {
        let result = sim(g).run();
        let reg = result.probes().expect("probes enabled");
        let (run, mem) = (result.run(), result.mem());
        assert_eq!(reg.get("cpu.run.cycles"), Some(run.cycles));
        assert_eq!(reg.get("cpu.retire.instructions"), Some(run.instructions));
        assert_eq!(reg.get("cpu.retire.loads"), Some(run.loads));
        assert_eq!(reg.get("cpu.retire.mispredicts"), Some(run.mispredicts));
        assert_eq!(reg.get("mem.l1.load_hits"), Some(mem.l1_load_hits));
        assert_eq!(reg.get("mem.l1.load_misses"), Some(mem.l1_load_misses));
        assert_eq!(reg.get("mem.lb.hits"), Some(mem.lb_hits));
        for cause in StallCause::ALL {
            assert_eq!(reg.get(cause.probe_name()), Some(run.stall.get(cause)));
        }
    });
}

#[test]
fn probes_never_perturb_the_simulation() {
    check("probes_never_perturb_the_simulation", 6, |g| {
        let builder = sim(g);
        let plain = builder.clone().probes(false).run();
        let probed = builder.trace_window(64).run();
        assert_eq!(plain.ipc(), probed.ipc());
        assert_eq!(plain.mem(), probed.mem());
    });
}
