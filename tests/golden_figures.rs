//! Golden tests: figure CSVs regenerate bit-identically.
//!
//! These run in every feature combination — plain, `--features probe`,
//! `--features sanitize` — and compare against the same checked-in hashes,
//! so they prove the observability layer never perturbs published results:
//! the `probe` feature must be zero-cost *and* zero-effect.
//!
//! If a legitimate modelling change shifts the figures, regenerate the
//! constants with the command in the failure message.

use hbcache::core::experiments::{fig3, fig6, ExpParams};
use hbcache::core::Benchmark;

/// FNV-1a over the CSV bytes; dependency-free and stable across platforms.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Tiny but non-trivial parameters so the golden runs stay fast in debug
/// builds while still exercising the cycle-accurate core.
fn golden_params() -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 6_000;
    p.warmup = 1_500;
    p.cache_warm = 100_000;
    p.benchmarks = vec![Benchmark::Gcc];
    p
}

#[test]
fn fig3_csv_is_bit_identical() {
    let csv = fig3::run(&golden_params()).to_csv();
    assert_eq!(
        fnv1a(&csv),
        FIG3_HASH,
        "fig3 CSV drifted; if the change is intentional, update FIG3_HASH in {} \
         (actual hash of:\n{csv})",
        file!()
    );
}

#[test]
fn fig6_csv_is_bit_identical() {
    let csv = fig6::run(&golden_params()).to_csv();
    assert_eq!(
        fnv1a(&csv),
        FIG6_HASH,
        "fig6 CSV drifted; if the change is intentional, update FIG6_HASH in {} \
         (actual hash of:\n{csv})",
        file!()
    );
}

// Checked-in golden hashes. Regenerate by running these tests and copying
// the hashes printed in the failure message:
//   cargo test --test golden_figures -- --nocapture
const FIG3_HASH: u64 = 11038098731853009402;
const FIG6_HASH: u64 = 1898047440568716518;
