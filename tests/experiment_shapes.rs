//! Shape checks for every experiment driver: row/column counts, header
//! consistency, and CSV export — cheap guarantees that each table/figure
//! binary emits what EXPERIMENTS.md documents.

use hbcache::core::experiments::{
    fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, ExpParams,
};
use hbcache::core::Benchmark;

fn tiny() -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 4_000;
    p.warmup = 800;
    p.cache_warm = 150_000;
    p.benchmarks = vec![Benchmark::Li];
    p
}

#[test]
fn fig1_shape() {
    let t = fig1::run();
    assert_eq!(t.len(), 9);
    assert!(t.to_csv().starts_with("size,"));
}

#[test]
fn table1_shape() {
    assert_eq!(table1::run().len(), 9);
}

#[test]
fn table2_shape() {
    let t = table2::run(&tiny());
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0].len(), 8);
}

#[test]
fn fig3_shape() {
    let t = fig3::run(&tiny());
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0].len(), 10, "benchmark + nine sizes");
}

#[test]
fn fig4_shape() {
    let t = fig4::run(&tiny());
    assert_eq!(t.len(), 3, "three hit times");
    assert_eq!(t.rows()[0].len(), 6, "benchmark, hit, four port counts");
}

#[test]
fn fig5_shape() {
    let t = fig5::run(&tiny());
    assert_eq!(t.len(), 3);
    assert_eq!(t.rows()[0].len(), 7, "benchmark, hit, five bank counts");
}

#[test]
fn fig6_shape() {
    let t = fig6::run(&tiny());
    assert_eq!(t.len(), 6, "two organizations x three hit times");
}

#[test]
fn fig7_shape() {
    let t = fig7::run(&tiny());
    assert_eq!(t.len(), 3, "three DRAM hit times");
}

#[test]
fn fig8_shape() {
    let t = fig8::run(&tiny());
    assert_eq!(t.len(), 12, "(benchmark + average) x six series");
    assert_eq!(t.rows()[0].len(), 12, "benchmark, series, nine sizes, DRAM point");
    // DRAM point only on the 1-cycle series.
    assert_ne!(t.rows()[0][11], "-");
    assert_eq!(t.rows()[1][11], "-");
}

#[test]
fn fig9_shape() {
    let t = fig9::run(&tiny());
    assert_eq!(t.len(), 6, "(benchmark + average) x three depths");
    // One-cycle caches are unbuildable below 24 FO4: the first cells of the
    // 1~ row must be "-".
    let one_cycle_row = &t.rows()[0];
    assert_eq!(one_cycle_row[2], "-", "10 FO4 1~ must be unbuildable");
    assert_ne!(one_cycle_row[10], "-", "30 FO4 1~ must be buildable");
}
