//! Property-based tests over the public API, spanning crates.
//!
//! These use the deterministic in-repo harness (`hbc-ptest`): fixed case
//! counts drawn from fixed seeds, so the suite is a pure function of the
//! source tree.

use hbc_ptest::check_default;

use hbcache::isa::{DynInst, ExecMode, InstId, OpClass};
use hbcache::mem::{CacheArray, LineBuffer, MemConfig, MemSystem, PortModel};
use hbcache::timing::{pipeline, AccessTimeModel, CacheSize, Fo4, PortStructure, Technology};
use hbcache::workloads::{Benchmark, WorkloadGen};

/// Single-ported (and duplicate) access time is monotone non-decreasing
/// in capacity; the banked curve never undercuts it (its small-cache
/// wiring penalty makes it legitimately non-monotone below 16 KB).
#[test]
fn access_time_monotone() {
    check_default("access_time_monotone", |g| {
        let a = g.u64_in(12, 20);
        let b = g.u64_in(12, 20);
        let model = AccessTimeModel::default();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        for ports in [PortStructure::SinglePorted, PortStructure::Duplicate] {
            let t_small = model.access_time(CacheSize::from_bytes(1 << small), ports).unwrap();
            let t_large = model.access_time(CacheSize::from_bytes(1 << large), ports).unwrap();
            assert!(t_large >= t_small);
        }
        let single = model
            .access_time(CacheSize::from_bytes(1 << large), PortStructure::SinglePorted)
            .unwrap();
        let banked =
            model.access_time(CacheSize::from_bytes(1 << large), PortStructure::Banked8).unwrap();
        assert!(banked >= single);
    });
}

/// A cache that fits depth `d` also fits depth `d + 1` (the fit rule is
/// monotone in pipeline depth for cycle times above the latch overhead).
#[test]
fn pipeline_fit_monotone_in_depth() {
    check_default("pipeline_fit_monotone_in_depth", |g| {
        let tech = Technology::default();
        let access = g.f64_in(20.0, 60.0);
        let cycle = g.f64_in(tech.latch_overhead().get() + 0.1, 31.0);
        let depth = g.u32_in(1, 2);
        if pipeline::fits(Fo4::new(access), Fo4::new(cycle), &tech, depth) {
            assert!(pipeline::fits(Fo4::new(access), Fo4::new(cycle), &tech, depth + 1));
        }
    });
}

/// LRU caches never hold more lines than their capacity, and a line
/// just touched is always present.
#[test]
fn cache_array_invariants() {
    check_default("cache_array_invariants", |g| {
        let addrs = g.vec(1, 200, |g| g.u64_below(1_000_000));
        let mut cache = CacheArray::new(4 << 10, 2, 32);
        for &a in &addrs {
            cache.touch(a);
            assert!(cache.probe(a), "line just touched must be present");
            assert!(cache.occupancy() <= 128);
        }
    });
}

/// The line buffer obeys its capacity and only ever reports hits for
/// lines that were filled and not evicted.
#[test]
fn line_buffer_capacity() {
    check_default("line_buffer_capacity", |g| {
        let addrs = g.vec(1, 300, |g| g.u64_below(10_000));
        let mut lb = LineBuffer::new(8, 32);
        let mut fills = 0u64;
        for &a in &addrs {
            if !lb.lookup(a) {
                lb.fill(a);
                fills += 1;
            }
        }
        assert!(lb.hits() + fills == lb.lookups());
        assert!(lb.probe(*addrs.last().unwrap()), "most recent fill survives");
    });
}

/// Workload streams always produce legal instructions: sequential ids,
/// addresses only on memory ops, producers strictly older.
#[test]
fn workload_streams_are_well_formed() {
    check_default("workload_streams_are_well_formed", |g| {
        let bench = *g.pick(&Benchmark::ALL);
        let seed = g.u64_below(1000);
        let gen = WorkloadGen::new(bench, seed);
        for (i, inst) in gen.take(300).enumerate() {
            assert_eq!(inst.id().get(), i as u64);
            assert_eq!(inst.addr().is_some(), inst.is_mem());
            for src in inst.srcs().iter().flatten() {
                assert!(*src < inst.id());
            }
        }
    });
}

/// The memory system accepts any mix of loads and stores without
/// violating its own bookkeeping (serviced loads add up; pending stores
/// bounded by the buffer).
#[test]
fn mem_system_bookkeeping() {
    check_default("mem_system_bookkeeping", |g| {
        let ops = g.vec(1, 300, |g| (g.bool(), g.u64_below(100_000)));
        let cfg = MemConfig::paper_sram(8 << 10, 2, PortModel::Banked(8)).with_line_buffer();
        let mut mem = MemSystem::new(cfg).unwrap();
        let mut accepted_loads = 0u64;
        for (cycle, (is_load, addr)) in ops.iter().enumerate() {
            mem.begin_cycle(cycle as u64);
            if *is_load {
                if mem.try_load(*addr & !7).complete_at().is_some() {
                    accepted_loads += 1;
                }
            } else {
                let _ = mem.commit_store(*addr & !7);
            }
            mem.end_cycle();
            assert!(mem.pending_stores() <= 16);
            assert!(mem.misses_in_flight() <= 4);
        }
        assert_eq!(mem.stats().loads_serviced(), accepted_loads);
    });
}

/// Instruction construction is closed under the builder API.
#[test]
fn dyninst_builder_is_consistent() {
    check_default("dyninst_builder_is_consistent", |g| {
        let id = g.u64_in(1, 999);
        let dist = g.u64_in(1, 49);
        let inst = DynInst::new(InstId::new(id), OpClass::Load, ExecMode::User).with_addr(dist * 8);
        let inst = match InstId::new(id).back(dist) {
            Some(src) => inst.with_src(src),
            None => inst,
        };
        assert!(inst.is_mem());
        assert_eq!(inst.addr(), Some(dist * 8));
    });
}
