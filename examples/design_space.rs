//! Design-space exploration: for one benchmark, sweep cache size and
//! pipeline depth, then pick the best organization at several processor
//! cycle times — the decision procedure of the paper's Section 4.4.
//!
//! ```text
//! cargo run --release --example design_space [benchmark]
//! ```

use hbcache::core::exectime::scaled_memory_cycles;
use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;
use hbcache::timing::{pipeline, AccessTimeModel, Fo4, PortStructure, Technology};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("one of the nine Table 1 benchmark names"))
        .unwrap_or(Benchmark::Database);
    let model = AccessTimeModel::default();
    let tech = Technology::default();

    println!("design space for {benchmark}: duplicate cache + line buffer\n");
    println!("{:>9}  {:>5}  {:>9}  {:>7}  {:>12}", "cycle", "hit", "cache", "IPC", "ns/instr");
    let mut best: Option<(f64, String)> = None;
    for cycle in [30.0, 27.5, 25.0, 22.5, 20.0, 17.5, 15.0, 12.5, 10.0] {
        let cycle_fo4 = Fo4::new(cycle);
        let (l2, mem) = scaled_memory_cycles(cycle_fo4, &tech);
        for depth in 1..=3u64 {
            let Some(cache) = pipeline::max_cache_size(
                &model,
                PortStructure::Duplicate,
                cycle_fo4,
                &tech,
                depth as u32,
            ) else {
                continue;
            };
            let result = SimBuilder::new(benchmark)
                .cache_size_kib(cache.kib())
                .hit_cycles(depth)
                .ports(PortModel::Duplicate)
                .line_buffer(true)
                .l2_hit_cycles(l2)
                .mem_latency(mem)
                .instructions(40_000)
                .warmup(8_000)
                .run();
            let ns_per_instr = (result.run().cycles as f64 / result.run().instructions as f64)
                * tech.cycle_ns(cycle_fo4).get();
            println!(
                "{cycle:>6} FO4  {depth:>4}~  {:>9}  {:>7.3}  {ns_per_instr:>12.3}",
                cache.to_string(),
                result.ipc()
            );
            let label = format!("{cycle} FO4, {depth}-cycle {cache} cache");
            if best.as_ref().map(|(t, _)| ns_per_instr < *t).unwrap_or(true) {
                best = Some((ns_per_instr, label));
            }
        }
    }
    let (time, label) = best.expect("at least one buildable configuration");
    println!("\nbest organization: {label} ({time:.3} ns/instr)");
}
