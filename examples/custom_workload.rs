//! Building a custom workload: define a synthetic benchmark from scratch
//! (a streaming kernel with a small hot table) and find the cache size
//! where its miss rate collapses.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use hbcache::core::SimBuilder;
use hbcache::mem::PortModel;
use hbcache::workloads::{BenchmarkSpec, Group, PatternSpec, Table2Row, WorkloadGen};

fn stencil_kernel() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "stencil",
        description: "synthetic 5-point stencil with a 256 KB grid",
        group: Group::SpecFp95,
        table2: Table2Row {
            kernel_pct: 0.0,
            user_pct: 100.0,
            idle_pct: 0.0,
            load_pct: 32.0,
            store_pct: 10.0,
        },
        branch_frac: 0.04,
        branch_accuracy: 0.99,
        taken_frac: 0.9,
        fp_frac: 0.8,
        int_long_frac: 0.01,
        fp_long_frac: 0.02,
        dep_mean: 12.0,
        load_use_prob: 0.2,
        two_src_prob: 0.6,
        user_mem: vec![
            // Five interleaved sweeps over a 256 KB grid.
            (0.8, PatternSpec::Strided { footprint: 256 << 10, stride: 8, streams: 5 }),
            // A small coefficient table.
            (0.2, PatternSpec::Random { footprint: 4 << 10, reuse: 0.7 }),
        ],
        kernel_mem: vec![(1.0, PatternSpec::Stack { footprint: 4 << 10 })],
        processes: 1,
        ctx_interval: 0,
    }
}

fn main() {
    let spec = stencil_kernel();
    spec.validate().expect("consistent spec");

    // Check the generated stream matches the requested mix.
    let mut gen = WorkloadGen::from_spec(spec.clone(), 7);
    let stats = hbcache::workloads::StreamStats::characterize(&mut gen, 50_000);
    println!(
        "stream check: {:.1}% loads, {:.1}% stores, {:.1}% fp\n",
        stats.load_pct(),
        stats.store_pct(),
        stats.fp_pct()
    );

    println!("{:>7}  {:>7}  {:>14}", "cache", "IPC", "miss/instr");
    for kib in [16u64, 64, 128, 256, 512] {
        let result = SimBuilder::new(hbcache::core::Benchmark::Tomcatv) // placeholder benchmark id
            .spec(spec.clone())
            .cache_size_kib(kib)
            .ports(PortModel::Duplicate)
            .line_buffer(true)
            .instructions(60_000)
            .warmup(10_000)
            .run();
        println!(
            "{:>6}K  {:>7.3}  {:>13.2}%",
            kib,
            result.ipc(),
            100.0 * result.mem().load_miss_ratio()
        );
    }
    println!("\nThe 256 KB grid fits once the cache reaches 256 KB: watch the miss\nratio collapse and IPC jump there.");
}
