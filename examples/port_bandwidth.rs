//! Port bandwidth exploration (the Figure 4/5 story): how ideal ports,
//! external banks, and cache duplication trade off for one benchmark.
//!
//! ```text
//! cargo run --release --example port_bandwidth [benchmark]
//! ```

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("one of the nine Table 1 benchmark names"))
        .unwrap_or(Benchmark::Li);

    let ipc = |ports: PortModel| {
        SimBuilder::new(benchmark)
            .cache_size_kib(32)
            .ports(ports)
            .instructions(60_000)
            .warmup(10_000)
            .run()
            .ipc()
    };

    println!("{benchmark}: 32 KB single-cycle cache, fixed cycle time\n");
    println!("{:<16} {:>7}", "organization", "IPC");
    let base = ipc(PortModel::Ideal(1));
    for (label, ports) in [
        ("1 ideal port", PortModel::Ideal(1)),
        ("2 ideal ports", PortModel::Ideal(2)),
        ("3 ideal ports", PortModel::Ideal(3)),
        ("4 ideal ports", PortModel::Ideal(4)),
        ("2 banks", PortModel::Banked(2)),
        ("4 banks", PortModel::Banked(4)),
        ("8 banks", PortModel::Banked(8)),
        ("128 banks", PortModel::Banked(128)),
        ("duplicate", PortModel::Duplicate),
    ] {
        let v = ipc(ports);
        println!("{:<16} {:>7.3}  ({:+.1}% vs 1 port)", label, v, 100.0 * (v / base - 1.0));
    }
    println!(
        "\nWhat to look for (paper Sections 2.1/4.1): the second port pays, further\n\
         ports barely move; banks approach ideal ports from below as the bank\n\
         count grows; the duplicate cache behaves like two ideal ports for loads."
    );
}
