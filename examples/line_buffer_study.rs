//! The line-buffer story (paper Section 4.2): how a 32-entry level-zero
//! cache in the load/store unit raises port bandwidth and hides the latency
//! of pipelined caches — and how it flips the banked-vs-duplicate ranking.
//!
//! ```text
//! cargo run --release --example line_buffer_study
//! ```

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;

fn ipc(b: Benchmark, ports: PortModel, hit: u64, lb: bool) -> f64 {
    SimBuilder::new(b)
        .cache_size_kib(32)
        .hit_cycles(hit)
        .ports(ports)
        .line_buffer(lb)
        .instructions(60_000)
        .warmup(10_000)
        .run()
        .ipc()
}

fn main() {
    println!("32 KB caches, fixed cycle time. LB = 32-entry line buffer.\n");
    println!("{:<10} {:>4}  {:>17}  {:>17}", "benchmark", "hit", "8-way banked", "duplicate");
    println!("{:<10} {:>4}  {:>8} {:>8}  {:>8} {:>8}", "", "", "no LB", "LB", "no LB", "LB");
    for b in Benchmark::REPRESENTATIVES {
        for hit in 1..=3u64 {
            let bk = ipc(b, PortModel::Banked(8), hit, false);
            let bk_lb = ipc(b, PortModel::Banked(8), hit, true);
            let dp = ipc(b, PortModel::Duplicate, hit, false);
            let dp_lb = ipc(b, PortModel::Duplicate, hit, true);
            println!(
                "{:<10} {:>3}~  {:>8.3} {:>8.3}  {:>8.3} {:>8.3}",
                b.name(),
                hit,
                bk,
                bk_lb,
                dp,
                dp_lb
            );
        }
    }
    println!(
        "\nThe paper's observation to check: without a line buffer the banked cache\n\
         at least matches the duplicate cache, but with one the duplicate cache is\n\
         on average as good or better — and the line buffer's gain grows with the\n\
         cache pipeline depth because it returns recently used data in one cycle."
    );
}
