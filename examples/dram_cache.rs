//! The on-chip DRAM cache trade-off (paper Section 4.3): a 4 MB DRAM cache
//! behind a 16 KB row-buffer cache versus an equal-area SRAM hierarchy.
//!
//! ```text
//! cargo run --release --example dram_cache
//! ```

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;

fn main() {
    println!("4M on-chip DRAM cache (16K row-buffer L1, 512B rows) vs 16K SRAM + off-chip L2\n");
    println!(
        "{:<10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "benchmark", "SRAM 16K", "DRAM 6~", "DRAM 7~", "DRAM 8~"
    );
    for b in Benchmark::ALL {
        let sram = SimBuilder::new(b)
            .cache_size_kib(16)
            .ports(PortModel::Banked(8))
            .line_buffer(true)
            .instructions(40_000)
            .warmup(8_000)
            .run()
            .ipc();
        let dram: Vec<f64> = (6..=8)
            .map(|hit| {
                SimBuilder::new(b)
                    .dram_cache(hit)
                    .line_buffer(true)
                    .instructions(40_000)
                    .warmup(8_000)
                    .run()
                    .ipc()
            })
            .collect();
        println!(
            "{:<10}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}",
            b.name(),
            sram,
            dram[0],
            dram[1],
            dram[2]
        );
    }
    println!(
        "\nWhat to look for (paper Section 4.3): the 512-byte rows cost conflict\n\
         misses that the line buffer only partially hides, so on average the DRAM\n\
         cache trails the SRAM system — but streaming working sets that fit 4 MB\n\
         (tomcatv) flip the comparison, and each extra DRAM hit cycle costs a few\n\
         percent of performance."
    );
}
