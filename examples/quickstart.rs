//! Quickstart: simulate one benchmark on the paper's default machine and
//! print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbcache::core::{Benchmark, SimBuilder};
use hbcache::mem::PortModel;

fn main() {
    // gcc on a 32 KB two-way duplicate cache with a single-cycle hit and
    // the paper's line buffer in the load/store unit.
    let result = SimBuilder::new(Benchmark::Gcc)
        .cache_size_kib(32)
        .hit_cycles(1)
        .ports(PortModel::Duplicate)
        .line_buffer(true)
        .instructions(100_000)
        .warmup(10_000)
        .run();

    println!("benchmark          : {}", result.benchmark());
    println!("IPC                : {:.3}", result.ipc());
    println!("avg load latency   : {:.1} cycles", result.run().avg_load_latency());
    println!("line-buffer hits   : {}", result.mem().lb_hits);
    println!(
        "L1 load miss ratio : {:.2}% (line-buffer hits count as hits)",
        100.0 * result.mem().load_miss_ratio()
    );
    println!("L2 miss ratio      : {:.2}%", 100.0 * result.mem().l2_miss_ratio());
    println!("mispredicts        : {}", result.run().mispredicts);
}
