//! Validating the fixed-accuracy branch model: run a real gshare predictor
//! over each benchmark's synthetic branch-outcome stream and compare its
//! accuracy to the `branch_accuracy` the workload spec assumes.
//!
//! ```text
//! cargo run --release --example branch_prediction
//! ```

use hbcache::cpu::Gshare;
use hbcache::isa::OpClass;
use hbcache::workloads::{Benchmark, WorkloadGen};

fn main() {
    println!("{:<10}  {:>10}  {:>10}  {:>10}", "benchmark", "spec acc", "gshare acc", "branches");
    for b in Benchmark::ALL {
        let spec_acc = b.spec().branch_accuracy;
        let mut predictor = Gshare::new(13);
        // The stream has no PCs; synthesize stable per-site addresses from
        // a small rotating set, keyed off the branch's position in its
        // basic block (id modulo a window) — enough for gshare to build
        // per-context history.
        let mut gen = WorkloadGen::new(b, 42);
        let mut branches = 0u64;
        while branches < 100_000 {
            let inst = gen.next_inst();
            if inst.op() == OpClass::Branch {
                let pc = 0x1_0000 + (inst.id().get() % 64) * 4;
                predictor.predict_and_update(pc, inst.taken());
                branches += 1;
            }
        }
        println!(
            "{:<10}  {:>9.1}%  {:>9.1}%  {:>10}",
            b.name(),
            100.0 * spec_acc,
            100.0 * predictor.accuracy(),
            predictor.predictions()
        );
    }
    println!(
        "\nThe synthetic outcome streams are Bernoulli per branch, so gshare can\n\
         capture only the taken-rate bias, not per-site patterns; the spec's\n\
         branch_accuracy models the *additional* per-site predictability real\n\
         programs expose. The gap between the two columns is therefore the\n\
         structure the Bernoulli model abstracts away."
    );
}
