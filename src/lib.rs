//! `hbcache` — a simulator suite reproducing Wilson & Olukotun,
//! *"Designing High Bandwidth On-Chip Caches"* (ISCA 1997).
//!
//! This façade crate re-exports the workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`timing`] — FO4 delay units, CACTI-style model, Figure 1 curves,
//!   pipelining fit rules.
//! * [`isa`] — operation classes, R10000 latencies, dynamic instruction
//!   records.
//! * [`workloads`] — deterministic synthetic models of the paper's nine
//!   benchmarks.
//! * [`mem`] — the on-chip memory hierarchy: multi-ported / banked /
//!   duplicate L1, line buffer, MSHRs, L2, DRAM cache, buses.
//! * [`cpu`] — the four-issue dynamic superscalar processor model.
//! * [`core`] — experiment drivers reproducing every table and figure of
//!   the paper, plus the execution-time study.
//! * [`probe`] — the observability layer: counter/histogram registry,
//!   stall-cause attribution, and the cycle tracer (enable the `probe`
//!   feature for per-cycle data).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use hbcache::core::{SimBuilder, Benchmark};
//!
//! let result = SimBuilder::new(Benchmark::Gcc)
//!     .cache_size_kib(32)
//!     .instructions(20_000)
//!     .run();
//! assert!(result.ipc() > 0.5 && result.ipc() < 4.0);
//! ```

#![warn(missing_docs)]

pub use hbc_core as core;
pub use hbc_cpu as cpu;
pub use hbc_isa as isa;
pub use hbc_mem as mem;
pub use hbc_probe as probe;
pub use hbc_timing as timing;
pub use hbc_workloads as workloads;
