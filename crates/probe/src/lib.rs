//! Observability for the hbcache simulator: counters, histograms, stall
//! attribution, and cycle tracing.
//!
//! The paper's entire argument rests on *explaining* IPC differences across
//! port, pipelining, and DRAM configurations — bank conflicts, load
//! latency, line-buffer hits. This crate is the vocabulary the rest of the
//! workspace uses to answer "where did the cycles go?":
//!
//! * [`ProbeRegistry`] — a registry of named [`Counter`]s and
//!   [`Histogram`]s. Names are hierarchical dotted paths
//!   (`cpu.issue.width_used`, `mem.l1.load_misses`); the scheme is enforced
//!   at registration and by the `probe-naming` lint in `hbc-analyze`.
//! * [`StallCause`] / [`StallBreakdown`] — the per-cycle stall taxonomy.
//!   Every simulated cycle is charged to exactly one cause, so the
//!   breakdown sums to total cycles (checked under the `sanitize` feature).
//! * [`Tracer`] — a bounded ring buffer of pipeline and cache
//!   [`TraceEvent`]s, dumpable as JSON lines for the last N cycles.
//! * [`ProbeExport`] — implemented by the workspace's statistics structs
//!   (`RunStats`, `MemStats`, `StreamStats`) so every counter has one
//!   naming scheme and one reporting path.
//! * [`SpanLog`] / [`SpanRecord`] — request-scoped structured spans: a
//!   thread-safe bounded ring of per-stage timings (clockless; callers
//!   supply monotonic microsecond stamps) exported as JSONL. Stage names
//!   are registered in [`STAGE_NAMES`] and lint-checked at call sites.
//!
//! This crate holds *data types only*; it does no per-cycle work by
//! itself. The per-cycle instrumentation that feeds these types lives in
//! `hbc-cpu` behind its `probe` cargo feature and compiles out entirely
//! when the feature is off, so figure runs without it are bit-identical
//! and no slower. All state is deterministic (`BTreeMap`, no clocks, no
//! RNG): a probe report is as reproducible as the simulation it describes.
//!
//! # Example
//!
//! ```
//! use hbc_probe::ProbeRegistry;
//!
//! let mut reg = ProbeRegistry::new();
//! reg.counter("mem.lb.hits").add(3);
//! reg.histogram("cpu.issue.width_used").record(4);
//! assert_eq!(reg.get("mem.lb.hits"), Some(3));
//! assert!(reg.to_json().contains("\"mem.lb.hits\":3"));
//! ```

#![warn(missing_docs)]

mod counter;
mod name;
mod registry;
pub mod span;
mod stall;
mod trace;

pub use counter::{saturating_count, Counter, Histogram};
pub use name::is_valid_probe_name;
pub use registry::{ProbeExport, ProbeRegistry};
pub use span::{is_registered_stage, SpanLog, SpanRecord, STAGE_NAMES};
pub use stall::{StallBreakdown, StallCause};
pub use trace::{TraceEvent, Tracer};
