//! Probe-name validation: hierarchical dotted lowercase paths.

/// `true` when `name` is a well-formed probe name: two or more dot-separated
/// segments, each non-empty and drawn from `[a-z0-9_]`
/// (`^[a-z0-9_]+(\.[a-z0-9_]+)+$`).
///
/// The `probe-naming` lint in `hbc-analyze` enforces the same pattern
/// statically over registration call sites; [`crate::ProbeRegistry`]
/// enforces it at runtime for names built dynamically.
///
/// # Example
///
/// ```
/// use hbc_probe::is_valid_probe_name;
///
/// assert!(is_valid_probe_name("mem.l1.bank_conflicts"));
/// assert!(!is_valid_probe_name("flat"));          // needs a hierarchy
/// assert!(!is_valid_probe_name("Mem.l1.hits"));   // lowercase only
/// assert!(!is_valid_probe_name("mem..hits"));     // empty segment
/// ```
pub fn is_valid_probe_name(name: &str) -> bool {
    let mut segments = 0;
    for segment in name.split('.') {
        if segment.is_empty()
            || !segment.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_hierarchical_lowercase() {
        for ok in ["cpu.stall.commit", "mem.lb.hits", "a.b", "x0.y_1.z2"] {
            assert!(is_valid_probe_name(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "flat", ".", "a.", ".b", "a..b", "A.b", "a.B", "a b.c", "a-b.c", "a.b."] {
            assert!(!is_valid_probe_name(bad), "{bad}");
        }
    }
}
