//! Request-scoped structured spans: a thread-safe bounded ring of
//! `(request, span, parent, stage, start, duration)` records with JSONL
//! export.
//!
//! A *span* is one timed stage of a larger unit of work: a request's
//! `serve.parse` phase, one cell's `exec.run` slice, a figure driver's
//! `sim.measured` run. Spans nest through `parent` span IDs and group
//! through a shared `request` ID, so a JSONL export reconstructs exactly
//! where a request's wall-clock went.
//!
//! Like the rest of this crate, the types here are *clockless*: callers
//! pass monotonic timestamps in (microseconds from an origin they choose).
//! The simulator side derives them from an `Instant` origin confined to
//! `hbc-core`'s feature-gated `spans` module; `hbc-serve` stamps spans from
//! its own process-start origin. Keeping the clock out of this crate keeps
//! it usable from deterministic simulation code without ever touching the
//! wall clock itself.
//!
//! Every stage name recorded here must appear in [`STAGE_NAMES`]; the
//! `probe-coverage` lint in `hbc-analyze` cross-checks literal stage names
//! at `enter(…)` / `record_at(…)` / `record_since(…)` call sites against
//! that table, so a typo'd stage can't silently vanish from reports.
//!
//! # Example
//!
//! ```
//! use hbc_probe::{SpanLog, SpanRecord};
//!
//! let log = SpanLog::new(16);
//! let request = log.next_request_id();
//! let span = log.next_span_id();
//! log.record(SpanRecord {
//!     request,
//!     span,
//!     parent: 0,
//!     stage: "serve.parse",
//!     start_us: 10,
//!     dur_us: 250,
//! });
//! assert_eq!(log.len(), 1);
//! assert!(log.to_jsonl().contains("\"stage\":\"serve.parse\""));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// Interior mutability is required for a shared ring written by server and
// worker threads; spans are observability metadata, never simulation
// results, so arrival-order interleaving cannot affect figure output.
// hbc-allow: exec-merge (span ring holds observability metadata, not simulation results; sim output never reads it)
use std::sync::Mutex;

/// The registered stage-name table: every stage a span may be recorded
/// under, across all three instrumented layers.
///
/// `hbc-analyze`'s `probe-coverage` rule checks literal stage names at
/// span call sites against this table. Keep it sorted by layer.
pub const STAGE_NAMES: &[&str] = &[
    // hbc-serve request lifecycle, in order.
    "serve.accept",
    "serve.parse",
    "serve.queue_wait",
    "serve.cache_lookup",
    "serve.single_flight_wait",
    "serve.simulate",
    "serve.serialize",
    "serve.write",
    // hbc-cluster coordinator/worker lifecycle.
    "cluster.route",
    "cluster.forward",
    "cluster.worker_execute",
    // hbc-exec parallel engine, per cell.
    "exec.steal",
    "exec.run",
    "exec.merge",
    // hbc-core figure drivers, per phase.
    "sim.warm_up",
    "sim.measured",
    "figure.report",
];

/// `true` when `stage` appears in [`STAGE_NAMES`].
pub fn is_registered_stage(stage: &str) -> bool {
    STAGE_NAMES.contains(&stage)
}

/// One completed span: a named stage of one request, with monotonic
/// microsecond timestamps supplied by the caller.
///
/// `parent` is the span ID of the enclosing span, or 0 for a root span.
/// `request` groups all spans belonging to one unit of work (an HTTP
/// request, one figure cell). IDs are allocated from the owning
/// [`SpanLog`] and are unique within it; 0 is never allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// ID of the request (unit of work) this span belongs to.
    pub request: u64,
    /// This span's ID, unique within the log.
    pub span: u64,
    /// Enclosing span's ID, or 0 for a root span.
    pub parent: u64,
    /// Registered stage name (must appear in [`STAGE_NAMES`]).
    pub stage: &'static str,
    /// Start time, microseconds from the caller's monotonic origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// The record as one JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"request\":{},\"span\":{},\"parent\":{},\"stage\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            self.request, self.span, self.parent, self.stage, self.start_us, self.dur_us
        )
    }
}

/// The bounded ring of retained records plus the eviction count.
#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A thread-safe bounded span log: always retains the most recent
/// `capacity` [`SpanRecord`]s, dropping the oldest as new ones arrive,
/// and allocates the request/span IDs recorded into it.
///
/// Writers on any thread call [`record`](SpanLog::record); readers export
/// a consistent snapshot with [`to_jsonl`](SpanLog::to_jsonl). ID
/// allocation is lock-free; the ring itself is guarded by a mutex held
/// only for the push or the snapshot copy. Capacity 0 disables retention
/// (records are counted as dropped), which is how the span feature stays
/// observably free when no sink is installed.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    // hbc-allow: exec-merge (span ring holds observability metadata, not simulation results; sim output never reads it)
    ring: Mutex<Ring>,
    next_request: AtomicU64,
    next_span: AtomicU64,
}

/// Recovers the ring from a poisoned lock: a panicking writer can only
/// have lost its own record, and observability must not take the process
/// down with it.
// hbc-allow: exec-merge (span ring holds observability metadata, not simulation results; sim output never reads it)
fn ring_lock(ring: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SpanLog {
    /// A log retaining the last `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        SpanLog::with_id_base(capacity, 0)
    }

    /// A log whose request/span IDs are allocated from `base + 1`
    /// upward instead of `1`.
    ///
    /// Distributed tracing merges span streams from several processes
    /// into one causal tree; giving each process a disjoint ID namespace
    /// (e.g. `(port as u64) << 32` on a cluster worker) keeps merged IDs
    /// collision-free without any cross-process coordination. `base`
    /// itself is never allocated, so 0 stays the "no parent" sentinel.
    pub fn with_id_base(capacity: usize, base: u64) -> Self {
        SpanLog {
            capacity,
            // hbc-allow: exec-merge (span ring holds observability metadata, not simulation results; sim output never reads it)
            ring: Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            }),
            next_request: AtomicU64::new(base + 1),
            next_span: AtomicU64::new(base + 1),
        }
    }

    /// Retention capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates the next request ID (monotonic from 1; never 0).
    pub fn next_request_id(&self) -> u64 {
        self.next_request.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates the next span ID (monotonic from 1; never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends a record, evicting the oldest when full.
    ///
    /// Debug builds assert the stage name is registered in
    /// [`STAGE_NAMES`]; release builds record it regardless so a stale
    /// binary never loses data.
    pub fn record(&self, record: SpanRecord) {
        debug_assert!(
            is_registered_stage(record.stage),
            "span stage {:?} is not in hbc_probe::span::STAGE_NAMES",
            record.stage
        );
        let mut ring = ring_lock(&self.ring);
        if self.capacity == 0 {
            ring.dropped = ring.dropped.saturating_add(1);
            return;
        }
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped = ring.dropped.saturating_add(1);
        }
        ring.records.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        ring_lock(&self.ring).records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many records were evicted (or discarded by a zero-capacity
    /// log) since creation.
    pub fn dropped(&self) -> u64 {
        ring_lock(&self.ring).dropped
    }

    /// A snapshot of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        ring_lock(&self.ring).records.iter().copied().collect()
    }

    /// The retained window as JSON lines, oldest first, one record per
    /// line (trailing newline after each line).
    pub fn to_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::new();
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_is_sorted_within_layers_and_valid() {
        for stage in STAGE_NAMES {
            assert!(crate::is_valid_probe_name(stage), "bad stage name {stage:?}");
            assert!(is_registered_stage(stage));
        }
        assert!(!is_registered_stage("serve.bogus"));
    }

    #[test]
    fn ids_are_unique_and_never_zero() {
        let log = SpanLog::new(4);
        let a = log.next_request_id();
        let b = log.next_request_id();
        let s1 = log.next_span_id();
        let s2 = log.next_span_id();
        assert!(a > 0 && b > 0 && s1 > 0 && s2 > 0);
        assert_ne!(a, b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn id_base_offsets_both_counters() {
        let base = 9101u64 << 32;
        let log = SpanLog::with_id_base(4, base);
        assert_eq!(log.next_request_id(), base + 1);
        assert_eq!(log.next_span_id(), base + 1);
        assert_eq!(log.next_span_id(), base + 2);
        // The default namespace can never collide with a based one.
        let plain = SpanLog::new(4);
        assert!(plain.next_span_id() < base);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = SpanLog::new(3);
        for i in 0..10u64 {
            log.record(SpanRecord {
                request: 1,
                span: i + 1,
                parent: 0,
                stage: "exec.run",
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let spans: Vec<u64> = log.snapshot().iter().map(|r| r.span).collect();
        assert_eq!(spans, [8, 9, 10]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let log = SpanLog::new(0);
        log.record(SpanRecord {
            request: 1,
            span: 1,
            parent: 0,
            stage: "serve.write",
            start_us: 0,
            dur_us: 5,
        });
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let log = SpanLog::new(8);
        log.record(SpanRecord {
            request: 3,
            span: 7,
            parent: 2,
            stage: "serve.simulate",
            start_us: 1500,
            dur_us: 2500,
        });
        assert_eq!(
            log.to_jsonl(),
            "{\"request\":3,\"span\":7,\"parent\":2,\"stage\":\"serve.simulate\",\
             \"start_us\":1500,\"dur_us\":2500}\n"
        );
    }

    #[test]
    fn concurrent_writers_lose_nothing_under_capacity() {
        let log = std::sync::Arc::new(SpanLog::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..64u64 {
                        log.record(SpanRecord {
                            request: t + 1,
                            span: log.next_span_id(),
                            parent: 0,
                            stage: "exec.run",
                            start_us: i,
                            dur_us: 1,
                        });
                    }
                });
            }
        });
        assert_eq!(log.len(), 256);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not in hbc_probe::span::STAGE_NAMES")]
    fn unregistered_stage_asserts_in_debug() {
        let log = SpanLog::new(4);
        log.record(SpanRecord {
            request: 1,
            span: 1,
            parent: 0,
            stage: "serve.not_a_stage",
            start_us: 0,
            dur_us: 0,
        });
    }
}
