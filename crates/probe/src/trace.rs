//! A bounded ring-buffer cycle tracer with JSONL export.

use std::collections::VecDeque;

/// One pipeline or cache event, stamped with the cycle it happened on.
///
/// `inst` is the retirement-order instruction index the event belongs to;
/// cache events carry the byte address and (for banked configurations) the
/// bank the access mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction entered the window.
    Fetch {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
    },
    /// An instruction began executing (or its load was accepted).
    Issue {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
    },
    /// An instruction finished executing.
    ExecDone {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
    },
    /// An instruction retired.
    Commit {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
    },
    /// A load hit in the primary cache.
    CacheHit {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
        /// Byte address of the access.
        addr: u64,
        /// Cache bank the address mapped to.
        bank: u32,
    },
    /// A load missed in the primary cache.
    CacheMiss {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
        /// Byte address of the access.
        addr: u64,
        /// Cache bank the address mapped to.
        bank: u32,
    },
    /// A load was satisfied by the line buffer.
    LineBufferHit {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
        /// Byte address of the access.
        addr: u64,
    },
    /// A load was rejected this cycle (port/bank conflict or MSHRs full).
    CacheReject {
        /// Cycle the event occurred on.
        cycle: u64,
        /// Retirement-order instruction index.
        inst: u64,
        /// Byte address of the access.
        addr: u64,
        /// Cache bank the address mapped to.
        bank: u32,
        /// Why the access was rejected (`ports_busy`, `bank_conflict`,
        /// `mshr_full`).
        why: &'static str,
    },
}

impl TraceEvent {
    /// Cycle the event occurred on.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::ExecDone { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::CacheHit { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::LineBufferHit { cycle, .. }
            | TraceEvent::CacheReject { cycle, .. } => cycle,
        }
    }

    /// The event as one JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::Fetch { cycle, inst } => {
                format!("{{\"ev\":\"fetch\",\"cycle\":{cycle},\"inst\":{inst}}}")
            }
            TraceEvent::Issue { cycle, inst } => {
                format!("{{\"ev\":\"issue\",\"cycle\":{cycle},\"inst\":{inst}}}")
            }
            TraceEvent::ExecDone { cycle, inst } => {
                format!("{{\"ev\":\"exec_done\",\"cycle\":{cycle},\"inst\":{inst}}}")
            }
            TraceEvent::Commit { cycle, inst } => {
                format!("{{\"ev\":\"commit\",\"cycle\":{cycle},\"inst\":{inst}}}")
            }
            TraceEvent::CacheHit { cycle, inst, addr, bank } => format!(
                "{{\"ev\":\"cache_hit\",\"cycle\":{cycle},\"inst\":{inst},\"addr\":{addr},\"bank\":{bank}}}"
            ),
            TraceEvent::CacheMiss { cycle, inst, addr, bank } => format!(
                "{{\"ev\":\"cache_miss\",\"cycle\":{cycle},\"inst\":{inst},\"addr\":{addr},\"bank\":{bank}}}"
            ),
            TraceEvent::LineBufferHit { cycle, inst, addr } => format!(
                "{{\"ev\":\"lb_hit\",\"cycle\":{cycle},\"inst\":{inst},\"addr\":{addr}}}"
            ),
            TraceEvent::CacheReject { cycle, inst, addr, bank, why } => format!(
                "{{\"ev\":\"cache_reject\",\"cycle\":{cycle},\"inst\":{inst},\"addr\":{addr},\"bank\":{bank},\"why\":\"{why}\"}}"
            ),
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s: always holds the most recent
/// `capacity` events, dropping the oldest as new ones arrive.
///
/// The core keeps one of these when a trace window is requested
/// (`--trace-window N`) and dumps it on demand — or to stderr when the
/// deadlock detector fires, so the last cycles before a hang are never
/// lost. Capacity 0 disables recording entirely.
///
/// # Example
///
/// ```
/// use hbc_probe::{TraceEvent, Tracer};
///
/// let mut t = Tracer::new(2);
/// t.push(TraceEvent::Fetch { cycle: 1, inst: 0 });
/// t.push(TraceEvent::Issue { cycle: 2, inst: 0 });
/// t.push(TraceEvent::Commit { cycle: 3, inst: 0 });
/// assert_eq!(t.len(), 2); // oldest event dropped
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// A tracer retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer { capacity, events: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted (or discarded by a zero-capacity
    /// tracer) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cycle of the oldest retained event, if any.
    pub fn first_cycle(&self) -> Option<u64> {
        self.events.front().map(|e| e.cycle())
    }

    /// The retained window as JSON lines, oldest first, one event per line
    /// (trailing newline after each line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut t = Tracer::new(3);
        for i in 0..10u64 {
            t.push(TraceEvent::Fetch { cycle: i, inst: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.first_cycle(), Some(7));
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Tracer::new(0);
        t.push(TraceEvent::Commit { cycle: 1, inst: 1 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let mut t = Tracer::new(8);
        t.push(TraceEvent::CacheReject {
            cycle: 5,
            inst: 2,
            addr: 4096,
            bank: 3,
            why: "bank_conflict",
        });
        t.push(TraceEvent::LineBufferHit { cycle: 6, inst: 3, addr: 4104 });
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ev\":\"cache_reject\",\"cycle\":5,\"inst\":2,\"addr\":4096,\"bank\":3,\"why\":\"bank_conflict\"}"
        );
        assert_eq!(lines[1], "{\"ev\":\"lb_hit\",\"cycle\":6,\"inst\":3,\"addr\":4104}");
    }

    #[test]
    fn every_variant_serialises() {
        let evs = [
            TraceEvent::Fetch { cycle: 1, inst: 1 },
            TraceEvent::Issue { cycle: 2, inst: 1 },
            TraceEvent::ExecDone { cycle: 3, inst: 1 },
            TraceEvent::Commit { cycle: 4, inst: 1 },
            TraceEvent::CacheHit { cycle: 5, inst: 2, addr: 64, bank: 0 },
            TraceEvent::CacheMiss { cycle: 6, inst: 3, addr: 128, bank: 1 },
        ];
        for ev in evs {
            let json = ev.to_json();
            assert!(json.starts_with("{\"ev\":\""), "{json}");
            assert!(json.contains(&format!("\"cycle\":{}", ev.cycle())), "{json}");
        }
    }
}
