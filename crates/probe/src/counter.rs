//! Saturating counters and power-of-two histograms.

/// Adds `delta` to `slot` without wrapping.
///
/// Every statistics counter in the simulator funnels through this helper:
/// release builds saturate at `u64::MAX` instead of silently wrapping (a
/// wrapped counter reads as a tiny value and corrupts every derived ratio),
/// and `sanitize` builds assert on the overflow so the bug is caught where
/// it happens.
#[inline]
pub fn saturating_count(slot: &mut u64, delta: u64) {
    #[cfg(feature = "sanitize")]
    debug_assert!(
        slot.checked_add(delta).is_some(),
        "sanitize: counter overflow ({slot} + {delta})"
    );
    *slot = slot.saturating_add(delta);
}

/// A monotonically increasing, saturating event counter.
///
/// # Example
///
/// ```
/// use hbc_probe::Counter;
///
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at `value`.
    pub fn new(value: u64) -> Self {
        Counter(value)
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&mut self, delta: u64) {
        saturating_count(&mut self.0, delta);
    }

    /// Overwrites the value (used when deriving a counter from an existing
    /// statistics field, the registry's snapshot path).
    pub fn set(&mut self, value: u64) {
        self.0 = value;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Number of power-of-two buckets in a [`Histogram`] (bit lengths 0..=64).
const BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `k` counts samples whose bit length is `k` (bucket 0 holds the
/// value zero, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7,
/// …). Alongside the buckets it keeps exact count, sum, min, and max, so
/// means are exact and only the shape is quantized. Fully deterministic.
///
/// # Example
///
/// ```
/// use hbc_probe::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// assert!((h.mean() - 26.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (used when folding an already-counted
    /// array, e.g. per-width issue tallies, into the registry).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_count(&mut self.count, n);
        saturating_count(&mut self.sum, value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        saturating_count(&mut self.buckets[bucket], n);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of power-of-two bucket `k` (samples of bit length `k`).
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets.get(k).copied().unwrap_or(0)
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]` (zero when empty).
    ///
    /// The histogram only retains power-of-two buckets, so the estimate
    /// returns the upper edge of the bucket containing the target rank —
    /// an upper bound within 2× of the true sample — clamped into the
    /// exact `[min, max]` range. `q = 0` returns the exact minimum and
    /// `q = 1` the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (k, occupancy) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*occupancy);
            if cumulative >= rank {
                // Upper edge of bucket k: values of bit length k are in
                // [2^(k-1), 2^k - 1]; bucket 0 holds only zero.
                let edge = if k == 0 { 0 } else { (1u64 << (k - 1)).saturating_mul(2) - 1 };
                return edge.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// `(count, sum, min, max)` rendered as a JSON object fragment.
    pub(crate) fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.4}}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // In sanitize debug builds overflow asserts instead of saturating
    // silently; the saturation path only exists for release figure runs.
    #[cfg(not(feature = "sanitize"))]
    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        let mut slot = u64::MAX;
        saturating_count(&mut slot, 1);
        assert_eq!(slot, u64::MAX);
    }

    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "counter overflow")]
    fn sanitize_asserts_on_overflow() {
        let mut slot = u64::MAX;
        saturating_count(&mut slot, 1);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        c.set(7);
        assert_eq!(c.to_string(), "7");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.bucket(0), 1); // value 0
        assert_eq!(h.bucket(1), 1); // value 1
        assert_eq!(h.bucket(2), 2); // values 2-3
        assert_eq!(h.bucket(3), 1); // values 4-7
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 4);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_range() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0); // empty
        for v in 1..=100u64 {
            h.record(v);
        }
        // q=0 and q=1 are exact; mid quantiles are upper bucket edges
        // within 2x of the true sample and never outside [min, max].
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
        for q in [0.5f64, 0.95, 0.99] {
            let true_rank = (q * 100.0).ceil() as u64;
            let est = h.quantile(q);
            assert!(est >= true_rank, "q={q}: {est} < {true_rank}");
            assert!(est <= (true_rank * 2).min(100), "q={q}: {est} too high");
        }
        // Single-value histograms report that value at every quantile.
        let mut one = Histogram::default();
        one.record_n(37, 5);
        assert_eq!(one.quantile(0.5), 37);
        assert_eq!(one.quantile(0.99), 37);
    }

    #[test]
    fn histogram_record_n_and_empty() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record_n(8, 4);
        h.record_n(9, 0); // no-op
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 32);
        assert!((h.mean() - 8.0).abs() < 1e-12);
        assert!(h.to_json().contains("\"count\":4"));
    }
}
