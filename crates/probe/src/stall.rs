//! The per-cycle stall taxonomy: where did the cycles go?

use crate::counter::saturating_count;
use crate::registry::ProbeRegistry;

/// What a simulated cycle was spent on.
///
/// The core charges every cycle to exactly one cause, chosen by a fixed
/// priority cascade (documented in `hbc-cpu`): useful commit first, then
/// the reason the window head could not retire, then front-end reasons.
/// Because the charge is total and exclusive, a [`StallBreakdown`] sums
/// exactly to the cycles of its run window — the completeness invariant the
/// `sanitize` feature asserts and the property tests check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// At least one instruction retired this cycle (useful work).
    Commit,
    /// Nothing retired; the window is full behind a long-latency head.
    RobFull,
    /// Nothing retired; the load/store queue is full.
    LsqFull,
    /// Nothing retired and no execution blocked on memory: the window ran
    /// out of completed work (dependence chains, functional-unit latency,
    /// or an empty window).
    IssueEmpty,
    /// Fetch is squelched waiting for a mispredicted branch to resolve and
    /// redirect.
    BranchRecovery,
    /// The head load is blocked on the data cache itself: denied a port or
    /// bank this cycle, or its pipelined hit is still in the array.
    DcachePortConflict,
    /// The head load could not start its miss because every miss status
    /// handling register is occupied.
    MshrFull,
    /// Commit is blocked writing a store into a full store buffer.
    StoreBufferFull,
    /// The head load is waiting on the levels below the primary cache
    /// (L2 SRAM, the on-chip DRAM, buses, or main memory).
    DramBusy,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 9] = [
        StallCause::Commit,
        StallCause::RobFull,
        StallCause::LsqFull,
        StallCause::IssueEmpty,
        StallCause::BranchRecovery,
        StallCause::DcachePortConflict,
        StallCause::MshrFull,
        StallCause::StoreBufferFull,
        StallCause::DramBusy,
    ];

    /// Number of causes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index into a [`StallBreakdown`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human label (`commit`, `rob_full`, …).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Commit => "commit",
            StallCause::RobFull => "rob_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::IssueEmpty => "issue_empty",
            StallCause::BranchRecovery => "branch_recovery",
            StallCause::DcachePortConflict => "dcache_port_conflict",
            StallCause::MshrFull => "mshr_full",
            StallCause::StoreBufferFull => "store_buffer_full",
            StallCause::DramBusy => "dram_busy",
        }
    }

    /// Canonical registry name (`cpu.stall.<label>`).
    pub fn probe_name(self) -> &'static str {
        match self {
            StallCause::Commit => "cpu.stall.commit",
            StallCause::RobFull => "cpu.stall.rob_full",
            StallCause::LsqFull => "cpu.stall.lsq_full",
            StallCause::IssueEmpty => "cpu.stall.issue_empty",
            StallCause::BranchRecovery => "cpu.stall.branch_recovery",
            StallCause::DcachePortConflict => "cpu.stall.dcache_port_conflict",
            StallCause::MshrFull => "cpu.stall.mshr_full",
            StallCause::StoreBufferFull => "cpu.stall.store_buffer_full",
            StallCause::DramBusy => "cpu.stall.dram_busy",
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles charged per [`StallCause`] over one run window.
///
/// # Example
///
/// ```
/// use hbc_probe::{StallBreakdown, StallCause};
///
/// let mut b = StallBreakdown::default();
/// b.charge(StallCause::Commit);
/// b.charge(StallCause::DramBusy);
/// assert_eq!(b.total(), 2);
/// assert_eq!(b.get(StallCause::DramBusy), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; StallCause::COUNT],
}

impl StallBreakdown {
    /// Charges one cycle to `cause`.
    pub fn charge(&mut self, cause: StallCause) {
        saturating_count(&mut self.counts[cause.index()], 1);
    }

    /// Charges `cycles` cycles to `cause` at once — bulk attribution for a
    /// fast-forwarded span whose per-cycle cause is provably constant.
    pub fn charge_n(&mut self, cause: StallCause, cycles: u64) {
        saturating_count(&mut self.counts[cause.index()], cycles);
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total cycles charged; equals the window's cycle count when the
    /// per-cycle attribution ran (the `probe` feature was on).
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Fraction of charged cycles attributed to `cause` (zero when empty).
    pub fn fraction(&self, cause: StallCause) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cause) as f64 / total as f64
        }
    }

    /// `(cause, cycles)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(|&c| (c, self.get(c)))
    }

    /// Accumulates `other` into `self` (merging run windows).
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (slot, &add) in self.counts.iter_mut().zip(&other.counts) {
            saturating_count(slot, add);
        }
    }

    /// Registers every cause under its canonical `cpu.stall.*` name.
    pub fn export(&self, reg: &mut ProbeRegistry) {
        for (cause, cycles) in self.iter() {
            reg.counter(cause.probe_name()).set(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let mut labels: Vec<&str> = StallCause::ALL.iter().map(|c| c.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), StallCause::COUNT);
    }

    #[test]
    fn charge_and_merge() {
        let mut a = StallBreakdown::default();
        a.charge(StallCause::Commit);
        a.charge(StallCause::Commit);
        a.charge(StallCause::MshrFull);
        let mut b = StallBreakdown::default();
        b.charge(StallCause::MshrFull);
        a.merge(&b);
        assert_eq!(a.get(StallCause::Commit), 2);
        assert_eq!(a.get(StallCause::MshrFull), 2);
        assert_eq!(a.total(), 4);
        assert!((a.fraction(StallCause::Commit) - 0.5).abs() < 1e-12);
        assert_eq!(StallBreakdown::default().fraction(StallCause::Commit), 0.0);
    }

    #[test]
    fn export_uses_valid_unique_names() {
        use crate::is_valid_probe_name;
        let mut b = StallBreakdown::default();
        b.charge(StallCause::DramBusy);
        let mut reg = ProbeRegistry::new();
        b.export(&mut reg);
        assert_eq!(reg.counters().count(), StallCause::COUNT);
        for c in StallCause::ALL {
            assert!(is_valid_probe_name(c.probe_name()), "{}", c.probe_name());
        }
        assert_eq!(reg.get("cpu.stall.dram_busy"), Some(1));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(StallCause::RobFull.to_string(), "rob_full");
    }
}
