//! The probe registry: one namespace for every counter in the workspace.

use std::collections::BTreeMap;

use crate::counter::{Counter, Histogram};
use crate::name::is_valid_probe_name;

/// A deterministic registry of named [`Counter`]s and [`Histogram`]s.
///
/// Keys are hierarchical dotted paths (`cpu.stall.commit`,
/// `mem.l1.bank_conflicts`); registration asserts the naming scheme so a
/// malformed name fails the first test that touches it. Storage is
/// `BTreeMap`, so iteration, reports, and JSON exports are byte-stable
/// across runs — the same determinism contract as the simulator itself.
///
/// # Example
///
/// ```
/// use hbc_probe::ProbeRegistry;
///
/// let mut reg = ProbeRegistry::new();
/// reg.counter("mem.l1.load_hits").add(10);
/// reg.counter("mem.l1.load_misses").add(2);
/// assert_eq!(reg.get("mem.l1.load_hits"), Some(10));
/// let names: Vec<&str> = reg.counters().map(|(n, _)| n).collect();
/// assert_eq!(names, ["mem.l1.load_hits", "mem.l1.load_misses"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl ProbeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Asserts that `name` follows the probe naming scheme.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        assert!(is_valid_probe_name(name), "invalid probe name: {name:?}");
        self.counters.entry(name.to_string()).or_default()
    }

    /// The histogram registered under `name`, creating it empty on first
    /// use. Asserts that `name` follows the probe naming scheme.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        assert!(is_valid_probe_name(name), "invalid probe name: {name:?}");
        self.histograms.entry(name.to_string()).or_default()
    }

    /// The value of counter `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|c| c.get())
    }

    /// The histogram registered under `name`, if any.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &Counter)> {
        self.counters.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no counter or histogram is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Counters whose name starts with `prefix` followed by a dot (or
    /// equals `prefix`), in name order — e.g. `scoped("cpu.stall")` yields
    /// the whole stall breakdown.
    pub fn scoped<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters().filter_map(move |(n, c)| {
            let matches = n == prefix
                || (n.starts_with(prefix) && n.as_bytes().get(prefix.len()) == Some(&b'.'));
            matches.then_some((n, c.get()))
        })
    }

    /// Folds every probe from `source` into this registry.
    pub fn absorb<E: ProbeExport + ?Sized>(&mut self, source: &E) {
        source.export_probes(self);
    }

    /// A deterministic JSON object:
    /// `{"counters":{name:value,...},"histograms":{name:{...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", c.get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", h.to_json()));
        }
        out.push_str("}}");
        out
    }
}

/// Snapshot of a component's statistics into a [`ProbeRegistry`].
///
/// Implemented by `RunStats`, `MemStats`, and `StreamStats` so the whole
/// workspace shares one naming scheme and one reporting path; the legacy
/// getters on those structs remain as thin shims over the same fields.
pub trait ProbeExport {
    /// Registers this component's counters and histograms under their
    /// canonical names.
    fn export_probes(&self, reg: &mut ProbeRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_accumulates() {
        let mut reg = ProbeRegistry::new();
        reg.counter("a.b").inc();
        reg.counter("a.b").add(2);
        assert_eq!(reg.get("a.b"), Some(3));
        assert_eq!(reg.get("a.c"), None);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid probe name")]
    fn rejects_malformed_name() {
        ProbeRegistry::new().counter("NotValid");
    }

    #[test]
    fn scoped_is_prefix_aware() {
        let mut reg = ProbeRegistry::new();
        reg.counter("cpu.stall.commit").add(5);
        reg.counter("cpu.stall.dram_busy").add(1);
        reg.counter("cpu.stalling.other").add(9); // not under cpu.stall
        let got: Vec<(&str, u64)> = reg.scoped("cpu.stall").collect();
        assert_eq!(got, [("cpu.stall.commit", 5), ("cpu.stall.dram_busy", 1)]);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut reg = ProbeRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.hist").record(4);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":2,\"z.last\":1},\
             \"histograms\":{\"m.hist\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,\"mean\":4.0000}}}"
        );
        assert_eq!(reg.clone().to_json(), json);
    }

    #[test]
    fn absorb_uses_the_trait() {
        struct Fake;
        impl ProbeExport for Fake {
            fn export_probes(&self, reg: &mut ProbeRegistry) {
                reg.counter("fake.value").set(42);
            }
        }
        let mut reg = ProbeRegistry::new();
        reg.absorb(&Fake);
        assert_eq!(reg.get("fake.value"), Some(42));
    }
}
