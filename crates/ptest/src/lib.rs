//! A minimal, fully deterministic property-testing harness.
//!
//! The simulator's determinism contract ("every simulation is a pure
//! function of (config, seed)") extends to its test suite: property tests
//! here run a fixed number of cases from fixed seeds, so a failure on one
//! machine is a failure on every machine and a green run is exactly
//! reproducible. There is no shrinking and no persistence file — on a
//! failure the harness reports the case index, and `Gen::from_case` rebuilds
//! the identical input stream for debugging.
//!
//! # Example
//!
//! ```
//! use hbc_ptest::check;
//!
//! check("addition commutes", 64, |g| {
//!     let a = g.u64_below(1 << 32);
//!     let b = g.u64_below(1 << 32);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases for [`check_default`].
pub const DEFAULT_CASES: u32 = 256;

/// A deterministic per-case value generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Generator for case `case` of a named property; the stream depends
    /// only on `(name, case)`.
    pub fn from_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case index, so
        // distinct properties draw distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Gen { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector whose length is uniform in `[min_len, max_len]`, with each
    /// element drawn by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "pick from empty slice");
        &options[self.usize_in(0, options.len() - 1)]
    }
}

/// Asserts that `map` is injective over `domain`: no two inputs may
/// produce the same output. The dedup table is built once per call here
/// instead of ad hoc at every test site.
///
/// # Panics
///
/// Panics, naming both colliding inputs, if the map is not injective.
pub fn assert_injective<I, K>(
    name: &str,
    domain: impl IntoIterator<Item = I>,
    map: impl Fn(&I) -> K,
) where
    I: std::fmt::Debug,
    K: Ord + std::fmt::Debug,
{
    let mut seen = std::collections::BTreeMap::new();
    for input in domain {
        match seen.entry(map(&input)) {
            std::collections::btree_map::Entry::Occupied(e) => {
                panic!("{name}: inputs {:?} and {input:?} collide at {:?}", e.get(), e.key())
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(input);
            }
        }
    }
}

/// Runs `cases` deterministic cases of the property `f`; panics (failing
/// the enclosing test) if any case panics, naming the case index.
pub fn check(name: &str, cases: u32, f: impl Fn(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::from_case(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut g)));
        if result.is_err() {
            panic!(
                "property '{name}' failed on case {case}/{cases} \
                 (reproduce with Gen::from_case({name:?}, {case}))"
            );
        }
    }
}

/// [`check`] with [`DEFAULT_CASES`] cases.
pub fn check_default(name: &str, f: impl Fn(&mut Gen)) {
    check(name, DEFAULT_CASES, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Gen::from_case("p", 3);
        let mut b = Gen::from_case("p", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_and_cases_diverge() {
        let x = Gen::from_case("p", 0).next_u64();
        assert_ne!(x, Gen::from_case("q", 0).next_u64());
        assert_ne!(x, Gen::from_case("p", 1).next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        check_default("ranges", |g| {
            let v = g.u64_in(10, 20);
            assert!((10..=20).contains(&v));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = g.usize_in(0, 5);
            assert!(n <= 5);
            let picked = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&picked));
        });
    }

    #[test]
    fn vec_lengths_cover_range() {
        let mut seen = [false; 5];
        check("vec-len", 200, |g| {
            let v = g.vec(2, 6, |g| g.bool());
            assert!((2..=6).contains(&v.len()));
        });
        // direct sweep for coverage of each length
        for case in 0..200 {
            let mut g = Gen::from_case("vec-len", case);
            let v = g.vec(2, 6, |g| g.next_u64());
            seen[v.len() - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths {seen:?}");
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_name_the_case() {
        check("always-fails", 4, |_| panic!("boom"));
    }

    #[test]
    fn injective_maps_pass() {
        assert_injective("identity", 0..1000u64, |&x| x);
        assert_injective("affine", 0..1000u64, |&x| x * 3 + 7);
    }

    #[test]
    #[should_panic(expected = "collide at")]
    fn collisions_are_reported() {
        assert_injective("mod-10", 0..100u64, |&x| x % 10);
    }

    #[test]
    fn full_u64_range_is_reachable() {
        let mut g = Gen::from_case("full", 0);
        let _ = g.u64_in(0, u64::MAX);
    }
}
