//! A minimal blocking HTTP client for the service.
//!
//! One connection per request (the server answers `Connection: close`),
//! with a socket timeout on every phase so a wedged server turns into a
//! typed error, not a hung load generator. Used by `hbc-load` and the
//! end-to-end tests; not a general HTTP client.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{self, HttpError, Response};

/// Issues one request and reads the full response.
///
/// `body` is sent with a `Content-Length` header when non-empty.
pub fn request(
    addr: SocketAddr,
    timeout: Duration,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, HttpError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    send_request_head(&mut stream, method, path, body)?;
    http::read_response(&mut stream)
}

/// Writes the request head + body to an already connected stream.
pub fn send_request_head(
    stream: &mut impl io::Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hbc-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Parses `addr` as `host:port`, with an optional `http://` prefix and
/// trailing `/` (so the CLI accepts the URL the server prints).
pub fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    let trimmed = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
    use std::net::ToSocketAddrs as _;
    match trimmed.to_socket_addrs() {
        Ok(mut addrs) => addrs.next().ok_or_else(|| format!("`{addr}` resolves to nothing")),
        Err(e) => Err(format!("cannot parse `{addr}`: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_forms_parse() {
        for form in ["127.0.0.1:8080", "http://127.0.0.1:8080", "http://127.0.0.1:8080/"] {
            assert_eq!(parse_addr(form).unwrap().port(), 8080, "{form}");
        }
        assert!(parse_addr("not an address").is_err());
    }
}
