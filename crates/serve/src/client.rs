//! A minimal blocking HTTP client for the service.
//!
//! One connection per request (the server answers `Connection: close`),
//! with separate connect and I/O timeouts so a wedged server turns into a
//! typed [`ClientError`], not a hung caller. This is the single client
//! implementation shared by the `hbc-load` generator, the `hbc-cluster`
//! coordinator tooling, and the end-to-end tests; it is not a general
//! HTTP client.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{self, HttpError, Response};

/// Why a client request failed, by phase.
#[derive(Debug)]
pub enum ClientError {
    /// Establishing the connection failed (includes the connect timeout
    /// and failures configuring socket timeouts).
    Connect(io::Error),
    /// Writing the request failed (includes write timeouts).
    Send(io::Error),
    /// Reading or parsing the response failed (includes read timeouts).
    Receive(HttpError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Send(e) => write!(f, "sending request failed: {e}"),
            ClientError::Receive(e) => write!(f, "reading response failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A reusable blocking HTTP/1.1 client: connect per request, send, read
/// the full response, close.
#[derive(Debug, Clone, Copy)]
pub struct HttpClient {
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl HttpClient {
    /// A client using `timeout` for both the connect and the I/O phases.
    pub fn new(timeout: Duration) -> Self {
        HttpClient { connect_timeout: timeout, io_timeout: timeout }
    }

    /// A client with distinct connect and read/write timeouts (a cluster
    /// coordinator wants a short connect probe but a long simulation
    /// read).
    pub fn with_timeouts(connect_timeout: Duration, io_timeout: Duration) -> Self {
        HttpClient { connect_timeout, io_timeout }
    }

    /// Issues one request and reads the full response.
    ///
    /// `body` is sent with a `Content-Length` header (0 when empty).
    pub fn request(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(ClientError::Connect)?;
        stream.set_read_timeout(Some(self.io_timeout)).map_err(ClientError::Connect)?;
        stream.set_write_timeout(Some(self.io_timeout)).map_err(ClientError::Connect)?;
        send_request_head(&mut stream, method, path, body).map_err(ClientError::Send)?;
        http::read_response(&mut stream).map_err(ClientError::Receive)
    }

    /// `GET path` with an empty body.
    pub fn get(&self, addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
        self.request(addr, "GET", path, b"")
    }

    /// `POST path` with `body`.
    pub fn post(&self, addr: SocketAddr, path: &str, body: &[u8]) -> Result<Response, ClientError> {
        self.request(addr, "POST", path, body)
    }
}

/// Writes the request head + body to an already connected stream.
pub fn send_request_head(
    stream: &mut impl io::Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hbc-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Parses `addr` as `host:port`, with an optional `http://` prefix and
/// trailing `/` (so the CLI accepts the URL the server prints).
pub fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    let trimmed = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
    use std::net::ToSocketAddrs as _;
    match trimmed.to_socket_addrs() {
        Ok(mut addrs) => addrs.next().ok_or_else(|| format!("`{addr}` resolves to nothing")),
        Err(e) => Err(format!("cannot parse `{addr}`: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_forms_parse() {
        for form in ["127.0.0.1:8080", "http://127.0.0.1:8080", "http://127.0.0.1:8080/"] {
            assert_eq!(parse_addr(form).unwrap().port(), 8080, "{form}");
        }
        assert!(parse_addr("not an address").is_err());
    }

    #[test]
    fn connect_refusal_is_a_typed_connect_error() {
        // Bind-then-drop guarantees a port nothing is listening on.
        let addr = std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        let client = HttpClient::new(Duration::from_millis(500));
        match client.get(addr, "/healthz") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected ClientError::Connect, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_their_phase() {
        let e = ClientError::Send(io::Error::new(io::ErrorKind::BrokenPipe, "pipe"));
        assert!(e.to_string().contains("sending request"));
        let e = ClientError::Receive(HttpError::Closed);
        assert!(e.to_string().contains("reading response"));
    }
}
