//! `hbc-serve`: serve paper experiments over HTTP.
//!
//! ```text
//! hbc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]
//!           [--max-jobs N] [--cache-dir PATH|none] [--cache-entries N]
//!           [--span-capacity N]
//! ```
//!
//! Binds, prints the listening URL, and serves until a client POSTs
//! `/shutdown`; then drains in-flight work and exits. Endpoints:
//!
//! * `POST /run` — body `{"experiment":"fig6","preset":"fast",…}`; the
//!   response is byte-identical to the figure binary's standard output.
//! * `GET /metrics` — Prometheus text: counters, queue gauges, and
//!   p50/p95/p99 latency and per-stage summaries.
//! * `GET /metrics.json` — the probe-registry JSON of service counters.
//! * `GET /trace` — the most recent request spans as JSON lines.
//! * `GET /experiments` — what can be requested.
//! * `GET /healthz`, `POST /shutdown`.

use std::time::Duration;

use hbc_serve::server::{Server, ServerConfig};

fn main() {
    let config = config_from_args();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    println!("hbc-serve listening on http://{}", server.addr());
    server.join();
    println!("hbc-serve: drained and stopped");
}

fn config_from_args() -> ServerConfig {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.workers = parse(&value("--workers"), "--workers");
                if config.workers == 0 {
                    usage("--workers must be at least 1");
                }
            }
            "--queue" => config.queue_capacity = parse(&value("--queue"), "--queue"),
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"));
            }
            "--max-jobs" => config.max_jobs = parse(&value("--max-jobs"), "--max-jobs"),
            "--cache-dir" => {
                let dir = value("--cache-dir");
                config.cache_dir =
                    if dir == "none" { None } else { Some(std::path::PathBuf::from(dir)) };
            }
            "--cache-entries" => {
                config.cache_entries = parse(&value("--cache-entries"), "--cache-entries");
            }
            "--span-capacity" => {
                config.span_capacity = parse(&value("--span-capacity"), "--span-capacity");
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    config
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| usage(&format!("{flag} needs an unsigned integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: hbc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N] \
         [--max-jobs N] [--cache-dir PATH|none] [--cache-entries N] [--span-capacity N]"
    );
    std::process::exit(2);
}
