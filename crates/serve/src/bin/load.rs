//! `hbc-load`: a deterministic load generator for `hbc-serve` and the
//! `hbc-cluster` coordinator (same HTTP API).
//!
//! ```text
//! hbc-load --addr URL[,URL…] [--requests N] [--concurrency C1,C2,…]
//!          [--seed N] [--timeout-ms N] [--out PATH|none]
//! hbc-load --addr URL --smoke
//! hbc-load --addr URL --cluster-smoke
//! hbc-load --addr URL --shutdown
//! ```
//!
//! The default mode replays the seeded request mix of
//! [`hbc_serve::spec::mixed_request`] — a pure function of `(seed, index)`,
//! so every run issues the same specs in the same order — at each requested
//! concurrency level, and records throughput, latency percentiles, and
//! status/cache tallies into a benchmark JSON (`results/BENCH_serve.json`
//! by default). `--addr` accepts multiple targets (repeated flags or
//! comma-separated); request `index` goes to target `index % targets`, so
//! one run can drive several servers, or a coordinator next to a direct
//! worker for comparison.
//!
//! `--smoke` is the single-server CI gate: it computes one figure payload
//! in-process, requests it twice, and fails unless both responses are
//! `200` with byte-identical bodies and the second is a cache hit
//! (confirmed both by the `X-Cache` header and the `/metrics` counters).
//! `--cluster-smoke` is the coordinator equivalent: a fixed spec set is
//! computed in-process and every routed response must be byte-identical,
//! carry an `X-Worker` attribution, repeat as a shard-local cache hit,
//! and leave behind strictly parseable cluster metrics. `--shutdown`
//! POSTs `/shutdown` and exits.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use hbc_serve::client::{self, HttpClient};
use hbc_serve::json::Json;
use hbc_serve::spec::{mixed_request, ExperimentId, Preset, RunRequest};

struct Options {
    targets: Vec<SocketAddr>,
    requests: u64,
    concurrency: Vec<usize>,
    seed: u64,
    timeout: Duration,
    out: Option<std::path::PathBuf>,
    smoke: bool,
    cluster_smoke: bool,
    shutdown: bool,
}

impl Options {
    fn http(&self) -> HttpClient {
        HttpClient::new(self.timeout)
    }

    /// The first target (the only one the smoke/shutdown modes address).
    fn primary(&self) -> SocketAddr {
        self.targets[0]
    }
}

fn main() {
    let opts = options_from_args();
    if opts.shutdown {
        match opts.http().post(opts.primary(), "/shutdown", b"") {
            Ok(resp) => println!("hbc-load: shutdown requested ({})", resp.status),
            Err(e) => fail(&format!("shutdown request failed: {e}")),
        }
        return;
    }
    if opts.smoke {
        smoke(&opts);
        return;
    }
    if opts.cluster_smoke {
        cluster_smoke(&opts);
        return;
    }
    load(&opts);
}

/// One recorded request: status, `X-Cache` label, latency.
struct Sample {
    status: u16,
    cache: String,
    micros: u64,
}

/// The measured outcome of one concurrency level.
struct Level {
    concurrency: usize,
    wall: Duration,
    samples: Vec<Sample>,
}

fn load(opts: &Options) {
    let mut levels = Vec::new();
    for &concurrency in &opts.concurrency {
        let level = run_level(opts, concurrency);
        let p = percentiles(&level.samples);
        println!(
            "hbc-load: c={concurrency} {} requests in {:.2}s — {:.1} req/s, \
             p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
            level.samples.len(),
            level.wall.as_secs_f64(),
            level.samples.len() as f64 / level.wall.as_secs_f64(),
            p[0] as f64 / 1000.0,
            p[1] as f64 / 1000.0,
            p[2] as f64 / 1000.0,
        );
        levels.push(level);
    }
    let report = render_report(opts, &levels);
    match &opts.out {
        None => println!("{report}"),
        Some(path) => {
            if let Some(parent) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    fail(&format!("cannot create {}: {e}", parent.display()));
                }
            }
            if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                fail(&format!("cannot write {}: {e}", path.display()));
            }
            println!("hbc-load: wrote {}", path.display());
        }
    }
}

/// Replays requests 0..`opts.requests` of the mix with `concurrency`
/// client threads pulling indices from a shared counter. Request `index`
/// goes to target `index % targets`.
fn run_level(opts: &Options, concurrency: usize) -> Level {
    let next = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<Sample>();
    let started = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..concurrency.max(1) {
        let next = Arc::clone(&next);
        let tx = tx.clone();
        let targets = opts.targets.clone();
        let (http, seed, requests) = (opts.http(), opts.seed, opts.requests);
        threads.push(std::thread::spawn(move || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= requests {
                return;
            }
            let target = targets[usize::try_from(index).unwrap_or(0) % targets.len()];
            let spec = mixed_request(seed, index).to_json();
            let t0 = Instant::now();
            let sample = match http.post(target, "/run", spec.as_bytes()) {
                Ok(resp) => Sample {
                    status: resp.status,
                    cache: resp.header("x-cache").unwrap_or("none").to_string(),
                    micros: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                },
                Err(_) => Sample {
                    status: 0,
                    cache: "transport-error".to_string(),
                    micros: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                },
            };
            if tx.send(sample).is_err() {
                return;
            }
        }));
    }
    drop(tx);
    let mut samples: Vec<Sample> = rx.iter().collect();
    for thread in threads {
        let _ = thread.join();
    }
    let wall = started.elapsed();
    samples.sort_by_key(|s| s.micros);
    Level { concurrency, wall, samples }
}

/// Nearest-rank p50/p95/p99 (in microseconds) over samples sorted by
/// latency.
fn percentiles(sorted: &[Sample]) -> [u64; 3] {
    let n = sorted.len();
    if n == 0 {
        return [0; 3];
    }
    [50u64, 95, 99].map(|p| {
        let rank = (p as usize * n).div_ceil(100).clamp(1, n);
        sorted[rank - 1].micros
    })
}

fn render_report(opts: &Options, levels: &[Level]) -> String {
    use std::collections::BTreeMap;
    let mut config = BTreeMap::new();
    config.insert("requests".to_string(), Json::U64(opts.requests));
    config.insert("seed".to_string(), Json::U64(opts.seed));
    config.insert("targets".to_string(), Json::U64(opts.targets.len() as u64));
    config.insert("mix".to_string(), Json::Str("hbc-load mix (spec::mixed_request)".to_string()));
    let levels = levels
        .iter()
        .map(|level| {
            let p = percentiles(&level.samples);
            let mut status = BTreeMap::new();
            let mut cache = BTreeMap::new();
            for s in &level.samples {
                let key = if s.status == 0 {
                    "transport-error".to_string()
                } else {
                    s.status.to_string()
                };
                let e = status.entry(key).or_insert(Json::U64(0));
                *e = Json::U64(e.as_u64().unwrap_or(0) + 1);
                let e = cache.entry(s.cache.clone()).or_insert(Json::U64(0));
                *e = Json::U64(e.as_u64().unwrap_or(0) + 1);
            }
            let mut latency = BTreeMap::new();
            for (name, micros) in [("p50_ms", p[0]), ("p95_ms", p[1]), ("p99_ms", p[2])] {
                latency.insert(name.to_string(), Json::F64(micros as f64 / 1000.0));
            }
            let mut obj = BTreeMap::new();
            obj.insert("concurrency".to_string(), Json::U64(level.concurrency as u64));
            obj.insert("wall_s".to_string(), Json::F64(level.wall.as_secs_f64()));
            obj.insert(
                "throughput_rps".to_string(),
                Json::F64(level.samples.len() as f64 / level.wall.as_secs_f64()),
            );
            obj.insert("latency".to_string(), Json::Obj(latency));
            obj.insert("status".to_string(), Json::Obj(status));
            obj.insert("cache".to_string(), Json::Obj(cache));
            Json::Obj(obj)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("schema".to_string(), Json::U64(1));
    root.insert("bench".to_string(), Json::Str("hbc-serve load".to_string()));
    root.insert("config".to_string(), Json::Obj(config));
    root.insert("levels".to_string(), Json::Arr(levels));
    Json::Obj(root).render()
}

/// The CI smoke gate: golden byte-identity plus a verified cache hit.
fn smoke(opts: &Options) {
    let http = opts.http();
    let addr = opts.primary();
    let mut request = RunRequest::new(ExperimentId::Fig4);
    request.preset = Preset::Fast;
    let expected = request.execute();
    let spec = request.to_json();

    let first = match http.post(addr, "/run", spec.as_bytes()) {
        Ok(resp) => resp,
        Err(e) => fail(&format!("first request failed: {e}")),
    };
    if first.status != 200 {
        fail(&format!("first request: expected 200, got {} ({})", first.status, first.text()));
    }
    if first.body != expected.as_bytes() {
        fail("first response body differs from the figure binary's output");
    }
    let second = match http.post(addr, "/run", spec.as_bytes()) {
        Ok(resp) => resp,
        Err(e) => fail(&format!("second request failed: {e}")),
    };
    let label = second.header("x-cache").unwrap_or("none").to_string();
    if second.status != 200 || second.body != expected.as_bytes() {
        fail(&format!(
            "second request: status {}, golden match {}",
            second.status,
            second.body == expected.as_bytes()
        ));
    }
    if !label.starts_with("hit-") {
        fail(&format!("second request was not served from the cache (X-Cache: {label})"));
    }
    let metrics = match http.get(addr, "/metrics") {
        Ok(resp) => resp,
        Err(e) => fail(&format!("metrics request failed: {e}")),
    };
    // `/metrics` is Prometheus text; the strict parser doubles as a
    // format-validity gate in CI.
    let samples = match hbc_serve::metrics::parse_prometheus(&metrics.text()) {
        Ok(samples) => samples,
        Err(e) => fail(&format!("metrics body is not valid Prometheus text: {e}")),
    };
    let hits: f64 =
        samples.iter().filter(|s| s.name == "serve_cache_hits_total").map(|s| s.value).sum();
    if samples.iter().all(|s| s.name != "serve_cache_hits_total") {
        fail("metrics response is missing the cache-hit counters");
    }
    if hits == 0.0 {
        fail("metrics report zero cache hits after a hit response");
    }
    let hits = hits as u64;
    // Capture the span trace: every line must be a JSON object naming a
    // registered stage. Saved for CI to archive as an artifact.
    let trace = match http.get(addr, "/trace") {
        Ok(resp) => resp,
        Err(e) => fail(&format!("trace request failed: {e}")),
    };
    let trace_text = trace.text();
    let mut spans = 0usize;
    for line in trace_text.lines() {
        let record = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trace line is not JSON ({e}): {line}")));
        let stage = record
            .as_obj()
            .and_then(|o| o.get("stage"))
            .and_then(|s| s.as_str())
            .unwrap_or_else(|| fail(&format!("trace line has no stage: {line}")));
        if !hbc_probe::is_registered_stage(stage) {
            fail(&format!("trace carries unregistered stage {stage:?}"));
        }
        spans += 1;
    }
    if spans == 0 {
        fail("trace is empty after served requests");
    }
    let trace_out = std::path::Path::new("results/TRACE_smoke.jsonl");
    if std::fs::create_dir_all("results").is_ok() {
        if let Err(e) = std::fs::write(trace_out, &trace_text) {
            eprintln!("note: could not write {}: {e}", trace_out.display());
        }
    }
    println!(
        "hbc-load smoke: ok ({} payload bytes, second request X-Cache: {label}, \
         {hits} cache hit(s) in /metrics, {spans} spans in /trace)",
        expected.len()
    );
}

/// The cluster CI gate, run against a coordinator: routed responses must
/// be byte-identical to in-process execution, attributed to a worker,
/// repeat as shard-local cache hits, and leave valid cluster metrics.
fn cluster_smoke(opts: &Options) {
    let http = opts.http();
    let addr = opts.primary();
    let mut bytes = 0usize;
    let mut workers = std::collections::BTreeSet::new();
    for index in 0..4u64 {
        let request = mixed_request(opts.seed, index);
        let expected = request.execute();
        let spec = request.to_json();
        let first = match http.post(addr, "/run", spec.as_bytes()) {
            Ok(resp) => resp,
            Err(e) => fail(&format!("request {index} failed: {e}")),
        };
        if first.status != 200 {
            fail(&format!(
                "request {index}: expected 200, got {} ({})",
                first.status,
                first.text()
            ));
        }
        if first.body != expected.as_bytes() {
            fail(&format!("request {index}: routed response differs from in-process execution"));
        }
        let worker = match first.header("x-worker") {
            Some(worker) => worker.to_string(),
            None => fail(&format!("request {index}: response carries no X-Worker attribution")),
        };
        // Rendezvous routing sends the identical spec to the same worker,
        // so the repeat must be a shard-local cache hit.
        let second = match http.post(addr, "/run", spec.as_bytes()) {
            Ok(resp) => resp,
            Err(e) => fail(&format!("repeat of request {index} failed: {e}")),
        };
        let label = second.header("x-cache").unwrap_or("none");
        if second.status != 200 || second.body != expected.as_bytes() {
            fail(&format!("repeat of request {index}: status {}", second.status));
        }
        if !label.starts_with("hit-") {
            fail(&format!("repeat of request {index} missed its shard cache (X-Cache: {label})"));
        }
        bytes += expected.len();
        workers.insert(worker);
    }
    let metrics = match http.get(addr, "/metrics") {
        Ok(resp) => resp,
        Err(e) => fail(&format!("metrics request failed: {e}")),
    };
    let samples = match hbc_serve::metrics::parse_prometheus(&metrics.text()) {
        Ok(samples) => samples,
        Err(e) => fail(&format!("metrics body is not valid Prometheus text: {e}")),
    };
    let forwarded: f64 =
        samples.iter().filter(|s| s.name == "cluster_forwarded_total").map(|s| s.value).sum();
    if forwarded < 8.0 {
        fail(&format!("cluster_forwarded_total is {forwarded}, expected at least 8"));
    }
    let healthy =
        samples.iter().filter(|s| s.name == "cluster_worker_healthy" && s.value == 1.0).count();
    if healthy == 0 {
        fail("no worker is marked healthy in /metrics");
    }
    println!(
        "hbc-load cluster-smoke: ok ({bytes} payload bytes over {} worker(s), \
         {forwarded} forwards, {healthy} healthy)",
        workers.len()
    );
}

fn options_from_args() -> Options {
    let mut opts = Options {
        targets: Vec::new(),
        requests: 64,
        concurrency: vec![1, 4],
        seed: 7,
        timeout: Duration::from_secs(120),
        out: Some(std::path::PathBuf::from("results/BENCH_serve.json")),
        smoke: false,
        cluster_smoke: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => {
                for part in value("--addr").split(',') {
                    match client::parse_addr(part.trim()) {
                        Ok(parsed) => opts.targets.push(parsed),
                        Err(e) => usage(&e),
                    }
                }
            }
            "--requests" => opts.requests = parse(&value("--requests"), "--requests"),
            "--concurrency" => {
                opts.concurrency = value("--concurrency")
                    .split(',')
                    .map(|c| parse(c.trim(), "--concurrency"))
                    .collect();
                if opts.concurrency.is_empty() || opts.concurrency.contains(&0) {
                    usage("--concurrency needs positive levels, e.g. 1,4");
                }
            }
            "--seed" => opts.seed = parse(&value("--seed"), "--seed"),
            "--timeout-ms" => {
                opts.timeout = Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"));
            }
            "--out" => {
                let path = value("--out");
                opts.out = if path == "none" { None } else { Some(path.into()) };
            }
            "--smoke" => opts.smoke = true,
            "--cluster-smoke" => opts.cluster_smoke = true,
            "--shutdown" => opts.shutdown = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.targets.is_empty() {
        usage("--addr is required (e.g. --addr http://127.0.0.1:8080)");
    }
    opts
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| usage(&format!("{flag} needs an unsigned integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: hbc-load --addr URL[,URL…] [--requests N] [--concurrency C1,C2,…] [--seed N] \
         [--timeout-ms N] [--out PATH|none] [--smoke] [--cluster-smoke] [--shutdown]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("hbc-load: FAIL: {msg}");
    std::process::exit(1);
}
