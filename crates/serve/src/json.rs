//! A minimal, dependency-free JSON codec.
//!
//! The service speaks JSON on the wire (request specs in, error envelopes
//! and `/metrics` out) and uses a *canonical* rendering — object keys
//! sorted, no insignificant whitespace, integers kept exact — as the input
//! to the content-addressed cache key. Both directions live here so the
//! round-trip `parse(render(v)) == v` is a single crate's contract,
//! property-tested in `tests/codec_props.rs`.
//!
//! Numbers are represented as either an exact `u64` or an `f64`: request
//! specs carry 64-bit seeds, which a lone `f64` (the usual JSON number
//! type) cannot round-trip above 2^53.
//!
//! # Example
//!
//! ```
//! use hbc_serve::json::Json;
//!
//! let v = Json::parse(r#"{"b":1,"a":[true,null,"x"]}"#).unwrap();
//! // Canonical rendering sorts object keys.
//! assert_eq!(v.render(), r#"{"a":[true,null,"x"],"b":1}"#);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects are `BTreeMap`s, so rendering is canonical
/// (keys sorted) by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is sorted, duplicate keys are a parse error.
    Obj(BTreeMap<String, Json>),
}

/// A JSON syntax error: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders canonically: sorted object keys, no whitespace, exact
    /// integers, shortest-round-trip floats.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The object map, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact integer, if this value is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float, if it is numeric (exact integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Formats a `u64` without the formatting machinery (hot in rendering).
fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer is ASCII digits only.
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

/// Writes an `f64` so that parsing it back yields the same bits (Rust's
/// `{:?}` float formatting is shortest-round-trip). Non-finite values have
/// no JSON spelling and render as `null`.
fn write_f64(x: f64, out: &mut String) {
    use fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting depth cap: the parser recurses per level, and wire input is
/// untrusted, so unbounded depth would be a stack-overflow DoS.
const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                // Duplicate keys would make the canonical form ambiguous
                // (last-wins vs first-wins), so the cache-key path rejects
                // them outright.
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(map));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the (valid, &str-backed)
                    // input.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        // Leading zeros are not JSON (`01`), except a lone `0`.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        // The slice is ASCII digits/sign/dot/exp, carved from a &str.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float && self.bytes[start] != b'-' {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::F64(x)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(text: &str) -> String {
        Json::parse(text).unwrap().render()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(rt("null"), "null");
        assert_eq!(rt("true"), "true");
        assert_eq!(rt("false"), "false");
        assert_eq!(rt("0"), "0");
        assert_eq!(rt("18446744073709551615"), "18446744073709551615");
        assert_eq!(rt("-1"), "-1.0");
        assert_eq!(rt("1.5"), "1.5");
        assert_eq!(rt("\"hi\""), "\"hi\"");
    }

    #[test]
    fn canonical_form_sorts_keys_and_strips_whitespace() {
        assert_eq!(rt("{ \"b\" : 2 , \"a\" : [ 1 , 2 ] }"), "{\"a\":[1,2],\"b\":2}");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\nquote\"tab\tback\\done \u{1}".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        // Surrogate-pair escape decodes to one astral character.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn u64_is_exact_above_2_pow_53() {
        let n = (1u64 << 53) + 1;
        let v = Json::parse(&n.to_string()).unwrap();
        assert_eq!(v, Json::U64(n));
        assert_eq!(v.render(), n.to_string());
    }

    #[test]
    fn errors_name_the_offset() {
        for bad in ["{", "[1,", "\"x", "{\"a\":1,\"a\":2}", "01", "1.e3", "nul", "[1] x", "\u{7}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("[1,]").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3,\"b\":true}").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["s"].as_str(), Some("x"));
        assert_eq!(obj["n"].as_u64(), Some(3));
        assert_eq!(obj["b"].as_bool(), Some(true));
        assert_eq!(obj["s"].as_u64(), None);
    }
}
