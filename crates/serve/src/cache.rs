//! The content-addressed result cache.
//!
//! Keys are [`crate::spec::RunRequest::spec_hash`] values: SHA-256 over
//! the canonical spec, so two requests share an entry exactly when their
//! result-determining fields agree. Lookups go memory → disk:
//!
//! * the in-memory tier is a bounded LRU of rendered payloads;
//! * the disk tier persists every insert under the cache directory
//!   (`results/cache/` by default) as `<hash>.out` (the payload, the
//!   exact bytes the figure binary would print) next to `<hash>.spec`
//!   (the canonical spec that produced it).
//!
//! Entries are written atomically (temp file + rename), so a crashed or
//! killed server never leaves a half-written payload a later server
//! could replay. Every disk hit re-checks the stored canonical spec
//! against the request's; a mismatch — a SHA-256 collision or a
//! corrupted/renamed entry — is treated as a miss in release builds and
//! panics under the `sanitize` feature, mirroring the simulator's
//! sanitizer contract.
//!
//! # Example
//!
//! ```
//! use hbc_serve::cache::{ResultCache, Tier};
//!
//! let cache = ResultCache::in_memory(4);
//! assert!(cache.get("deadbeef", "{\"spec\":1}").is_none());
//! cache.put("deadbeef", "{\"spec\":1}", "payload\n");
//! let (body, tier) = cache.get("deadbeef", "{\"spec\":1}").unwrap();
//! assert_eq!((body.as_str(), tier), ("payload\n", Tier::Memory));
//! ```

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lock;

/// Which tier served a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk store (the entry was promoted into memory).
    Disk,
}

/// One in-memory entry: the payload plus an LRU stamp.
#[derive(Debug, Clone)]
struct Entry {
    body: String,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Lru {
    entries: BTreeMap<String, Entry>,
    tick: u64,
}

impl Lru {
    fn get(&mut self, hash: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(hash)?;
        entry.stamp = tick;
        Some(entry.body.clone())
    }

    /// Inserts, returning how many entries were evicted to make room.
    fn put(&mut self, hash: &str, body: &str, capacity: usize) -> u64 {
        if capacity == 0 {
            return 0;
        }
        self.tick += 1;
        self.entries.insert(hash.to_string(), Entry { body: body.to_string(), stamp: self.tick });
        let mut evicted = 0;
        while self.entries.len() > capacity {
            // O(n) victim scan; the LRU is small (tens of entries) and
            // eviction happens at most once per insert.
            let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.stamp).map(|(hash, _)| hash.clone())
            else {
                break;
            };
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A two-tier (memory LRU + disk) content-addressed store of rendered
/// experiment payloads. Shared across worker threads; all methods take
/// `&self`.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    capacity: usize,
    lru: Mutex<Lru>,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache persisting to `dir`, holding at most `capacity` entries in
    /// memory. The directory is created on first insert.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> Self {
        ResultCache {
            dir: Some(dir.into()),
            capacity,
            lru: Mutex::new(Lru::default()),
            evictions: AtomicU64::new(0),
        }
    }

    /// A memory-only cache (no persistence) — used by tests and by
    /// `--cache-dir none`.
    pub fn in_memory(capacity: usize) -> Self {
        ResultCache {
            dir: None,
            capacity,
            lru: Mutex::new(Lru::default()),
            evictions: AtomicU64::new(0),
        }
    }

    /// The on-disk location, if persistence is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up `hash`, verifying `canonical` against the stored spec on
    /// a disk hit. Returns the payload and the tier that served it; a
    /// disk hit is promoted into the memory LRU.
    pub fn get(&self, hash: &str, canonical: &str) -> Option<(String, Tier)> {
        if let Some(body) = lock(&self.lru).get(hash) {
            return Some((body, Tier::Memory));
        }
        let dir = self.dir.as_ref()?;
        let body = read_to_string_if_present(&dir.join(format!("{hash}.out")))?;
        let stored_spec = read_to_string_if_present(&dir.join(format!("{hash}.spec")));
        if stored_spec.as_deref() != Some(canonical) {
            // A content-address hit whose stored spec disagrees with the
            // request's canonical spec: SHA-256 collision or corrupted
            // entry. Re-simulating is always safe; sanitize builds fail
            // loudly instead so the cause gets investigated.
            #[cfg(feature = "sanitize")]
            // hbc-allow: panic (sanitize builds fail loudly by design)
            panic!(
                "sanitize: cache entry {hash} spec mismatch\n  stored:  {:?}\n  request: {canonical:?}",
                stored_spec
            );
            #[cfg(not(feature = "sanitize"))]
            return None;
        }
        let evicted = lock(&self.lru).put(hash, &body, self.capacity);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Some((body, Tier::Disk))
    }

    /// Inserts a payload under `hash`, persisting it (and the canonical
    /// spec that produced it) if a directory is configured. Disk errors
    /// are reported to the caller but the memory tier is always updated —
    /// a full disk degrades persistence, not serving.
    pub fn put(&self, hash: &str, canonical: &str, body: &str) -> io::Result<()> {
        let evicted = lock(&self.lru).put(hash, body, self.capacity);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)?;
        write_atomic(&dir.join(format!("{hash}.spec")), canonical.as_bytes())?;
        write_atomic(&dir.join(format!("{hash}.out")), body.as_bytes())
    }

    /// Number of entries currently resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        lock(&self.lru).entries.len()
    }

    /// Total memory-tier entries evicted since creation (inserts and disk
    /// promotions both count; the `serve.cache.evictions` metric).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Reads a file that may legitimately not exist; any other error also
/// reads as "absent" (the cache must never turn an I/O error into a
/// failed request — a miss just re-simulates).
fn read_to_string_if_present(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename, so readers only ever observe complete entries.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hbc-serve-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_lru_evicts_least_recent() {
        let cache = ResultCache::in_memory(2);
        cache.put("a", "sa", "1").unwrap();
        cache.put("b", "sb", "2").unwrap();
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get("a", "sa").map(|(b, _)| b).as_deref(), Some("1")); // refresh a
        cache.put("c", "sc", "3").unwrap();
        assert_eq!(cache.memory_len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("b", "sb").is_none(), "b was the LRU victim");
        assert!(cache.get("a", "sa").is_some());
        assert!(cache.get("c", "sc").is_some());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = temp_dir("persist");
        let first = ResultCache::new(&dir, 4);
        first.put("h1", "spec1", "body1\n").unwrap();
        drop(first);

        let second = ResultCache::new(&dir, 4);
        let (body, tier) = second.get("h1", "spec1").expect("disk hit");
        assert_eq!((body.as_str(), tier), ("body1\n", Tier::Disk));
        // Promoted: the next lookup is a memory hit.
        assert_eq!(second.get("h1", "spec1").expect("memory hit").1, Tier::Memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(not(feature = "sanitize"))]
    fn spec_mismatch_is_a_miss() {
        let dir = temp_dir("mismatch");
        let cache = ResultCache::new(&dir, 0); // no memory tier: force disk reads
        cache.put("h", "the-real-spec", "body").unwrap();
        assert!(cache.get("h", "an-imposter-spec").is_none());
        assert!(cache.get("h", "the-real-spec").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(feature = "sanitize")]
    fn spec_mismatch_panics_under_sanitize() {
        let dir = temp_dir("sanitize");
        let cache = ResultCache::new(&dir, 0);
        cache.put("h", "the-real-spec", "body").unwrap();
        let err = std::panic::catch_unwind(|| cache.get("h", "an-imposter-spec"));
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_zero_keeps_nothing_in_memory() {
        let cache = ResultCache::in_memory(0);
        cache.put("a", "s", "1").unwrap();
        assert_eq!(cache.memory_len(), 0);
        assert!(cache.get("a", "s").is_none());
    }
}
