//! Service metrics, exported as Prometheus text and as registry JSON.
//!
//! Counters are plain atomics so the request path never takes a lock to
//! count; the latency histogram reuses [`hbc_probe::Histogram`] (exact
//! count/sum/min/max, power-of-two buckets) under a mutex, touched once
//! per response. Two snapshot renderings exist:
//!
//! * `GET /metrics` — [`Metrics::to_prometheus`], the Prometheus text
//!   exposition format: `_total` counters, queue gauges, and summaries
//!   with p50/p95/p99 `quantile` labels for end-to-end latency and for
//!   every span stage. [`parse_prometheus`] is the strict reader the
//!   tests (and the load generator's smoke gate) validate bodies with.
//! * `GET /metrics.json` — [`Metrics::to_registry`] into a
//!   [`ProbeRegistry`] and its deterministic JSON — the same format,
//!   naming scheme, and `probe-naming` lint coverage as the simulator's
//!   own probes.
//!
//! # Example
//!
//! ```
//! use hbc_serve::metrics::Metrics;
//!
//! let m = Metrics::default();
//! m.requests.inc();
//! m.cache_hits_memory.inc();
//! let json = m.to_registry().to_json();
//! assert!(json.contains("\"serve.cache.hits.memory\":1"));
//! let text = m.to_prometheus(0, 0, &Default::default());
//! assert!(text.contains("serve_http_requests_total 1"));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hbc_probe::{Histogram, ProbeRegistry};

use crate::lock;

/// A monotonically increasing atomic counter (relaxed ordering: the
/// metrics are statistics, not synchronization).
#[derive(Debug, Default)]
pub struct AtomicCounter(AtomicU64);

impl AtomicCounter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared service counters. One instance lives behind an `Arc` in the
/// server's shared state; every field is independently updatable from any
/// worker without locking.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests that reached a handler (parsed request line).
    pub requests: AtomicCounter,
    /// `200` responses.
    pub responses_ok: AtomicCounter,
    /// `400` responses (malformed HTTP, JSON, or spec).
    pub responses_bad_request: AtomicCounter,
    /// `404` responses.
    pub responses_not_found: AtomicCounter,
    /// `429` responses (admission queue full).
    pub responses_rejected: AtomicCounter,
    /// `503` responses (shutting down).
    pub responses_unavailable: AtomicCounter,
    /// `504` responses (per-request timeout).
    pub responses_timeout: AtomicCounter,
    /// `500` responses (execution failed).
    pub responses_error: AtomicCounter,
    /// Result-cache hits served from the in-memory LRU.
    pub cache_hits_memory: AtomicCounter,
    /// Result-cache hits replayed from `results/cache/` on disk.
    pub cache_hits_disk: AtomicCounter,
    /// Cache misses (a simulation was started).
    pub cache_misses: AtomicCounter,
    /// Requests coalesced onto an identical in-flight simulation.
    pub coalesced: AtomicCounter,
    /// Simulations actually executed by the engine.
    pub exec_runs: AtomicCounter,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// High-water mark of the admission queue.
    pub queue_peak: AtomicU64,
    /// End-to-end request latency in microseconds (accept to response
    /// written), including queueing.
    pub latency_micros: Mutex<Histogram>,
}

impl Metrics {
    /// Notes a connection entering the admission queue.
    pub fn queue_push(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Notes a connection leaving the admission queue.
    pub fn queue_pop(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one served request's end-to-end latency.
    pub fn record_latency(&self, micros: u64) {
        lock(&self.latency_micros).record(micros);
    }

    /// Snapshots every counter into a fresh [`ProbeRegistry`] (sorted,
    /// deterministic given the counter values).
    pub fn to_registry(&self) -> ProbeRegistry {
        let mut reg = ProbeRegistry::new();
        reg.counter("serve.http.requests").set(self.requests.get());
        reg.counter("serve.http.responses.ok").set(self.responses_ok.get());
        reg.counter("serve.http.responses.bad_request").set(self.responses_bad_request.get());
        reg.counter("serve.http.responses.not_found").set(self.responses_not_found.get());
        reg.counter("serve.http.responses.rejected").set(self.responses_rejected.get());
        reg.counter("serve.http.responses.unavailable").set(self.responses_unavailable.get());
        reg.counter("serve.http.responses.timeout").set(self.responses_timeout.get());
        reg.counter("serve.http.responses.error").set(self.responses_error.get());
        reg.counter("serve.cache.hits.memory").set(self.cache_hits_memory.get());
        reg.counter("serve.cache.hits.disk").set(self.cache_hits_disk.get());
        reg.counter("serve.cache.misses").set(self.cache_misses.get());
        reg.counter("serve.cache.coalesced").set(self.coalesced.get());
        reg.counter("serve.exec.runs").set(self.exec_runs.get());
        reg.counter("serve.queue.depth").set(self.queue_depth.load(Ordering::Relaxed));
        reg.counter("serve.queue.peak").set(self.queue_peak.load(Ordering::Relaxed));
        *reg.histogram("serve.latency.micros") = lock(&self.latency_micros).clone();
        reg
    }

    /// Renders the Prometheus text exposition format: every counter as a
    /// `_total` family, the queue gauges, and `summary` families (with
    /// p50/p95/p99 `quantile` labels, `_sum`, and `_count`) for the
    /// end-to-end latency and for each span stage in `stages`.
    ///
    /// `cache_evictions` comes from the result cache and `span_dropped`
    /// from the span ring's drop accounting — both own their
    /// counts; `stages` from [`crate::spans::ServeSpans::stage_histograms`].
    pub fn to_prometheus(
        &self,
        cache_evictions: u64,
        span_dropped: u64,
        stages: &BTreeMap<&'static str, Histogram>,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let family = |out: &mut String, name: &str, kind: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };

        family(
            &mut out,
            "serve_http_requests_total",
            "counter",
            "HTTP requests that reached a handler (parsed request line).",
        );
        let _ = writeln!(out, "serve_http_requests_total {}", self.requests.get());

        family(&mut out, "serve_http_responses_total", "counter", "Responses by HTTP status code.");
        for (status, counter) in [
            ("200", &self.responses_ok),
            ("400", &self.responses_bad_request),
            ("404", &self.responses_not_found),
            ("429", &self.responses_rejected),
            ("500", &self.responses_error),
            ("503", &self.responses_unavailable),
            ("504", &self.responses_timeout),
        ] {
            let _ = writeln!(
                out,
                "serve_http_responses_total{{status=\"{status}\"}} {}",
                counter.get()
            );
        }

        family(&mut out, "serve_cache_hits_total", "counter", "Result-cache hits by serving tier.");
        let _ = writeln!(
            out,
            "serve_cache_hits_total{{tier=\"memory\"}} {}",
            self.cache_hits_memory.get()
        );
        let _ =
            writeln!(out, "serve_cache_hits_total{{tier=\"disk\"}} {}", self.cache_hits_disk.get());
        family(
            &mut out,
            "serve_cache_misses_total",
            "counter",
            "Cache misses (a simulation was started).",
        );
        let _ = writeln!(out, "serve_cache_misses_total {}", self.cache_misses.get());
        family(
            &mut out,
            "serve_cache_coalesced_total",
            "counter",
            "Requests coalesced onto an identical in-flight simulation.",
        );
        let _ = writeln!(out, "serve_cache_coalesced_total {}", self.coalesced.get());
        family(
            &mut out,
            "serve_cache_evictions_total",
            "counter",
            "Memory-tier LRU entries evicted by inserts.",
        );
        let _ = writeln!(out, "serve_cache_evictions_total {cache_evictions}");
        family(
            &mut out,
            "serve_exec_runs_total",
            "counter",
            "Simulations actually executed by the engine.",
        );
        let _ = writeln!(out, "serve_exec_runs_total {}", self.exec_runs.get());

        family(&mut out, "serve_queue_depth", "gauge", "Current admission-queue depth.");
        let _ = writeln!(out, "serve_queue_depth {}", self.queue_depth.load(Ordering::Relaxed));
        family(&mut out, "serve_queue_peak", "gauge", "High-water mark of the admission queue.");
        let _ = writeln!(out, "serve_queue_peak {}", self.queue_peak.load(Ordering::Relaxed));

        family(
            &mut out,
            "hbc_span_dropped_total",
            "counter",
            "Spans evicted from the bounded ring before export (a nonzero value means GET /trace is truncated).",
        );
        let _ = writeln!(out, "hbc_span_dropped_total {span_dropped}");

        // `labels` is either empty or a rendered `key="value"` pair to
        // prepend before the quantile label.
        let summary = |out: &mut String, name: &str, labels: &str, h: &Histogram| {
            let lead = if labels.is_empty() { String::new() } else { format!("{labels},") };
            for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(out, "{name}{{{lead}quantile=\"{tag}\"}} {}", h.quantile(q));
            }
            let braced = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
            let _ = writeln!(out, "{name}_sum{braced} {}", h.sum());
            let _ = writeln!(out, "{name}_count{braced} {}", h.count());
        };
        family(
            &mut out,
            "serve_latency_microseconds",
            "summary",
            "End-to-end request latency (accept to response written), including queueing.",
        );
        summary(&mut out, "serve_latency_microseconds", "", &lock(&self.latency_micros).clone());

        family(
            &mut out,
            "serve_stage_duration_microseconds",
            "summary",
            "Span duration per request lifecycle stage.",
        );
        for (stage, h) in stages {
            summary(
                &mut out,
                "serve_stage_duration_microseconds",
                &format!("stage=\"{stage}\""),
                h,
            );
        }
        out
    }
}

/// One parsed Prometheus sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (family name plus any `_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// `true` for a legal Prometheus metric or label name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels additionally may not contain `:`,
/// which none of ours do).
fn prom_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses and validates a Prometheus text exposition body, returning its
/// samples. Errors (with a line number) on malformed names, labels, or
/// values, on a sample whose family has no preceding `# TYPE`, and on
/// duplicate `# TYPE` declarations — strict enough that the tests and the
/// load generator's smoke gate prove `GET /metrics` stays well-formed.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut typed: BTreeSet<&str> = BTreeSet::new();
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {n}: TYPE needs a name and a kind"))?;
                if !prom_name_ok(name) {
                    return Err(format!("line {n}: bad metric name {name:?}"));
                }
                if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                    return Err(format!("line {n}: unknown metric kind {kind:?}"));
                }
                if !typed.insert(name) {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {n}: HELP needs a name and text"))?;
                if !prom_name_ok(name) || help.is_empty() {
                    return Err(format!("line {n}: bad HELP line"));
                }
            }
            // Other comments are legal and carry no structure.
            continue;
        }
        // A sample: `name value` or `name{k="v",...} value`.
        let (name, rest) = match line.find('{') {
            Some(brace) => {
                let (name, rest) = line.split_at(brace);
                let (labels, value) = rest[1..]
                    .split_once('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some((labels, value)))
            }
            None => (line.split_once(' ').map_or(line, |(name, _)| name), None),
        };
        if !prom_name_ok(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let (labels_text, value_text) = match rest {
            Some((labels, value)) => (labels, value),
            None => ("", line.strip_prefix(name).unwrap_or("")),
        };
        let mut labels = Vec::new();
        if !labels_text.is_empty() {
            for pair in labels_text.split(',') {
                let (key, quoted) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {n}: label without `=` in {pair:?}"))?;
                let value = quoted
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: unquoted label value in {pair:?}"))?;
                if !prom_name_ok(key) || value.contains(['"', '\\']) {
                    return Err(format!("line {n}: bad label pair {pair:?}"));
                }
                labels.push((key.to_string(), value.to_string()));
            }
        }
        let value_text = value_text.trim_start();
        let value: f64 =
            value_text.parse().map_err(|_| format!("line {n}: bad sample value {value_text:?}"))?;
        let family = ["_sum", "_count", "_bucket"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix).filter(|f| typed.contains(f)))
            .unwrap_or(name);
        if !typed.contains(family) {
            return Err(format!("line {n}: sample {name} has no preceding # TYPE"));
        }
        samples.push(Sample { name: name.to_string(), labels, value });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let m = Metrics::default();
        m.queue_push();
        m.queue_push();
        m.queue_pop();
        m.queue_push();
        let reg = m.to_registry();
        assert_eq!(reg.get("serve.queue.depth"), Some(2));
        assert_eq!(reg.get("serve.queue.peak"), Some(2));
    }

    #[test]
    fn export_is_parseable_and_complete() {
        let m = Metrics::default();
        m.requests.inc();
        m.record_latency(1234);
        let json = m.to_registry().to_json();
        let v = crate::json::Json::parse(&json).expect("metrics JSON parses");
        let obj = v.as_obj().expect("object");
        let counters = obj["counters"].as_obj().expect("counters object");
        assert_eq!(counters["serve.http.requests"].as_u64(), Some(1));
        // The service's own fifteen; `serve.cache.evictions` is appended
        // by the server from the cache's count (16 at the endpoint).
        assert_eq!(counters.len(), 15);
        assert!(obj["histograms"].as_obj().expect("histograms")["serve.latency.micros"]
            .as_obj()
            .is_some());
    }

    #[test]
    fn prometheus_body_is_strictly_parseable_and_complete() {
        let m = Metrics::default();
        m.requests.inc();
        m.responses_ok.inc();
        m.cache_hits_memory.inc();
        m.queue_push();
        m.record_latency(1234);
        let mut stages = BTreeMap::new();
        let mut h = Histogram::default();
        h.record(500);
        h.record(900);
        stages.insert("serve.parse", h);

        let text = m.to_prometheus(3, 2, &stages);
        let samples = parse_prometheus(&text).expect("body parses");
        let find = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
        assert_eq!(find("serve_http_requests_total"), Some(1.0));
        assert_eq!(find("serve_cache_evictions_total"), Some(3.0));
        assert_eq!(find("hbc_span_dropped_total"), Some(2.0));
        assert_eq!(find("serve_queue_depth"), Some(1.0));
        assert_eq!(find("serve_latency_microseconds_count"), Some(1.0));
        let ok = samples
            .iter()
            .find(|s| s.name == "serve_http_responses_total" && s.label("status") == Some("200"))
            .expect("labeled status sample");
        assert_eq!(ok.value, 1.0);
        let parse_count = samples
            .iter()
            .find(|s| {
                s.name == "serve_stage_duration_microseconds_count"
                    && s.label("stage") == Some("serve.parse")
            })
            .expect("stage summary");
        assert_eq!(parse_count.value, 2.0);
        let quantiles: Vec<f64> = samples
            .iter()
            .filter(|s| {
                s.name == "serve_stage_duration_microseconds"
                    && s.label("stage") == Some("serve.parse")
            })
            .map(|s| s.value)
            .collect();
        assert_eq!(quantiles.len(), 3, "p50/p95/p99");
        assert!(quantiles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parse_prometheus_rejects_malformed_bodies() {
        for (body, why) in [
            ("bad name 1\n", "space in metric name"),
            ("# TYPE x counter\nx notanumber\n", "unparseable value"),
            ("orphan_total 3\n", "sample with no TYPE"),
            ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
            ("# TYPE x wat\nx 1\n", "unknown kind"),
            ("# TYPE x counter\nx{l=\"v\" 1\n", "unterminated labels"),
            ("# TYPE x counter\nx{l=v} 1\n", "unquoted label value"),
        ] {
            assert!(parse_prometheus(body).is_err(), "{why} must be rejected");
        }
        // Bare comments and empty lines are legal exposition.
        let ok = "# a free-form comment\n\n# TYPE up gauge\nup 1\n";
        assert_eq!(parse_prometheus(ok).expect("parses").len(), 1);
    }
}
