//! Service metrics, exported through the `hbc-probe` registry.
//!
//! Counters are plain atomics so the request path never takes a lock to
//! count; the latency histogram reuses [`hbc_probe::Histogram`] (exact
//! count/sum/min/max, power-of-two buckets) under a mutex, touched once
//! per response. `GET /metrics` snapshots everything into a
//! [`ProbeRegistry`] and renders its deterministic JSON — the same
//! format, naming scheme, and `probe-naming` lint coverage as the
//! simulator's own probes.
//!
//! # Example
//!
//! ```
//! use hbc_serve::metrics::Metrics;
//!
//! let m = Metrics::default();
//! m.requests.inc();
//! m.cache_hits_memory.inc();
//! let json = m.to_registry().to_json();
//! assert!(json.contains("\"serve.cache.hits.memory\":1"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hbc_probe::{Histogram, ProbeRegistry};

use crate::lock;

/// A monotonically increasing atomic counter (relaxed ordering: the
/// metrics are statistics, not synchronization).
#[derive(Debug, Default)]
pub struct AtomicCounter(AtomicU64);

impl AtomicCounter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared service counters. One instance lives behind an `Arc` in the
/// server's shared state; every field is independently updatable from any
/// worker without locking.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests that reached a handler (parsed request line).
    pub requests: AtomicCounter,
    /// `200` responses.
    pub responses_ok: AtomicCounter,
    /// `400` responses (malformed HTTP, JSON, or spec).
    pub responses_bad_request: AtomicCounter,
    /// `404` responses.
    pub responses_not_found: AtomicCounter,
    /// `429` responses (admission queue full).
    pub responses_rejected: AtomicCounter,
    /// `503` responses (shutting down).
    pub responses_unavailable: AtomicCounter,
    /// `504` responses (per-request timeout).
    pub responses_timeout: AtomicCounter,
    /// `500` responses (execution failed).
    pub responses_error: AtomicCounter,
    /// Result-cache hits served from the in-memory LRU.
    pub cache_hits_memory: AtomicCounter,
    /// Result-cache hits replayed from `results/cache/` on disk.
    pub cache_hits_disk: AtomicCounter,
    /// Cache misses (a simulation was started).
    pub cache_misses: AtomicCounter,
    /// Requests coalesced onto an identical in-flight simulation.
    pub coalesced: AtomicCounter,
    /// Simulations actually executed by the engine.
    pub exec_runs: AtomicCounter,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// High-water mark of the admission queue.
    pub queue_peak: AtomicU64,
    /// End-to-end request latency in microseconds (accept to response
    /// written), including queueing.
    pub latency_micros: Mutex<Histogram>,
}

impl Metrics {
    /// Notes a connection entering the admission queue.
    pub fn queue_push(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Notes a connection leaving the admission queue.
    pub fn queue_pop(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one served request's end-to-end latency.
    pub fn record_latency(&self, micros: u64) {
        lock(&self.latency_micros).record(micros);
    }

    /// Snapshots every counter into a fresh [`ProbeRegistry`] (sorted,
    /// deterministic given the counter values).
    pub fn to_registry(&self) -> ProbeRegistry {
        let mut reg = ProbeRegistry::new();
        reg.counter("serve.http.requests").set(self.requests.get());
        reg.counter("serve.http.responses.ok").set(self.responses_ok.get());
        reg.counter("serve.http.responses.bad_request").set(self.responses_bad_request.get());
        reg.counter("serve.http.responses.not_found").set(self.responses_not_found.get());
        reg.counter("serve.http.responses.rejected").set(self.responses_rejected.get());
        reg.counter("serve.http.responses.unavailable").set(self.responses_unavailable.get());
        reg.counter("serve.http.responses.timeout").set(self.responses_timeout.get());
        reg.counter("serve.http.responses.error").set(self.responses_error.get());
        reg.counter("serve.cache.hits.memory").set(self.cache_hits_memory.get());
        reg.counter("serve.cache.hits.disk").set(self.cache_hits_disk.get());
        reg.counter("serve.cache.misses").set(self.cache_misses.get());
        reg.counter("serve.cache.coalesced").set(self.coalesced.get());
        reg.counter("serve.exec.runs").set(self.exec_runs.get());
        reg.counter("serve.queue.depth").set(self.queue_depth.load(Ordering::Relaxed));
        reg.counter("serve.queue.peak").set(self.queue_peak.load(Ordering::Relaxed));
        *reg.histogram("serve.latency.micros") = lock(&self.latency_micros).clone();
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let m = Metrics::default();
        m.queue_push();
        m.queue_push();
        m.queue_pop();
        m.queue_push();
        let reg = m.to_registry();
        assert_eq!(reg.get("serve.queue.depth"), Some(2));
        assert_eq!(reg.get("serve.queue.peak"), Some(2));
    }

    #[test]
    fn export_is_parseable_and_complete() {
        let m = Metrics::default();
        m.requests.inc();
        m.record_latency(1234);
        let json = m.to_registry().to_json();
        let v = crate::json::Json::parse(&json).expect("metrics JSON parses");
        let obj = v.as_obj().expect("object");
        let counters = obj["counters"].as_obj().expect("counters object");
        assert_eq!(counters["serve.http.requests"].as_u64(), Some(1));
        assert_eq!(counters.len(), 15);
        assert!(obj["histograms"].as_obj().expect("histograms")["serve.latency.micros"]
            .as_obj()
            .is_some());
    }
}
