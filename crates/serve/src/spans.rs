//! Request-scoped span tracing for the service.
//!
//! Every accepted connection gets a request ID from the shared
//! [`hbc_probe::SpanLog`], and each lifecycle stage — accept, queue wait,
//! parse, cache lookup, single-flight wait, simulate, serialize, write —
//! records one span with monotonic microsecond timestamps measured from
//! the server's start. The retained window is exported verbatim at
//! `GET /trace` as JSON lines, and a per-stage duration histogram feeds
//! the `serve_stage_duration_microseconds` summary in `GET /metrics`.
//!
//! Unlike the simulator's feature-gated `hbc_core::spans`, serve spans are
//! always on: the service lives in wall-clock territory anyway, and one
//! mutex push per stage is noise next to a socket write. The clock stays
//! out of `hbc-probe` (which is simulation-deterministic by contract);
//! this module owns the `Instant` origin.
//!
//! # Example
//!
//! ```
//! use hbc_serve::spans::ServeSpans;
//!
//! let spans = ServeSpans::new(64);
//! let request = spans.begin_request();
//! let t0 = spans.now_us();
//! // ... do the stage's work ...
//! spans.record_at("serve.parse", request, 0, t0, spans.now_us());
//! assert!(spans.to_jsonl().contains("\"stage\":\"serve.parse\""));
//! ```

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use hbc_probe::{Histogram, SpanLog, SpanRecord};

use crate::lock;

/// The server's span sink: a bounded ring of recent [`SpanRecord`]s plus
/// per-stage duration histograms, stamped from one process-local
/// monotonic origin. Shared across the acceptor, workers, and runner
/// threads; all methods take `&self`.
#[derive(Debug)]
pub struct ServeSpans {
    log: SpanLog,
    origin: Instant,
    stages: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl ServeSpans {
    /// A sink retaining the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        ServeSpans::with_id_base(capacity, 0)
    }

    /// A sink whose request/span IDs start above `base` (see
    /// [`SpanLog::with_id_base`]). Cluster workers use their bound port
    /// shifted into the high bits, so a federated trace merge never sees
    /// two processes allocate the same span ID.
    pub fn with_id_base(capacity: usize, base: u64) -> Self {
        ServeSpans {
            log: SpanLog::with_id_base(capacity, base),
            origin: Instant::now(),
            stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// Microseconds elapsed since the server started (monotonic).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Allocates a fresh request ID (never 0).
    pub fn begin_request(&self) -> u64 {
        self.log.next_request_id()
    }

    /// Records one completed span of `request` under `stage`, spanning
    /// `[start_us, end_us]` as measured by [`now_us`](Self::now_us), and
    /// folds its duration into the stage's histogram. `parent` is the
    /// enclosing span's ID (0 for a root span). Returns the new span's ID
    /// so callers can nest children under it.
    pub fn record_at(
        &self,
        stage: &'static str,
        request: u64,
        parent: u64,
        start_us: u64,
        end_us: u64,
    ) -> u64 {
        let span = self.log.next_span_id();
        self.record_linked(stage, span, request, parent, start_us, end_us);
        span
    }

    /// Allocates a span ID *before* its span completes, so the ID can be
    /// sent to another process as a parent link (the wire trace context)
    /// while the span is still open. Pair with
    /// [`record_linked`](Self::record_linked) once the span ends.
    pub fn alloc_span(&self) -> u64 {
        self.log.next_span_id()
    }

    /// Records a completed span under a pre-allocated ID from
    /// [`alloc_span`](Self::alloc_span). The stage literal is checked
    /// against `STAGE_NAMES` exactly like [`record_at`](Self::record_at)
    /// (both by the debug assert and by the `probe-coverage` lint).
    pub fn record_linked(
        &self,
        stage: &'static str,
        span: u64,
        request: u64,
        parent: u64,
        start_us: u64,
        end_us: u64,
    ) {
        let dur_us = end_us.saturating_sub(start_us);
        self.log.record(SpanRecord { request, span, parent, stage, start_us, dur_us });
        lock(&self.stages).entry(stage).or_default().record(dur_us);
    }

    /// The retained span window as JSON lines, oldest first (the
    /// `GET /trace` body).
    pub fn to_jsonl(&self) -> String {
        self.log.to_jsonl()
    }

    /// A snapshot of the per-stage duration histograms.
    pub fn stage_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        lock(&self.stages).clone()
    }

    /// The underlying log (tests and drop accounting).
    pub fn log(&self) -> &SpanLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_log_and_stage_histograms() {
        let spans = ServeSpans::new(16);
        let request = spans.begin_request();
        assert!(request > 0);
        let parent = spans.record_at("serve.accept", request, 0, 5, 10);
        let child = spans.record_at("serve.parse", request, parent, 10, 250);
        assert_ne!(parent, child);

        let records = spans.log().snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].parent, parent);
        assert_eq!(records[1].dur_us, 240);

        let stages = spans.stage_histograms();
        assert_eq!(stages["serve.parse"].count(), 1);
        assert_eq!(stages["serve.parse"].max(), 240);
    }

    #[test]
    fn pre_allocated_spans_record_under_their_id() {
        let spans = ServeSpans::new(16);
        let request = spans.begin_request();
        // The forward-span pattern: allocate, ship the ID elsewhere as a
        // parent link, record when the exchange completes.
        let forward = spans.alloc_span();
        spans.record_at("serve.simulate", request, forward, 20, 30);
        spans.record_linked("cluster.forward", forward, request, 0, 10, 50);
        let records = spans.log().snapshot();
        assert_eq!(records[0].parent, forward, "child linked before the parent records");
        assert_eq!(records[1].span, forward);
        assert_eq!(records[1].dur_us, 40);
        assert_eq!(spans.stage_histograms()["cluster.forward"].count(), 1);
    }

    #[test]
    fn id_base_namespaces_span_ids() {
        let base = 9102u64 << 32;
        let spans = ServeSpans::with_id_base(4, base);
        assert_eq!(spans.begin_request(), base + 1);
        assert_eq!(spans.alloc_span(), base + 1);
    }

    #[test]
    fn clock_is_monotonic_and_backwards_ranges_saturate() {
        let spans = ServeSpans::new(4);
        let a = spans.now_us();
        let b = spans.now_us();
        assert!(b >= a);
        // A stale start timestamp must not underflow the duration.
        spans.record_at("serve.write", 1, 0, 100, 40);
        assert_eq!(spans.log().snapshot()[0].dur_us, 0);
    }
}
