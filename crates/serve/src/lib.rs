//! `hbc-serve`: a dependency-free simulation service.
//!
//! The figure binaries answer one question per process run; this crate
//! turns the same experiment drivers into a long-lived service that many
//! clients can query concurrently:
//!
//! * [`json`] / [`spec`] — a hand-rolled JSON codec and the validated
//!   request specs it carries, with a *canonical* rendering that makes
//!   "same experiment" a syntactic property;
//! * [`hash`] / [`cache`] — SHA-256 content addressing over canonical
//!   specs, an in-memory LRU, and on-disk persistence under
//!   `results/cache/`, so identical requests never re-simulate;
//! * [`http`] / [`server`] — a std-only HTTP/1.1 server on `TcpListener`
//!   with a fixed worker pool, a bounded admission queue (429 on
//!   overload), single-flight coalescing of concurrent identical
//!   requests, per-request timeouts, and graceful drain on shutdown;
//! * [`metrics`] — request/cache/queue/latency counters and per-stage
//!   quantiles in the Prometheus text format at `GET /metrics` (legacy
//!   `hbc-probe` registry JSON at `GET /metrics.json`);
//! * [`spans`] — request-scoped span tracing across the whole request
//!   lifecycle, exported as JSON lines at `GET /trace`;
//! * [`client`] — the reusable blocking HTTP client (separate connect and
//!   I/O timeouts, typed [`client::ClientError`]) shared by the `hbc-load`
//!   generator, the `hbc-cluster` coordinator tooling, and the end-to-end
//!   tests.
//!
//! The serving contract is *bit-identity*: a figure fetched through the
//! service equals the corresponding figure binary's standard output
//! byte for byte, whether it was simulated for this request, coalesced
//! onto a concurrent identical one, or replayed from the result cache
//! (`tests/serve_e2e.rs` proves all three).
//!
//! # Example
//!
//! ```no_run
//! use hbc_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! server.join(); // serves until a client POSTs /shutdown
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod spans;
pub mod spec;

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// The service must not let one poisoned lock wedge every later request:
/// all shared state guarded here (cache LRU, metrics histogram, admission
/// queue) stays internally consistent under panic because each critical
/// section completes its writes before leaving, so continuing with the
/// inner value is sound.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
