//! Request specs: what a client may ask the service to simulate, how a
//! spec is canonicalized into a cache key, and how it is executed.
//!
//! A [`RunRequest`] names one paper experiment plus the knobs that change
//! its *result* (preset, representative restriction, seed) and one knob
//! that does not (`jobs`, the per-request worker count of the `hbc-exec`
//! engine — proven bit-identical at every value). The canonical form
//! therefore includes the result-determining fields only, always all of
//! them and always in sorted key order, so that
//!
//! * a spec that spells out defaults (`"seed":42`) and one that omits them
//!   hash identically, and
//! * `jobs` can be tuned per request without splitting the cache.
//!
//! # Example
//!
//! ```
//! use hbc_serve::spec::RunRequest;
//!
//! let terse = RunRequest::from_json_text(r#"{"experiment":"fig6","preset":"fast"}"#).unwrap();
//! let verbose = RunRequest::from_json_text(
//!     r#"{"experiment":"fig6","jobs":4,"preset":"fast","reps":false,"seed":42}"#,
//! )
//! .unwrap();
//! assert_eq!(terse.spec_hash(), verbose.spec_hash());
//! ```

use std::fmt;

use hbc_core::report::Table;
use hbc_core::{experiments, ExpParams};

use crate::hash::sha256_hex;
use crate::json::Json;

/// One experiment of the paper, as addressable through the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Figure 1 — SRAM access times (no simulation parameters).
    Fig1,
    /// Table 1 — the nine benchmarks (no simulation parameters).
    Table1,
    /// Table 2 — instruction-mix percentages.
    Table2,
    /// Figure 3 — misses per instruction vs cache size.
    Fig3,
    /// Figure 4 — ideal multi-ported multi-cycle caches.
    Fig4,
    /// Figure 5 — banked multi-cycle caches.
    Fig5,
    /// Figure 6 — the line buffer on banked and duplicate caches.
    Fig6,
    /// Figure 7 — the on-chip DRAM cache.
    Fig7,
    /// Figure 8 — IPC vs cache size for the leading organizations.
    Fig8,
    /// Figure 9 — normalized execution time vs processor cycle time.
    Fig9,
}

impl ExperimentId {
    /// Every experiment, in paper order.
    pub const ALL: [ExperimentId; 10] = [
        ExperimentId::Fig1,
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
    ];

    /// The wire name (`"fig6"`, `"table1"`, …).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.into_iter().find(|id| id.name() == name)
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Fidelity preset, mirroring the figure binaries' `--fast`/`--full` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// `ExpParams::fast()` — short windows, representatives only.
    Fast,
    /// `ExpParams::standard()` — the default of the figure binaries.
    Standard,
    /// `ExpParams::full()` — 200 K-instruction windows, all benchmarks.
    Full,
}

impl Preset {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Fast => "fast",
            Preset::Standard => "standard",
            Preset::Full => "full",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Preset> {
        [Preset::Fast, Preset::Standard, Preset::Full].into_iter().find(|p| p.name() == name)
    }
}

/// A validated request for one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// Which table or figure to regenerate.
    pub experiment: ExperimentId,
    /// Fidelity preset (default [`Preset::Standard`], like the binaries).
    pub preset: Preset,
    /// Restrict to the three representative benchmarks (`--reps`).
    pub reps: bool,
    /// Workload seed (default 42, the binaries' default).
    pub seed: u64,
    /// `hbc-exec` worker threads for this request (`--jobs`; default 1).
    /// Execution-only: results are bit-identical at every value, so this
    /// field is *excluded* from the canonical form and the cache key.
    pub jobs: usize,
}

/// Why a request spec was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The body was not valid JSON.
    Json(crate::json::JsonError),
    /// The top-level value was not an object.
    NotAnObject,
    /// A required field is missing.
    Missing(&'static str),
    /// A field had the wrong type or an out-of-range value.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What was expected.
        expected: String,
    },
    /// A field the codec does not know. Unknown fields are rejected rather
    /// than ignored so they can never silently fail to affect the result
    /// while still being absent from the cache key.
    Unknown(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::NotAnObject => write!(f, "request body must be a JSON object"),
            SpecError::Missing(field) => write!(f, "missing required field `{field}`"),
            SpecError::Invalid { field, expected } => {
                write!(f, "field `{field}`: expected {expected}")
            }
            SpecError::Unknown(field) => write!(f, "unknown field `{field}`"),
        }
    }
}

impl std::error::Error for SpecError {}

impl RunRequest {
    /// A request for `experiment` with the binaries' defaults: standard
    /// preset, all benchmarks, seed 42, serial execution.
    pub fn new(experiment: ExperimentId) -> Self {
        RunRequest { experiment, preset: Preset::Standard, reps: false, seed: 42, jobs: 1 }
    }

    /// Decodes and validates a request from a parsed JSON value.
    pub fn from_json(value: &Json) -> Result<RunRequest, SpecError> {
        let obj = value.as_obj().ok_or(SpecError::NotAnObject)?;
        for key in obj.keys() {
            if !matches!(key.as_str(), "experiment" | "preset" | "reps" | "seed" | "jobs") {
                return Err(SpecError::Unknown(key.clone()));
            }
        }
        let experiment = obj
            .get("experiment")
            .ok_or(SpecError::Missing("experiment"))?
            .as_str()
            .and_then(ExperimentId::parse)
            .ok_or_else(|| SpecError::Invalid {
                field: "experiment",
                expected: format!("one of {}", ExperimentId::ALL.map(|id| id.name()).join("|")),
            })?;
        let mut request = RunRequest::new(experiment);
        if let Some(v) = obj.get("preset") {
            request.preset = v.as_str().and_then(Preset::parse).ok_or(SpecError::Invalid {
                field: "preset",
                expected: "one of fast|standard|full".to_string(),
            })?;
        }
        if let Some(v) = obj.get("reps") {
            request.reps = v
                .as_bool()
                .ok_or(SpecError::Invalid { field: "reps", expected: "a boolean".to_string() })?;
        }
        if let Some(v) = obj.get("seed") {
            request.seed = v.as_u64().ok_or(SpecError::Invalid {
                field: "seed",
                expected: "an unsigned 64-bit integer".to_string(),
            })?;
        }
        if let Some(v) = obj.get("jobs") {
            let jobs = v.as_u64().ok_or(SpecError::Invalid {
                field: "jobs",
                expected: "an unsigned integer".to_string(),
            })?;
            request.jobs = usize::try_from(jobs).map_err(|_| SpecError::Invalid {
                field: "jobs",
                expected: "a worker count that fits usize".to_string(),
            })?;
        }
        Ok(request)
    }

    /// Decodes and validates a request from raw JSON text.
    pub fn from_json_text(text: &str) -> Result<RunRequest, SpecError> {
        RunRequest::from_json(&Json::parse(text).map_err(SpecError::Json)?)
    }

    /// The canonical spec: every result-determining field, spelled out
    /// explicitly, rendered with sorted keys and no whitespace. Two
    /// requests are cache-equivalent iff their canonical specs are
    /// byte-identical; `jobs` is deliberately absent (see the field docs).
    pub fn canonical(&self) -> String {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("experiment".to_string(), Json::Str(self.experiment.name().to_string()));
        obj.insert("preset".to_string(), Json::Str(self.preset.name().to_string()));
        obj.insert("reps".to_string(), Json::Bool(self.reps));
        obj.insert("seed".to_string(), Json::U64(self.seed));
        Json::Obj(obj).render()
    }

    /// Renders the full request (including `jobs`) as JSON — the exact
    /// inverse of [`RunRequest::from_json_text`].
    pub fn to_json(&self) -> String {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("experiment".to_string(), Json::Str(self.experiment.name().to_string()));
        obj.insert("preset".to_string(), Json::Str(self.preset.name().to_string()));
        obj.insert("reps".to_string(), Json::Bool(self.reps));
        obj.insert("seed".to_string(), Json::U64(self.seed));
        obj.insert("jobs".to_string(), Json::U64(self.jobs as u64));
        Json::Obj(obj).render()
    }

    /// The content address: SHA-256 of the canonical spec, as 64 hex
    /// characters. Doubles as the on-disk entry name.
    pub fn spec_hash(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }

    /// The [`ExpParams`] this request executes with, mirroring
    /// `hbc_bench::params_from` flag-for-flag.
    pub fn to_params(&self) -> ExpParams {
        let mut params = match self.preset {
            Preset::Fast => ExpParams::fast(),
            Preset::Standard => ExpParams::standard(),
            Preset::Full => ExpParams::full(),
        };
        if self.reps {
            params = params.representatives();
        }
        params.seed = self.seed;
        params.jobs = self.jobs;
        params
    }

    /// Runs the experiment, delegating the sweep to the `hbc-exec` engine
    /// via the experiment drivers, and returns the rendered payload —
    /// byte-identical to the corresponding figure binary's standard output
    /// (`println!("{table}")`, i.e. the table text plus a trailing
    /// newline).
    pub fn execute(&self) -> String {
        let params = self.to_params();
        let table = self.run_table(&params);
        format!("{table}\n")
    }

    fn run_table(&self, params: &ExpParams) -> Table {
        match self.experiment {
            ExperimentId::Fig1 => experiments::fig1::run(),
            ExperimentId::Table1 => experiments::table1::run(),
            ExperimentId::Table2 => experiments::table2::run(params),
            ExperimentId::Fig3 => experiments::fig3::run(params),
            ExperimentId::Fig4 => experiments::fig4::run(params),
            ExperimentId::Fig5 => experiments::fig5::run(params),
            ExperimentId::Fig6 => experiments::fig6::run(params),
            ExperimentId::Fig7 => experiments::fig7::run(params),
            ExperimentId::Fig8 => experiments::fig8::run(params),
            ExperimentId::Fig9 => experiments::fig9::run(params),
        }
    }
}

/// A deterministic request mix for the load generator and tests: request
/// `index` of a seeded stream. Drawn from the cheap presets so load runs
/// measure the serving stack, not multi-minute simulations; the stream
/// revisits specs, which is what exercises the result cache.
pub fn mixed_request(seed: u64, index: u64) -> RunRequest {
    // The mix seed becomes part of the property name, the request index the
    // case number: the stream is a pure function of (seed, index).
    let mut g = hbc_ptest::Gen::from_case(&format!("hbc-load mix {seed}"), index as u32);
    const EXPERIMENTS: [ExperimentId; 4] =
        [ExperimentId::Fig4, ExperimentId::Fig5, ExperimentId::Fig6, ExperimentId::Table2];
    let mut request = RunRequest::new(*g.pick(&EXPERIMENTS));
    request.preset = Preset::Fast;
    // A small seed pool: repeats are frequent, so cache hits dominate
    // after the first visits — the serving regime the cache exists for.
    request.seed = 40 + g.u64_below(4);
    request
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_binaries() {
        let r = RunRequest::from_json_text("{\"experiment\":\"fig6\"}").unwrap();
        assert_eq!(r, RunRequest::new(ExperimentId::Fig6));
        assert_eq!(r.to_params().instructions, ExpParams::standard().instructions);
        assert_eq!(r.to_params().seed, 42);
        assert_eq!(r.to_params().jobs, 1);
    }

    #[test]
    fn canonicalization_fills_defaults_and_drops_jobs() {
        let terse = RunRequest::from_json_text("{\"experiment\":\"fig4\"}").unwrap();
        let verbose = RunRequest::from_json_text(
            "{\"experiment\":\"fig4\",\"jobs\":8,\"preset\":\"standard\",\
             \"reps\":false,\"seed\":42}",
        )
        .unwrap();
        assert_eq!(terse.canonical(), verbose.canonical());
        assert_eq!(terse.spec_hash(), verbose.spec_hash());
        assert_ne!(terse.to_json(), verbose.to_json(), "jobs still round-trips");
    }

    #[test]
    fn result_determining_fields_change_the_hash() {
        let base = RunRequest::new(ExperimentId::Fig6);
        let mut seeded = base.clone();
        seeded.seed = 43;
        let mut fast = base.clone();
        fast.preset = Preset::Fast;
        let mut reps = base.clone();
        reps.reps = true;
        let hashes = [base.spec_hash(), seeded.spec_hash(), fast.spec_hash(), reps.spec_hash()];
        let unique: std::collections::BTreeSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
        assert!(hashes.iter().all(|h| h.len() == 64));
    }

    #[test]
    fn rejections_are_typed() {
        use SpecError::*;
        assert!(matches!(RunRequest::from_json_text("[]"), Err(NotAnObject)));
        assert!(matches!(RunRequest::from_json_text("{}"), Err(Missing("experiment"))));
        assert!(matches!(
            RunRequest::from_json_text("{\"experiment\":\"fig2\"}"),
            Err(Invalid { field: "experiment", .. })
        ));
        assert!(matches!(
            RunRequest::from_json_text("{\"experiment\":\"fig6\",\"speed\":1}"),
            Err(Unknown(f)) if f == "speed"
        ));
        assert!(matches!(
            RunRequest::from_json_text("{\"experiment\":\"fig6\",\"seed\":-1}"),
            Err(Invalid { field: "seed", .. })
        ));
        assert!(matches!(RunRequest::from_json_text("{oops"), Err(Json(_))));
    }

    #[test]
    fn experiment_names_round_trip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("fig2"), None);
    }

    #[test]
    fn execute_matches_the_driver_byte_for_byte() {
        let mut request = RunRequest::new(ExperimentId::Table2);
        request.preset = Preset::Fast;
        let expected = format!("{}\n", experiments::table2::run(&request.to_params()));
        assert_eq!(request.execute(), expected);
    }

    #[test]
    fn mixed_requests_are_deterministic_and_repeat() {
        let a: Vec<RunRequest> = (0..64).map(|i| mixed_request(7, i)).collect();
        let b: Vec<RunRequest> = (0..64).map(|i| mixed_request(7, i)).collect();
        assert_eq!(a, b);
        let hashes: std::collections::BTreeSet<String> =
            a.iter().map(RunRequest::spec_hash).collect();
        assert!(hashes.len() < 64, "the mix must revisit specs to exercise the cache");
        assert!(hashes.len() > 1, "the mix must cover more than one spec");
        assert_ne!(a, (0..64).map(|i| mixed_request(8, i)).collect::<Vec<_>>());
    }
}
