//! A minimal HTTP/1.1 codec over blocking streams.
//!
//! Just enough of RFC 9112 for the service and its load generator: one
//! request per connection (`Connection: close` on every response),
//! request-line + header parsing with size caps, `Content-Length` bodies
//! only (no chunked transfer), and status/header/body response writing.
//! Both sides of the wire live here so the server, the client, and the
//! tests share one implementation.
//!
//! Input is untrusted: header and body sizes are capped, and every parse
//! failure is a typed [`HttpError`] the server maps to a `400` rather
//! than a panic — `unwrap`/`expect` on socket I/O is banned in this crate
//! by the `serve-io-panic` analyzer rule.

use std::fmt;
use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (specs are tiny; anything bigger is abuse).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed HTTP request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, uppercased by the sender (`GET`, `POST`, …).
    pub method: String,
    /// Request target (`/run`, `/metrics`, …), query string included.
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why reading or parsing a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (includes read timeouts).
    Io(io::Error),
    /// The head or body exceeded its size cap.
    TooLarge(&'static str),
    /// The bytes were not valid HTTP.
    Malformed(&'static str),
    /// The peer closed before a full request arrived.
    Closed,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::TooLarge(what) => write!(f, "request {what} too large"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request (head + `Content-Length` body) from `stream`.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: requests are tiny and arrive in one
    // segment; simplicity beats a buffered reader that would over-read
    // into the body.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        match stream.read(&mut byte)? {
            0 if head.is_empty() => return Err(HttpError::Closed),
            0 => return Err(HttpError::Malformed("truncated head")),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.trim().parse().map_err(|_| HttpError::Malformed("content-length value"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("chunked bodies are not supported"));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Malformed("truncated body")
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Request { method: method.to_string(), path: path.to_string(), body })
}

/// The reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Renders one complete `Connection: close` response — head, optional
/// extra headers (each a pre-formatted `Name: value` pair), and body — as
/// the exact bytes the wire will carry. Split from [`write_response`] so
/// the server can time serialization and the socket write as separate
/// spans.
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// Writes one `Connection: close` response with optional extra headers
/// (each a pre-formatted `Name: value` pair) and flushes.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    stream.write_all(&render_response(status, content_type, extra_headers, body))?;
    stream.flush()
}

/// A parsed response, as read back by the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// The value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response. The body is `Content-Length` bytes when the header
/// is present, otherwise everything until EOF (legal under
/// `Connection: close`).
pub fn read_response(stream: &mut impl Read) -> Result<Response, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(HttpError::Closed),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("status line"))?;
    let mut headers = Vec::new();
    let mut content_length = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line"));
        };
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length =
                Some(value.parse().map_err(|_| HttpError::Malformed("content-length value"))?);
        }
        headers.push((name, value));
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            stream.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            stream.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let wire = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut &wire[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn get_without_body_parses() {
        let wire = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &wire[..]).unwrap();
        assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/metrics"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (wire, what) in [
            (&b"BAD\r\n\r\n"[..], "request line"),
            (&b"GET /x HTTP/2\r\n\r\n"[..], "version"),
            (&b"GET /x HTTP/1.1\r\nbroken\r\n\r\n"[..], "header"),
            (&b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort"[..], "body"),
            (&b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..], "chunked"),
        ] {
            let err = read_request(&mut &wire[..]).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(_)),
                "{what}: expected Malformed, got {err:?}"
            );
        }
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let huge_head = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            read_request(&mut huge_head.as_bytes()),
            Err(HttpError::TooLarge("head"))
        ));
        let huge_body =
            format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(
            read_request(&mut huge_body.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
    }

    #[test]
    fn eof_before_any_byte_is_closed() {
        assert!(matches!(read_request(&mut &b""[..]), Err(HttpError::Closed)));
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "text/plain", &[("X-Cache", "miss")], b"hello\n").unwrap();
        let resp = read_response(&mut &wire[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("miss"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.text(), "hello\n");
    }

    #[test]
    fn response_without_content_length_reads_to_eof() {
        let wire = b"HTTP/1.1 200 OK\r\n\r\nuntil eof";
        let resp = read_response(&mut &wire[..]).unwrap();
        assert_eq!(resp.body, b"until eof");
    }
}
