//! The simulation server: acceptor, bounded admission queue, worker pool,
//! single-flight execution, and graceful shutdown.
//!
//! ```text
//!            accept           bounded queue            worker pool
//!  clients ─────────▶ acceptor ──────────────▶ workers ──┬─ cache hit ─▶ respond
//!                        │ queue full                    └─ miss ─▶ single-flight
//!                        ▼                                          runner thread
//!                   429 response                                    (hbc-exec)
//! ```
//!
//! Robustness decisions, in one place:
//!
//! * **Backpressure** — the admission queue holds at most
//!   [`ServerConfig::queue_capacity`] connections; beyond that the
//!   acceptor answers `429` immediately instead of letting latency grow
//!   without bound (and instead of accepting work it cannot finish).
//! * **Timeouts** — every request carries a deadline from the moment it
//!   was accepted; a simulation that misses it gets a `504`, while the
//!   runner thread finishes in the background and populates the result
//!   cache, so a retry is a hit.
//! * **Single-flight** — concurrent identical requests coalesce onto one
//!   simulation; followers wait on the leader's flight and serve the
//!   same bytes. `serve.exec.runs` counts real simulations only.
//! * **Graceful shutdown** — `POST /shutdown` (or
//!   [`ServerHandle::shutdown`]) stops the acceptor, lets workers drain
//!   the queue and finish in-flight responses, and answers any connection
//!   still queued with `503`.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{ResultCache, Tier};
use crate::http::{self, HttpError, Request};
use crate::json::Json;
use crate::lock;
use crate::metrics::Metrics;
use crate::spans::ServeSpans;
use crate::spec::{ExperimentId, Preset, RunRequest};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving requests. `0` is permitted (nothing drains
    /// the queue — used by overload tests); the CLI requires ≥ 1.
    pub workers: usize,
    /// Bounded admission-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from accept. A simulation that
    /// misses it returns `504` (and keeps running into the cache).
    pub request_timeout: Duration,
    /// Upper bound on the per-request `jobs` field (worker threads inside
    /// the `hbc-exec` engine). Requests asking for more are clamped.
    pub max_jobs: usize,
    /// Result-cache directory; `None` disables persistence.
    pub cache_dir: Option<std::path::PathBuf>,
    /// In-memory result-cache entries.
    pub cache_entries: usize,
    /// Most recent spans retained for `GET /trace`.
    pub span_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(600),
            max_jobs: 8,
            cache_dir: Some(std::path::PathBuf::from("results/cache")),
            cache_entries: 64,
            span_capacity: 4096,
        }
    }
}

/// How one in-flight simulation ended.
#[derive(Debug, Clone)]
enum FlightState {
    Running,
    Done(String),
    Failed(String),
}

/// A single-flight slot: the leader executes, followers wait here.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Outcome of waiting on a [`Flight`] with a deadline.
enum FlightWait {
    Done(String),
    Failed(String),
    TimedOut,
}

impl Flight {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Running), cv: Condvar::new() }
    }

    fn finish(&self, state: FlightState) {
        *lock(&self.state) = state;
        self.cv.notify_all();
    }

    fn wait(&self, deadline: Instant) -> FlightWait {
        let mut state = lock(&self.state);
        loop {
            match &*state {
                FlightState::Done(body) => return FlightWait::Done(body.clone()),
                FlightState::Failed(msg) => return FlightWait::Failed(msg.clone()),
                FlightState::Running => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return FlightWait::TimedOut;
            }
            state = match self.cv.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// One accepted connection waiting for a worker.
struct QueuedConn {
    stream: TcpStream,
    accepted: Instant,
    /// The span-trace request ID allocated at accept.
    request_id: u64,
    /// When the connection entered the queue, on the span clock.
    queued_us: u64,
}

/// State shared by the acceptor, the workers, and every handle.
struct Shared {
    addr: SocketAddr,
    request_timeout: Duration,
    max_jobs: usize,
    cache: ResultCache,
    metrics: Arc<Metrics>,
    spans: ServeSpans,
    queue: Mutex<VecDeque<QueuedConn>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    in_flight: Mutex<BTreeMap<String, Arc<Flight>>>,
}

/// A running server. The usual lifecycle is [`Server::bind`] → clients →
/// `POST /shutdown` (or [`ServerHandle::shutdown`]) → [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable reference to a running server, for shutdown and metrics.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, spawns the acceptor and worker threads, and
    /// returns immediately.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::new(dir.clone(), config.cache_entries),
            None => ResultCache::in_memory(config.cache_entries),
        };
        let shared = Arc::new(Shared {
            addr,
            request_timeout: config.request_timeout,
            max_jobs: config.max_jobs,
            cache,
            metrics: Arc::new(Metrics::default()),
            spans: ServeSpans::new(config.span_capacity),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: config.queue_capacity,
            shutdown: AtomicBool::new(false),
            in_flight: Mutex::new(BTreeMap::new()),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hbc-serve-acceptor".to_string())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hbc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server { shared, acceptor, workers })
    }

    /// The bound address (the real port even when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for shutdown and metrics inspection.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Blocks until shutdown is requested, then drains: joins the
    /// acceptor and workers and answers any still-queued connection with
    /// `503`.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        // Anything still queued (no workers, or a push that raced the
        // last worker's exit) gets an orderly refusal.
        let leftovers: Vec<QueuedConn> = lock(&self.shared.queue).drain(..).collect();
        for conn in leftovers {
            self.shared.metrics.queue_pop();
            self.shared.metrics.responses_unavailable.inc();
            respond_without_reading(conn.stream, 503, "server is shutting down");
        }
    }
}

impl ServerHandle {
    /// Requests graceful shutdown: stops accepting, lets workers drain.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// The live metrics shared with the server.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    // Unblock the acceptor's blocking accept with a throwaway connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let accept_start_us = shared.spans.now_us();
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.queue_capacity {
            drop(queue);
            shared.metrics.responses_rejected.inc();
            respond_without_reading(stream, 429, "admission queue is full, retry later");
            continue;
        }
        let request_id = shared.spans.begin_request();
        let queued_us = shared.spans.now_us();
        queue.push_back(QueuedConn { stream, accepted: Instant::now(), request_id, queued_us });
        shared.metrics.queue_push();
        drop(queue);
        shared.spans.record_at("serve.accept", request_id, 0, accept_start_us, queued_us);
        shared.queue_cv.notify_one();
    }
}

/// Writes an error response to a connection whose request was never read
/// (admission rejection, shutdown drain), then drains the unread request
/// bytes so closing the socket does not RST the response away.
fn respond_without_reading(mut stream: TcpStream, status: u16, message: &str) {
    let short = Duration::from_millis(500);
    let _ = stream.set_write_timeout(Some(short));
    let _ = stream.set_read_timeout(Some(short));
    let body = error_body(status, message);
    if http::write_response(&mut stream, status, "application/json", &[], body.as_bytes()).is_ok() {
        use std::io::Read as _;
        let mut sink = [0u8; 512];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(conn) = queue.pop_front() {
                    shared.metrics.queue_pop();
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shared.queue_cv.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        match conn {
            Some(conn) => handle_conn(shared, conn),
            None => return,
        }
    }
}

/// JSON error envelope: `{"error":…,"status":…}`.
fn error_body(status: u16, message: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), Json::Str(message.to_string()));
    obj.insert("status".to_string(), Json::U64(u64::from(status)));
    Json::Obj(obj).render()
}

/// Per-request context threaded from accept to response: the wall-clock
/// accept time (latency metric, deadline base) and the span-trace request
/// ID allocated by the acceptor.
#[derive(Clone, Copy)]
struct ReqCtx {
    accepted: Instant,
    request_id: u64,
}

/// One response, with metrics accounting by status and spans for the
/// serialize and write stages.
fn respond(
    shared: &Shared,
    stream: &mut TcpStream,
    ctx: ReqCtx,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) {
    match status {
        200 => shared.metrics.responses_ok.inc(),
        400 | 405 => shared.metrics.responses_bad_request.inc(),
        404 => shared.metrics.responses_not_found.inc(),
        429 => shared.metrics.responses_rejected.inc(),
        503 => shared.metrics.responses_unavailable.inc(),
        504 => shared.metrics.responses_timeout.inc(),
        _ => shared.metrics.responses_error.inc(),
    }
    let serialize_start_us = shared.spans.now_us();
    let bytes = http::render_response(status, content_type, extra_headers, body);
    let write_start_us = shared.spans.now_us();
    shared.spans.record_at(
        "serve.serialize",
        ctx.request_id,
        0,
        serialize_start_us,
        write_start_us,
    );
    use std::io::Write as _;
    let _ = stream.write_all(&bytes).and_then(|()| stream.flush());
    shared.spans.record_at("serve.write", ctx.request_id, 0, write_start_us, shared.spans.now_us());
    let micros = u64::try_from(ctx.accepted.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_latency(micros);
}

fn respond_error(shared: &Shared, stream: &mut TcpStream, ctx: ReqCtx, status: u16, message: &str) {
    let body = error_body(status, message);
    respond(shared, stream, ctx, status, "application/json", &[], body.as_bytes());
}

fn handle_conn(shared: &Arc<Shared>, conn: QueuedConn) {
    let QueuedConn { mut stream, accepted, request_id, queued_us } = conn;
    let ctx = ReqCtx { accepted, request_id };
    shared.spans.record_at("serve.queue_wait", request_id, 0, queued_us, shared.spans.now_us());
    let deadline = accepted + shared.request_timeout;
    let now = Instant::now();
    if now >= deadline {
        // Spent its whole budget in the queue.
        shared.metrics.requests.inc();
        respond_error(shared, &mut stream, ctx, 504, "request timed out in queue");
        return;
    }
    // The socket read budget is the smaller of the request deadline and a
    // fixed cap, so an idle client cannot pin a worker for a long timeout.
    let io_budget = (deadline - now).min(Duration::from_secs(10));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let parse_start_us = shared.spans.now_us();
    let parsed = http::read_request(&mut stream);
    shared.spans.record_at("serve.parse", request_id, 0, parse_start_us, shared.spans.now_us());
    let request = match parsed {
        Ok(request) => request,
        // Nothing useful (or nobody) to answer: closed early or dead socket.
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(err @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
            shared.metrics.requests.inc();
            respond_error(shared, &mut stream, ctx, 400, &err.to_string());
            return;
        }
    };
    shared.metrics.requests.inc();

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => handle_run(shared, &mut stream, ctx, deadline, &request),
        ("GET", "/metrics") => {
            let body = shared.metrics.to_prometheus(
                shared.cache.evictions(),
                shared.spans.log().dropped(),
                &shared.spans.stage_histograms(),
            );
            let ct = "text/plain; version=0.0.4";
            respond(shared, &mut stream, ctx, 200, ct, &[], body.as_bytes());
        }
        ("GET", "/metrics.json") => {
            let body = registry_body(shared);
            respond(shared, &mut stream, ctx, 200, "application/json", &[], body.as_bytes());
        }
        ("GET", "/trace") => {
            let body = shared.spans.to_jsonl();
            respond(shared, &mut stream, ctx, 200, "application/x-ndjson", &[], body.as_bytes());
        }
        ("GET", "/healthz") => {
            respond(shared, &mut stream, ctx, 200, "text/plain", &[], b"ok\n");
        }
        ("GET", "/experiments") => {
            let body = experiments_body();
            respond(shared, &mut stream, ctx, 200, "application/json", &[], body.as_bytes());
        }
        ("POST", "/shutdown") => {
            respond(shared, &mut stream, ctx, 200, "text/plain", &[], b"shutting down\n");
            initiate_shutdown(shared);
        }
        (
            _,
            "/run" | "/metrics" | "/metrics.json" | "/trace" | "/healthz" | "/experiments"
            | "/shutdown",
        ) => {
            respond_error(shared, &mut stream, ctx, 405, "method not allowed");
        }
        _ => respond_error(shared, &mut stream, ctx, 404, "no such endpoint"),
    }
}

/// `GET /metrics.json`: the legacy registry snapshot — service counters
/// plus the result cache's eviction count, rendered as deterministic
/// `hbc-probe` JSON.
fn registry_body(shared: &Shared) -> String {
    let mut reg = shared.metrics.to_registry();
    reg.counter("serve.cache.evictions").set(shared.cache.evictions());
    reg.to_json()
}

/// `GET /experiments`: what the service can run.
fn experiments_body() -> String {
    let experiments = ExperimentId::ALL.map(|id| Json::Str(id.name().to_string())).to_vec();
    let presets = [Preset::Fast, Preset::Standard, Preset::Full]
        .map(|p| Json::Str(p.name().to_string()))
        .to_vec();
    let mut obj = BTreeMap::new();
    obj.insert("experiments".to_string(), Json::Arr(experiments));
    obj.insert("presets".to_string(), Json::Arr(presets));
    Json::Obj(obj).render()
}

fn handle_run(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    ctx: ReqCtx,
    deadline: Instant,
    request: &Request,
) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            respond_error(shared, stream, ctx, 400, "request body is not UTF-8");
            return;
        }
    };
    let mut run = match RunRequest::from_json_text(text) {
        Ok(run) => run,
        Err(err) => {
            respond_error(shared, stream, ctx, 400, &err.to_string());
            return;
        }
    };
    // `jobs` is execution-only (absent from the cache key); clamp it so a
    // request cannot commandeer the host.
    if run.jobs > shared.max_jobs {
        run.jobs = shared.max_jobs;
    }
    let hash = run.spec_hash();
    let canonical = run.canonical();

    let lookup_start_us = shared.spans.now_us();
    let cached = shared.cache.get(&hash, &canonical);
    let lookup_end_us = shared.spans.now_us();
    shared.spans.record_at("serve.cache_lookup", ctx.request_id, 0, lookup_start_us, lookup_end_us);
    if let Some((body, tier)) = cached {
        let (label, counter) = match tier {
            Tier::Memory => ("hit-memory", &shared.metrics.cache_hits_memory),
            Tier::Disk => ("hit-disk", &shared.metrics.cache_hits_disk),
        };
        counter.inc();
        let headers = [("X-Cache", label), ("X-Spec-Hash", hash.as_str())];
        respond(shared, stream, ctx, 200, "text/plain", &headers, body.as_bytes());
        return;
    }

    // Single-flight: the first requester for this hash leads and
    // executes; concurrent identical requests wait on the same flight.
    let (flight, leader) = {
        let mut in_flight = lock(&shared.in_flight);
        match in_flight.get(&hash) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight::new());
                in_flight.insert(hash.clone(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    if leader {
        shared.metrics.cache_misses.inc();
        spawn_runner(shared, run, hash.clone(), canonical, ctx.request_id, Arc::clone(&flight));
    } else {
        shared.metrics.coalesced.inc();
    }

    let cache_label = if leader { "miss" } else { "coalesced" };
    let wait_start_us = shared.spans.now_us();
    let outcome = flight.wait(deadline);
    let wait_end_us = shared.spans.now_us();
    shared.spans.record_at(
        "serve.single_flight_wait",
        ctx.request_id,
        0,
        wait_start_us,
        wait_end_us,
    );
    match outcome {
        FlightWait::Done(body) => {
            let headers = [("X-Cache", cache_label), ("X-Spec-Hash", hash.as_str())];
            respond(shared, stream, ctx, 200, "text/plain", &headers, body.as_bytes());
        }
        FlightWait::Failed(message) => {
            respond_error(shared, stream, ctx, 500, &message);
        }
        FlightWait::TimedOut => {
            respond_error(
                shared,
                stream,
                ctx,
                504,
                "simulation exceeded the request timeout; it continues into the result cache \
                 — retry to fetch it",
            );
        }
    }
}

/// Spawns the detached thread that runs one simulation and completes its
/// [`Flight`]. The runner finishes even if every waiter times out, so the
/// result still lands in the cache and a retry is a hit.
fn spawn_runner(
    shared: &Arc<Shared>,
    run: RunRequest,
    hash: String,
    canonical: String,
    request_id: u64,
    flight: Arc<Flight>,
) {
    let runner_shared = Arc::clone(shared);
    let flight_on_error = Arc::clone(&flight);
    let hash_on_error = hash.clone();
    let spawned =
        std::thread::Builder::new().name("hbc-serve-runner".to_string()).spawn(move || {
            runner_shared.metrics.exec_runs.inc();
            let sim_start_us = runner_shared.spans.now_us();
            let result = catch_unwind(AssertUnwindSafe(|| run.execute()));
            // The simulate span carries the leader's request ID; coalesced
            // followers share this one simulation, so their traces show a
            // single-flight wait instead.
            runner_shared.spans.record_at(
                "serve.simulate",
                request_id,
                0,
                sim_start_us,
                runner_shared.spans.now_us(),
            );
            match result {
                Ok(body) => {
                    if let Err(e) = runner_shared.cache.put(&hash, &canonical, &body) {
                        eprintln!("hbc-serve: persisting cache entry {hash} failed: {e}");
                    }
                    lock(&runner_shared.in_flight).remove(&hash);
                    flight.finish(FlightState::Done(body));
                }
                Err(_) => {
                    lock(&runner_shared.in_flight).remove(&hash);
                    flight.finish(FlightState::Failed(format!(
                        "simulation for spec {hash} panicked; see server logs"
                    )));
                }
            }
        });
    if let Err(e) = spawned {
        lock(&shared.in_flight).remove(&hash_on_error);
        flight_on_error.finish(FlightState::Failed(format!("cannot spawn runner thread: {e}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body(400, "field `seed`: expected \"quote\"");
        let v = Json::parse(&body).expect("envelope parses");
        assert_eq!(v.as_obj().unwrap()["status"].as_u64(), Some(400));
    }

    #[test]
    fn experiments_body_lists_everything() {
        let v = Json::parse(&experiments_body()).unwrap();
        let obj = v.as_obj().unwrap();
        assert!(matches!(&obj["experiments"], Json::Arr(a) if a.len() == 10));
        assert!(matches!(&obj["presets"], Json::Arr(a) if a.len() == 3));
    }

    #[test]
    fn flight_wait_times_out_and_completes() {
        let flight = Flight::new();
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(flight.wait(deadline), FlightWait::TimedOut));
        flight.finish(FlightState::Done("x".to_string()));
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(flight.wait(deadline), FlightWait::Done(b) if b == "x"));
    }
}
