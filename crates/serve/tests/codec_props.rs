//! Property tests for the wire codec: JSON round-trips, request-spec
//! round-trips, canonicalization invariants, and metrics-export
//! parseability — all on the deterministic `hbc-ptest` harness.

use hbc_ptest::{assert_injective, check, Gen};
use hbc_serve::json::Json;
use hbc_serve::metrics::Metrics;
use hbc_serve::spec::{mixed_request, ExperimentId, Preset, RunRequest};

/// A random JSON value of bounded depth. Covers every variant, exact
/// integers above 2^53, negative and fractional floats, and strings with
/// escapes and astral characters.
fn arb_json(g: &mut Gen, depth: usize) -> Json {
    let kinds = if depth == 0 { 5 } else { 7 };
    match g.u64_below(kinds) {
        0 => Json::Null,
        1 => Json::Bool(g.bool()),
        2 => Json::U64(g.u64_in(0, u64::MAX)),
        3 => {
            // Finite floats only: non-finite values have no JSON spelling.
            let x = g.f64_in(-1e15, 1e15);
            Json::F64(if g.bool() { x } else { x / 1e12 })
        }
        4 => Json::Str(arb_string(g)),
        5 => Json::Arr(g.vec(0, 4, |g| arb_json(g, depth - 1))),
        _ => {
            let pairs = g.vec(0, 4, |g| (arb_string(g), arb_json(g, depth - 1)));
            Json::Obj(pairs.into_iter().collect())
        }
    }
}

fn arb_string(g: &mut Gen) -> String {
    g.vec(0, 12, |g| match g.u64_below(4) {
        0 => *g.pick(&['a', 'Z', '0', ' ', 'é', '∞', '😀']),
        1 => *g.pick(&['"', '\\', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}']),
        2 => char::from(g.u32_in(0x20, 0x7e) as u8),
        _ => char::from_u32(g.u32_in(0xa0, 0x2fff)).unwrap_or('x'),
    })
    .into_iter()
    .collect()
}

#[test]
fn json_render_parse_round_trips() {
    check("json round-trip", 512, |g| {
        let v = arb_json(g, 3);
        let rendered = v.render();
        let parsed = Json::parse(&rendered).expect("canonical rendering parses");
        assert_eq!(parsed, v, "render: {rendered}");
        // Canonical rendering is a fixed point.
        assert_eq!(parsed.render(), rendered);
    });
}

fn arb_request(g: &mut Gen) -> RunRequest {
    let mut request = RunRequest::new(*g.pick(&ExperimentId::ALL));
    request.preset = *g.pick(&[Preset::Fast, Preset::Standard, Preset::Full]);
    request.reps = g.bool();
    request.seed = g.u64_in(0, u64::MAX);
    request.jobs = g.usize_in(1, 64);
    request
}

#[test]
fn run_request_round_trips_through_json() {
    check("spec round-trip", 512, |g| {
        let request = arb_request(g);
        let decoded = RunRequest::from_json_text(&request.to_json()).expect("own JSON decodes");
        assert_eq!(decoded, request);
    });
}

#[test]
fn canonical_form_is_a_fixed_point_that_drops_jobs() {
    check("spec canonicalization", 512, |g| {
        let request = arb_request(g);
        let reparsed =
            RunRequest::from_json_text(&request.canonical()).expect("canonical form decodes");
        // Decoding the canonical form resets `jobs` to the default…
        let mut expected = request.clone();
        expected.jobs = 1;
        assert_eq!(reparsed, expected);
        // …without moving the content address.
        assert_eq!(reparsed.spec_hash(), request.spec_hash());
        assert_eq!(reparsed.canonical(), request.canonical());
    });
}

#[test]
fn distinct_result_determining_fields_get_distinct_cache_keys() {
    let presets = [Preset::Fast, Preset::Standard, Preset::Full];
    let mut domain = Vec::new();
    for experiment in ExperimentId::ALL {
        for preset in presets {
            for reps in [false, true] {
                for seed in [0u64, 1, 42] {
                    let mut r = RunRequest::new(experiment);
                    (r.preset, r.reps, r.seed) = (preset, reps, seed);
                    domain.push(r);
                }
            }
        }
    }
    assert_injective("spec_hash over request space", domain, RunRequest::spec_hash);
}

#[test]
fn load_mix_specs_always_decode() {
    check("load mix decodes", 256, |g| {
        let request = mixed_request(g.u64_below(100), g.u64_below(10_000));
        let decoded = RunRequest::from_json_text(&request.to_json()).expect("mix spec decodes");
        assert_eq!(decoded, request);
    });
}

#[test]
fn metrics_export_parses_and_reflects_counts() {
    check("metrics export", 64, |g| {
        let m = Metrics::default();
        let requests = g.u64_below(50);
        let hits = g.u64_below(50);
        for _ in 0..requests {
            m.requests.inc();
        }
        for _ in 0..hits {
            m.cache_hits_memory.inc();
        }
        for _ in 0..g.u64_below(20) {
            m.record_latency(g.u64_below(1_000_000));
        }
        let exported = Json::parse(&m.to_registry().to_json()).expect("export parses");
        let counters =
            exported.as_obj().expect("object")["counters"].as_obj().expect("counters object");
        assert_eq!(counters["serve.http.requests"].as_u64(), Some(requests));
        assert_eq!(counters["serve.cache.hits.memory"].as_u64(), Some(hits));
    });
}
