//! End-to-end tests of the service over real sockets: the bit-identity
//! contract (served payload == figure binary output), cache behavior
//! across tiers and server restarts, single-flight coalescing, overload
//! (429), per-request timeouts (504), and graceful shutdown.
//!
//! Every test binds `127.0.0.1:0`, so they run concurrently without port
//! coordination, and every assertion about racy behavior is phrased so it
//! holds on both sides of the race (e.g. "exactly one simulation ran"
//! rather than "the second request coalesced").

use std::time::{Duration, Instant};

use hbc_core::experiments;
use hbc_serve::client::HttpClient;
use hbc_serve::json::Json;
use hbc_serve::metrics::parse_prometheus;
use hbc_serve::server::{Server, ServerConfig};
use hbc_serve::spec::{ExperimentId, Preset, RunRequest};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn http() -> HttpClient {
    HttpClient::new(CLIENT_TIMEOUT)
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hbc-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        request_timeout: Duration::from_secs(120),
        max_jobs: 2,
        cache_dir: None,
        cache_entries: 16,
        span_capacity: 1024,
    }
}

fn post_run(server: &Server, spec: &str) -> hbc_serve::http::Response {
    http().post(server.addr(), "/run", spec.as_bytes()).expect("request completes")
}

fn shut_down(server: Server) {
    server.handle().shutdown();
    server.join();
}

/// Cache-hit counter across both tiers, read from the Prometheus text at
/// `GET /metrics`.
fn metrics_cache_hits(server: &Server) -> u64 {
    let resp = http().get(server.addr(), "/metrics").expect("metrics request completes");
    assert_eq!(resp.status, 200);
    let samples = parse_prometheus(&resp.text()).expect("metrics body is valid Prometheus text");
    samples.iter().filter(|s| s.name == "serve_cache_hits_total").map(|s| s.value as u64).sum()
}

#[test]
fn served_figure_is_byte_identical_and_then_cached() {
    let mut request = RunRequest::new(ExperimentId::Fig4);
    request.preset = Preset::Fast;
    // The reference bytes, straight from the experiment driver — exactly
    // what `cargo run --bin fig4 -- --fast` prints.
    let expected = format!("{}\n", experiments::fig4::run(&request.to_params()));

    let server = Server::bind(test_config()).expect("bind");
    let first = post_run(&server, &request.to_json());
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(first.header("x-spec-hash"), Some(request.spec_hash().as_str()));
    assert_eq!(first.body, expected.as_bytes(), "served payload must be bit-identical");

    let second = post_run(&server, &request.to_json());
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit-memory"));
    assert_eq!(second.body, expected.as_bytes());
    assert!(metrics_cache_hits(&server) >= 1);
    shut_down(server);
}

#[test]
fn equivalent_specs_share_one_cache_entry() {
    let server = Server::bind(test_config()).expect("bind");
    let terse = r#"{"experiment":"table2","preset":"fast"}"#;
    let verbose = r#"{"experiment":"table2","jobs":2,"preset":"fast","reps":false,"seed":42}"#;
    let first = post_run(&server, terse);
    assert_eq!(first.status, 200, "{}", first.text());
    // Different spelling, same canonical spec: must hit, not re-simulate.
    let second = post_run(&server, verbose);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit-memory"));
    assert_eq!(second.body, first.body);
    assert_eq!(second.header("x-spec-hash"), first.header("x-spec-hash"));
    shut_down(server);
}

#[test]
fn disk_cache_replays_across_server_instances() {
    let dir = temp_dir("restart");
    let mut config = test_config();
    config.cache_dir = Some(dir.clone());
    let server = Server::bind(config).expect("bind");
    let spec = r#"{"experiment":"table2","preset":"fast","seed":7}"#;
    let first = post_run(&server, spec);
    assert_eq!(first.status, 200, "{}", first.text());
    shut_down(server);

    // A fresh server over the same directory: cold memory, warm disk.
    let mut config = test_config();
    config.cache_dir = Some(dir.clone());
    let server = Server::bind(config).expect("bind");
    let replay = post_run(&server, spec);
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("x-cache"), Some("hit-disk"));
    assert_eq!(replay.body, first.body, "disk replay must be bit-identical");
    shut_down(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_run_one_simulation() {
    let mut config = test_config();
    config.workers = 4;
    let server = Server::bind(config).expect("bind");
    let addr = server.addr();
    let spec = r#"{"experiment":"fig6","preset":"fast","seed":9}"#;
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                http().post(addr, "/run", spec.as_bytes()).expect("request completes")
            })
        })
        .collect();
    let responses: Vec<_> = threads.into_iter().map(|t| t.join().expect("join")).collect();
    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.body, responses[0].body);
    }
    // Whether the trailing requests coalesced onto the leader's flight or
    // arrived after it finished (a cache hit), exactly one simulation ran.
    let metrics = server.handle().metrics();
    assert_eq!(metrics.exec_runs.get(), 1);
    shut_down(server);
}

#[test]
fn overload_answers_429_and_shutdown_drains_with_503() {
    // No workers: nothing ever drains the queue, so the second connection
    // deterministically finds it full.
    let mut config = test_config();
    config.workers = 0;
    config.queue_capacity = 1;
    let server = Server::bind(config).expect("bind");
    let metrics = server.handle().metrics();

    use std::net::TcpStream;
    let mut queued = TcpStream::connect(server.addr()).expect("connect");
    let started = Instant::now();
    while metrics.queue_depth.load(std::sync::atomic::Ordering::Relaxed) < 1 {
        assert!(started.elapsed() < Duration::from_secs(10), "connection never queued");
        std::thread::sleep(Duration::from_millis(1));
    }

    let rejected = http()
        .post(server.addr(), "/run", br#"{"experiment":"table2"}"#)
        .expect("rejection is a real response, not a hang or reset");
    assert_eq!(rejected.status, 429);
    assert!(rejected.text().contains("queue"), "{}", rejected.text());

    // Drain: the still-queued connection gets an orderly 503.
    server.handle().shutdown();
    server.join();
    queued.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    let drained = hbc_serve::http::read_response(&mut queued).expect("drained response");
    assert_eq!(drained.status, 503);
    assert_eq!(metrics.responses_rejected.get(), 1);
    assert_eq!(metrics.responses_unavailable.get(), 1);
}

#[test]
fn timed_out_request_gets_504_and_the_result_still_lands_in_the_cache() {
    let mut config = test_config();
    // Far too short for a simulation, ample for a memory cache hit.
    config.request_timeout = Duration::from_millis(25);
    let server = Server::bind(config).expect("bind");
    let spec = r#"{"experiment":"fig6","preset":"fast","seed":11}"#;

    let first = post_run(&server, spec);
    assert_eq!(first.status, 504, "{}", first.text());
    assert!(first.text().contains("retry"), "{}", first.text());

    // The detached runner keeps going; eventually a retry is a cache hit
    // that fits comfortably inside the same short deadline.
    let started = Instant::now();
    let hit = loop {
        assert!(started.elapsed() < Duration::from_secs(120), "runner never finished");
        let retry = post_run(&server, spec);
        if retry.status == 200 {
            break retry;
        }
        assert_eq!(retry.status, 504, "{}", retry.text());
        std::thread::sleep(Duration::from_millis(50));
    };
    // Either the retry found the finished entry in the cache, or it
    // joined the still-registered flight just as the runner completed —
    // both serve the one simulation's bytes without re-executing.
    assert!(hit
        .header("x-cache")
        .is_some_and(|label| label.starts_with("hit-") || label == "coalesced"));
    let metrics = server.handle().metrics();
    assert_eq!(metrics.exec_runs.get(), 1, "the timed-out simulation must not rerun");
    assert!(metrics.responses_timeout.get() >= 1);
    shut_down(server);
}

#[test]
fn malformed_requests_are_400_with_a_json_envelope() {
    let server = Server::bind(test_config()).expect("bind");
    for (body, expect) in [
        (&b"not json"[..], "invalid JSON"),
        (br#"{"experiment":"fig2"}"#, "expected one of"),
        (br#"{"experiment":"fig6","speed":1}"#, "unknown field"),
        (br#"[1,2]"#, "must be a JSON object"),
    ] {
        let resp = http().post(server.addr(), "/run", body).expect("request completes");
        assert_eq!(resp.status, 400, "{}", resp.text());
        let envelope = Json::parse(&resp.text()).expect("error envelope is JSON");
        let error = envelope.as_obj().expect("object")["error"].as_str().expect("message");
        assert!(error.contains(expect), "{error} should mention {expect}");
    }
    shut_down(server);
}

#[test]
fn routing_distinguishes_404_and_405() {
    let server = Server::bind(test_config()).expect("bind");
    let missing = http().get(server.addr(), "/nope").expect("request completes");
    assert_eq!(missing.status, 404);
    let wrong_method = http().get(server.addr(), "/run").expect("request completes");
    assert_eq!(wrong_method.status, 405);
    for path in ["/trace", "/metrics.json", "/metrics"] {
        let resp = http().post(server.addr(), path, b"").expect("request completes");
        assert_eq!(resp.status, 405, "POST {path} must be rejected, not routed");
    }

    let health = http().get(server.addr(), "/healthz").expect("request completes");
    assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

    let listing = http().get(server.addr(), "/experiments").expect("request completes");
    let v = Json::parse(&listing.text()).expect("listing parses");
    let experiments = &v.as_obj().expect("object")["experiments"];
    assert!(matches!(experiments, Json::Arr(items) if items.len() == 10));
    shut_down(server);
}

#[test]
fn metrics_is_valid_prometheus_and_metrics_json_keeps_the_registry() {
    let server = Server::bind(test_config()).expect("bind");
    let spec = r#"{"experiment":"table2","preset":"fast","seed":21}"#;
    assert_eq!(post_run(&server, spec).status, 200);
    assert_eq!(post_run(&server, spec).status, 200); // a cache hit

    let text = http().get(server.addr(), "/metrics").expect("metrics request completes");
    assert_eq!(text.status, 200);
    assert!(text.header("content-type").is_some_and(|ct| ct.starts_with("text/plain")));
    let samples = parse_prometheus(&text.text()).expect("whole body parses as Prometheus text");
    let value = |name: &str| {
        samples.iter().find(|s| s.name == name).map(|s| s.value).expect("sample present")
    };
    assert!(value("serve_http_requests_total") >= 2.0);
    assert!(value("serve_cache_misses_total") >= 1.0);
    assert_eq!(value("serve_cache_evictions_total"), 0.0);
    assert!(value("serve_queue_depth") >= 0.0);
    // Latency and stage summaries carry ordered quantiles and counts.
    let latency: Vec<_> =
        samples.iter().filter(|s| s.name == "serve_latency_microseconds").collect();
    assert_eq!(latency.len(), 3);
    assert!(latency[0].value <= latency[1].value && latency[1].value <= latency[2].value);
    assert!(value("serve_latency_microseconds_count") >= 2.0);
    let simulate = samples
        .iter()
        .find(|s| {
            s.name == "serve_stage_duration_microseconds_count"
                && s.label("stage") == Some("serve.simulate")
        })
        .expect("simulate stage summary present");
    assert_eq!(simulate.value, 1.0, "one simulation ran; the hit recorded no simulate span");

    // The legacy registry JSON moved to /metrics.json, now carrying the
    // eviction counter next to the original fifteen.
    let legacy =
        http().get(server.addr(), "/metrics.json").expect("metrics.json request completes");
    assert_eq!(legacy.status, 200);
    let v = Json::parse(&legacy.text()).expect("legacy metrics JSON parses");
    let counters = v.as_obj().expect("object")["counters"].as_obj().expect("counters");
    assert_eq!(counters.len(), 16);
    assert_eq!(counters["serve.cache.evictions"].as_u64(), Some(0));
    assert!(counters["serve.http.requests"].as_u64().unwrap() >= 2);
    shut_down(server);
}

#[test]
fn trace_replays_the_request_lifecycle_as_jsonl() {
    let server = Server::bind(test_config()).expect("bind");
    let spec = r#"{"experiment":"table2","preset":"fast","seed":23}"#;
    assert_eq!(post_run(&server, spec).status, 200); // miss: simulates
    assert_eq!(post_run(&server, spec).status, 200); // memory hit

    let resp = http().get(server.addr(), "/trace").expect("trace request completes");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/x-ndjson"));
    let text = resp.text();
    let mut stages = std::collections::BTreeSet::new();
    let mut requests = std::collections::BTreeSet::new();
    for line in text.lines() {
        let record = Json::parse(line).expect("every trace line is a JSON object");
        let obj = record.as_obj().expect("object");
        let stage = obj["stage"].as_str().expect("stage").to_string();
        assert!(hbc_probe::is_registered_stage(&stage), "unregistered stage {stage:?}");
        assert!(obj["span"].as_u64().expect("span id") > 0);
        requests.insert(obj["request"].as_u64().expect("request id"));
        stages.insert(stage);
    }
    // Both /run requests (each with accept/queue/parse/lookup/serialize/
    // write), the miss's simulate + single-flight wait — but /trace's own
    // request hasn't finished when the body is rendered.
    for stage in [
        "serve.accept",
        "serve.queue_wait",
        "serve.parse",
        "serve.cache_lookup",
        "serve.single_flight_wait",
        "serve.simulate",
        "serve.serialize",
        "serve.write",
    ] {
        assert!(stages.contains(stage), "missing {stage} in trace: {stages:?}");
    }
    assert!(requests.len() >= 2, "the two /run requests have distinct request IDs");
    shut_down(server);
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let server = Server::bind(test_config()).expect("bind");
    let resp = http().post(server.addr(), "/shutdown", b"").expect("request completes");
    assert_eq!(resp.status, 200);
    // join() returning proves the acceptor and workers exited; a bug here
    // hangs the test rather than silently passing.
    server.join();
}
