//! Verifies the paper's headline qualitative claims against the simulator
//! and prints a PASS/FAIL report — a one-command regression check for the
//! whole reproduction (the same claims the integration tests assert, at the
//! chosen fidelity).
//!
//! ```text
//! cargo run --release -p hbc-bench --bin check [--fast|--full]
//! ```

use hbc_core::Benchmark;
use hbc_mem::PortModel;

struct Claim {
    name: &'static str,
    paper: &'static str,
    measured: String,
    pass: bool,
}

fn main() {
    let params = hbc_bench::params_from_args();
    let sim = |b: Benchmark| params.sim(b);
    let ipc = |b: Benchmark, kib: u64, ports: PortModel, hit: u64, lb: bool| {
        sim(b).cache_size_kib(kib).ports(ports).hit_cycles(hit).line_buffer(lb).run().ipc()
    };
    let avg = |f: &dyn Fn(Benchmark) -> f64| {
        params.benchmarks.iter().map(|&b| f(b)).sum::<f64>() / params.benchmarks.len() as f64
    };

    let mut claims = Vec::new();

    // Claim: diminishing returns beyond two ideal ports.
    let p1 = avg(&|b| ipc(b, 32, PortModel::Ideal(1), 1, false));
    let p2 = avg(&|b| ipc(b, 32, PortModel::Ideal(2), 1, false));
    let p4 = avg(&|b| ipc(b, 32, PortModel::Ideal(4), 1, false));
    claims.push(Claim {
        name: "ports: 2 help, 4 do not",
        paper: "+25% for 1->2, +1% for 3->4",
        measured: format!(
            "{:+.1}% for 1->2, {:+.1}% for 2->4",
            100.0 * (p2 / p1 - 1.0),
            100.0 * (p4 / p2 - 1.0)
        ),
        pass: p2 > p1 * 1.01 && (p4 - p2) < 0.5 * (p2 - p1),
    });

    // Claim: pipelining hurts integer codes much more than fp codes.
    let loss = |b: Benchmark| {
        let base = ipc(b, 32, PortModel::Ideal(2), 1, false);
        (base - ipc(b, 32, PortModel::Ideal(2), 3, false)) / base
    };
    let gcc_loss = loss(Benchmark::Gcc);
    let fp_loss = loss(Benchmark::Tomcatv);
    claims.push(Claim {
        name: "pipelining: int >> fp loss",
        paper: "gcc -18%/-15% per stage, tomcatv -3%/-3%",
        measured: format!(
            "gcc -{:.1}%, tomcatv -{:.1}% (1~ -> 3~)",
            100.0 * gcc_loss,
            100.0 * fp_loss
        ),
        pass: gcc_loss > 0.08 && fp_loss < 0.6 * gcc_loss,
    });

    // Claim: the line buffer's gain grows with pipeline depth.
    let gain = |hit| {
        let base = ipc(Benchmark::Gcc, 32, PortModel::Duplicate, hit, false);
        ipc(Benchmark::Gcc, 32, PortModel::Duplicate, hit, true) / base - 1.0
    };
    let g1 = gain(1);
    let g3 = gain(3);
    claims.push(Claim {
        name: "line buffer: grows with depth",
        paper: "gcc +3% at 1~, +23% at 3~ (duplicate)",
        measured: format!("gcc {:+.1}% at 1~, {:+.1}% at 3~", 100.0 * g1, 100.0 * g3),
        pass: g3 > g1 + 0.05 && g3 > 0.08,
    });

    // Claim: duplicate + LB >= banked + LB on average.
    let dup = avg(&|b| ipc(b, 32, PortModel::Duplicate, 2, true));
    let banked = avg(&|b| ipc(b, 32, PortModel::Banked(8), 2, true));
    claims.push(Claim {
        name: "duplicate+LB >= banked+LB",
        paper: "LB flips the ranking to duplicate",
        measured: format!("duplicate {dup:.3} vs banked {banked:.3}"),
        pass: dup >= banked * 0.99,
    });

    // Claim: DRAM latency costs ~3%/cycle; database prefers SRAM.
    let dram = |b: Benchmark, hit| sim(b).dram_cache(hit).line_buffer(true).run().ipc();
    let d6 = avg(&|b| dram(b, 6));
    let d8 = avg(&|b| dram(b, 8));
    let db_sram = ipc(Benchmark::Database, 16, PortModel::Banked(8), 1, true);
    let db_dram = dram(Benchmark::Database, 6);
    claims.push(Claim {
        name: "DRAM: latency costs; database prefers SRAM",
        paper: "-3%/cycle; DRAM below 16K SRAM on average",
        measured: format!(
            "{:+.1}%/cycle; database SRAM {db_sram:.3} vs DRAM {db_dram:.3}",
            100.0 * ((d8 / d6).powf(0.5) - 1.0)
        ),
        pass: d8 < d6 && db_sram > db_dram,
    });

    // Claim: bigger caches raise IPC at fixed cycle time.
    let c4 = avg(&|b| ipc(b, 4, PortModel::Duplicate, 1, true));
    let c1m = avg(&|b| ipc(b, 1024, PortModel::Duplicate, 1, true));
    claims.push(Claim {
        name: "capacity raises IPC",
        paper: "Figure 8 rises to 1M",
        measured: format!("4K {c4:.3} -> 1M {c1m:.3}"),
        pass: c1m > c4,
    });

    let mut failed = 0;
    println!("{:<42} {:<45} result", "claim (paper)", "measured");
    println!("{}", "-".repeat(100));
    for c in &claims {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("{:<42} {:<45} {status}", format!("{} [{}]", c.name, c.paper), c.measured);
    }
    println!("\n{} of {} claims hold", claims.len() - failed, claims.len());
    if failed > 0 {
        std::process::exit(1);
    }
}
