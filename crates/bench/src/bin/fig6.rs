//! Regenerates the paper's Figure 6.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig6::run(&params));
}
