//! Regenerates the paper's Figure 6.

use hbc_mem::PortModel;

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig6::run(&params));
        hbc_bench::emit_probes(
            &params,
            &[
                ("8-way banked + LB, 2~", &|s| {
                    s.cache_size_kib(32).hit_cycles(2).ports(PortModel::Banked(8)).line_buffer(true)
                }),
                ("duplicate + LB, 2~", &|s| {
                    s.cache_size_kib(32).hit_cycles(2).ports(PortModel::Duplicate).line_buffer(true)
                }),
            ],
        );
    });
}
