//! Regenerates the paper's Figure 8.

use hbc_mem::PortModel;

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig8::run(&params));
        hbc_bench::emit_probes(
            &params,
            &[("64K duplicate + LB, 2~", &|s| {
                s.cache_size_kib(64).hit_cycles(2).ports(PortModel::Duplicate).line_buffer(true)
            })],
        );
    });
}
