//! Regenerates the paper's Figure 8.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig8::run(&params));
}
