//! Regenerates the paper's Figure 5.

use hbc_mem::PortModel;

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig5::run(&params));
        hbc_bench::emit_probes(
            &params,
            &[("8-way banked, 2~", &|s| {
                s.cache_size_kib(32).hit_cycles(2).ports(PortModel::Banked(8))
            })],
        );
    });
}
