//! Regenerates the paper's Figure 5.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig5::run(&params));
}
