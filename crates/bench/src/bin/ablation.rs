//! Ablation studies for the design choices called out in DESIGN.md:
//! line-buffer capacity, MSHR count, store-buffer depth, and the
//! sensitivity of pipelining losses to workload ILP.

use hbc_core::report::{fmt_f, Table};
use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::PortModel;

fn sim(b: Benchmark) -> SimBuilder {
    SimBuilder::new(b)
        .cache_size_kib(32)
        .hit_cycles(2)
        .ports(PortModel::Duplicate)
        .instructions(60_000)
        .warmup(10_000)
}

fn main() {
    let reps = Benchmark::REPRESENTATIVES;

    let mut t = Table::new(
        "Ablation: line-buffer entries (32K duplicate 2~ cache)",
        &["benchmark", "none", "8", "16", "32", "64"],
    );
    for b in reps {
        let mut row = vec![b.name().to_string()];
        row.push(fmt_f(sim(b).run().ipc(), 3));
        for entries in [8usize, 16, 32, 64] {
            let builder = sim(b).line_buffer(true);
            let mut cfg = builder.mem_config();
            cfg.l1.line_buffer = Some(hbc_mem::LineBufferConfig { entries, line_bytes: 32 });
            // Rebuild through the builder API: entries are part of the
            // config; use a custom run.
            let result = run_with(cfg, b);
            row.push(fmt_f(result, 3));
        }
        t.push(row);
    }
    println!("{t}");

    let mut t = Table::new(
        "Ablation: MSHR count (32K duplicate 2~ cache, line buffer)",
        &["benchmark", "1", "2", "4", "8", "16"],
    );
    for b in reps {
        let mut row = vec![b.name().to_string()];
        for mshrs in [1usize, 2, 4, 8, 16] {
            let mut cfg = sim(b).line_buffer(true).mem_config();
            cfg.l1.mshrs = mshrs;
            row.push(fmt_f(run_with(cfg, b), 3));
        }
        t.push(row);
    }
    println!("{t}");

    let mut t = Table::new(
        "Ablation: store-buffer depth (32K duplicate 2~ cache, line buffer)",
        &["benchmark", "1", "4", "16", "64"],
    );
    for b in reps {
        let mut row = vec![b.name().to_string()];
        for depth in [1usize, 4, 16, 64] {
            let mut cfg = sim(b).line_buffer(true).mem_config();
            cfg.store_buffer = depth;
            row.push(fmt_f(run_with(cfg, b), 3));
        }
        t.push(row);
    }
    println!("{t}");

    let mut t = Table::new(
        "Ablation: external bank count (32K 1~ cache, line-interleaved)",
        &["benchmark", "2 banks", "4 banks", "8 banks", "32 banks"],
    );
    for b in reps {
        let mut row = vec![b.name().to_string()];
        for banks in [2u32, 4, 8, 32] {
            let ipc = sim(b).hit_cycles(1).ports(PortModel::Banked(banks)).run().ipc();
            row.push(fmt_f(ipc, 3));
        }
        t.push(row);
    }
    println!("{t}");

    let mut t = Table::new(
        "Ablation: workload ILP (dep_mean scale) vs pipelining loss (gcc, 2 ideal ports)",
        &["dep_mean scale", "IPC 1~", "IPC 3~", "loss"],
    );
    for scale in [0.5f64, 1.0, 2.0] {
        let mut spec = Benchmark::Gcc.spec();
        spec.dep_mean = (spec.dep_mean * scale).max(1.0);
        let run = |hit| {
            hbc_core::SimBuilder::new(Benchmark::Gcc)
                .spec(spec.clone())
                .cache_size_kib(32)
                .hit_cycles(hit)
                .ports(PortModel::Ideal(2))
                .instructions(60_000)
                .warmup(10_000)
                .run()
                .ipc()
        };
        let one = run(1);
        let three = run(3);
        t.push(vec![
            format!("{scale}x"),
            fmt_f(one, 3),
            fmt_f(three, 3),
            format!("{:.1}%", 100.0 * (1.0 - three / one)),
        ]);
    }
    println!("{t}");
}

fn run_with(cfg: hbc_mem::MemConfig, b: Benchmark) -> f64 {
    use hbc_cpu::{Core, CpuConfig};
    use hbc_mem::MemSystem;
    use hbc_workloads::WorkloadGen;
    let mut mem = MemSystem::new(cfg).expect("valid config");
    let mut gen = WorkloadGen::new(b, 42);
    for _ in 0..2_000_000u64 {
        if let Some(a) = gen.next_inst().addr() {
            mem.warm_touch(a);
        }
    }
    let mut core = Core::new(CpuConfig::paper(), mem, gen).expect("valid cpu");
    core.run(10_000);
    core.run(60_000).ipc()
}
