//! Ablation studies for the design choices called out in DESIGN.md:
//! line-buffer capacity, MSHR count, store-buffer depth, and the
//! sensitivity of pipelining losses to workload ILP.

use hbc_core::report::{fmt_f, Table};
use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::PortModel;

fn sim(b: Benchmark) -> SimBuilder {
    SimBuilder::new(b)
        .cache_size_kib(32)
        .hit_cycles(2)
        .ports(PortModel::Duplicate)
        .instructions(60_000)
        .warmup(10_000)
}

/// Runs one IPC cell per `(representative benchmark, column)` pair through
/// the parallel execution engine and returns the grid in row-major order.
fn grid(jobs: usize, cols: usize, cell: impl Fn(Benchmark, usize) -> f64 + Sync) -> Vec<Vec<f64>> {
    let reps = Benchmark::REPRESENTATIVES;
    let flat =
        hbc_core::exec::run_cells(jobs, reps.len() * cols, |i| cell(reps[i / cols], i % cols));
    flat.chunks(cols).map(<[f64]>::to_vec).collect()
}

fn table(title: &str, headers: &[&str], grid: &[Vec<f64>]) -> Table {
    let mut t = Table::new(title, headers);
    for (b, vals) in Benchmark::REPRESENTATIVES.iter().zip(grid) {
        let mut row = vec![b.name().to_string()];
        row.extend(vals.iter().map(|v| fmt_f(*v, 3)));
        t.push(row);
    }
    t
}

fn main() {
    let jobs = hbc_bench::jobs_from_args();

    let g = grid(jobs, 5, |b, k| match k.checked_sub(1) {
        None => sim(b).run().ipc(),
        Some(k) => {
            let entries = [8usize, 16, 32, 64][k];
            let mut cfg = sim(b).line_buffer(true).mem_config();
            cfg.l1.line_buffer = Some(hbc_mem::LineBufferConfig { entries, line_bytes: 32 });
            // Entries are part of the config, not the builder: use a
            // custom run.
            run_with(cfg, b)
        }
    });
    println!(
        "{}",
        table(
            "Ablation: line-buffer entries (32K duplicate 2~ cache)",
            &["benchmark", "none", "8", "16", "32", "64"],
            &g,
        )
    );

    let g = grid(jobs, 5, |b, k| {
        let mut cfg = sim(b).line_buffer(true).mem_config();
        cfg.l1.mshrs = [1usize, 2, 4, 8, 16][k];
        run_with(cfg, b)
    });
    println!(
        "{}",
        table(
            "Ablation: MSHR count (32K duplicate 2~ cache, line buffer)",
            &["benchmark", "1", "2", "4", "8", "16"],
            &g,
        )
    );

    let g = grid(jobs, 4, |b, k| {
        let mut cfg = sim(b).line_buffer(true).mem_config();
        cfg.store_buffer = [1usize, 4, 16, 64][k];
        run_with(cfg, b)
    });
    println!(
        "{}",
        table(
            "Ablation: store-buffer depth (32K duplicate 2~ cache, line buffer)",
            &["benchmark", "1", "4", "16", "64"],
            &g,
        )
    );

    let g = grid(jobs, 4, |b, k| {
        sim(b).hit_cycles(1).ports(PortModel::Banked([2u32, 4, 8, 32][k])).run().ipc()
    });
    println!(
        "{}",
        table(
            "Ablation: external bank count (32K 1~ cache, line-interleaved)",
            &["benchmark", "2 banks", "4 banks", "8 banks", "32 banks"],
            &g,
        )
    );

    let mut t = Table::new(
        "Ablation: workload ILP (dep_mean scale) vs pipelining loss (gcc, 2 ideal ports)",
        &["dep_mean scale", "IPC 1~", "IPC 3~", "loss"],
    );
    const SCALES: [f64; 3] = [0.5, 1.0, 2.0];
    let ipcs = hbc_core::exec::run_cells(jobs, SCALES.len() * 2, |i| {
        let mut spec = Benchmark::Gcc.spec();
        spec.dep_mean = (spec.dep_mean * SCALES[i / 2]).max(1.0);
        hbc_core::SimBuilder::new(Benchmark::Gcc)
            .spec(spec)
            .cache_size_kib(32)
            .hit_cycles([1u64, 3][i % 2])
            .ports(PortModel::Ideal(2))
            .instructions(60_000)
            .warmup(10_000)
            .run()
            .ipc()
    });
    for (si, scale) in SCALES.iter().enumerate() {
        let (one, three) = (ipcs[si * 2], ipcs[si * 2 + 1]);
        t.push(vec![
            format!("{scale}x"),
            fmt_f(one, 3),
            fmt_f(three, 3),
            format!("{:.1}%", 100.0 * (1.0 - three / one)),
        ]);
    }
    println!("{t}");
}

fn run_with(cfg: hbc_mem::MemConfig, b: Benchmark) -> f64 {
    use hbc_cpu::{Core, CpuConfig};
    use hbc_mem::MemSystem;
    use hbc_workloads::WorkloadGen;
    let mut mem = MemSystem::new(cfg)
        .unwrap_or_else(|e| die(&format!("ablation memory config rejected: {e}")));
    let mut gen = WorkloadGen::new(b, 42);
    for _ in 0..2_000_000u64 {
        if let Some(a) = gen.next_warm() {
            mem.warm_touch(a);
        }
    }
    let mut core = Core::new(CpuConfig::paper(), mem, gen)
        .unwrap_or_else(|e| die(&format!("ablation cpu config rejected: {e}")));
    core.run(10_000);
    core.run(60_000).ipc()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
