//! Regenerates every table and figure of the paper and writes each to
//! `results/<name>.txt` as well as standard output.

use std::fs;
use std::time::Instant;

fn main() {
    if let Err(e) = run() {
        // A read-only or full disk should name the failure, not abort with
        // a panic backtrace mid-regeneration.
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> std::io::Result<()> {
    let params = hbc_bench::params_from_args();
    fs::create_dir_all("results")?;
    type Item = (&'static str, Box<dyn Fn() -> hbc_core::report::Table>);
    let items: Vec<Item> = vec![
        ("fig1", Box::new(hbc_core::experiments::fig1::run)),
        ("table1", Box::new(hbc_core::experiments::table1::run)),
        (
            "table2",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::table2::run(&p)
            }),
        ),
        (
            "fig3",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig3::run(&p)
            }),
        ),
        (
            "fig4",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig4::run(&p)
            }),
        ),
        (
            "fig5",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig5::run(&p)
            }),
        ),
        (
            "fig6",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig6::run(&p)
            }),
        ),
        (
            "fig7",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig7::run(&p)
            }),
        ),
        (
            "fig8",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig8::run(&p)
            }),
        ),
        (
            "fig9",
            Box::new({
                let p = params.clone();
                move || hbc_core::experiments::fig9::run(&p)
            }),
        ),
    ];
    for (name, run) in items {
        let t0 = Instant::now();
        let table = run();
        let text = table.to_string();
        println!("{text}");
        fs::write(format!("results/{name}.txt"), &text)?;
        fs::write(format!("results/{name}.csv"), table.to_csv())?;
        eprintln!("[{name}] done in {:.1?}", t0.elapsed());
    }
    hbc_bench::emit_probes(
        &params,
        &[("32K duplicate + LB, 2~", &|s| {
            s.cache_size_kib(32)
                .hit_cycles(2)
                .ports(hbc_mem::PortModel::Duplicate)
                .line_buffer(true)
        })],
    );
    Ok(())
}
