//! Workload calibration harness.
//!
//! Prints the functional miss-rate curves (the Figure 3 shape) and the
//! baseline IPC/stall profile of every benchmark, the two views used to
//! calibrate the synthetic workload parameters in
//! `hbc-workloads::benchmarks` against the paper:
//!
//! 1. adjust each benchmark's pattern weights/footprints until the miss
//!    curve matches its Figure 3 shape (level, slope, drop location);
//! 2. adjust `dep_mean` / `load_use_prob` / `branch_accuracy` until the
//!    32 K-vs-1 M IPC pair and the stall breakdown look like the paper's
//!    Figure 4 behaviour for that benchmark's group.
//!
//! ```text
//! cargo run --release -p hbc-bench --bin tune -- [--jobs N]
//! ```

use hbc_core::{exec, miss_curve, Benchmark, SimBuilder};
use hbc_mem::PortModel;

fn main() {
    let jobs = hbc_bench::jobs_from_args();
    let sizes: Vec<u64> = vec![4, 8, 16, 32, 64, 128, 256, 512, 1024];
    println!("misses per instruction (%) — functional, 400k instructions");
    print!("{:<10}", "bench");
    for s in &sizes {
        print!("{:>7}K", s);
    }
    println!();
    // One cell per benchmark; curves come back in benchmark order.
    let curves = exec::run_cells(jobs, Benchmark::ALL.len(), |i| {
        miss_curve(Benchmark::ALL[i], &sizes, 400_000, 1)
    });
    for (b, curve) in Benchmark::ALL.iter().zip(&curves) {
        print!("{:<10}", b.name());
        for m in curve {
            print!("{:>7.2}%", m * 100.0);
        }
        println!();
    }

    println!("\nIPC (60k instr, 2 ideal ports, 1-cycle): 32K cache | 1M cache");
    let blocks = exec::run_cells(jobs, Benchmark::ALL.len(), |i| {
        let b = Benchmark::ALL[i];
        let baseline = |kib| {
            SimBuilder::new(b)
                .cache_size_kib(kib)
                .ports(PortModel::Ideal(2))
                .instructions(60_000)
                .warmup(10_000)
                .run()
        };
        let r32 = baseline(32);
        let r1m = baseline(1024);
        let st = r1m.run();
        let m = r1m.mem();
        format!(
            "  {:<10} ipc32={:.3} ipc1M={:.3} | 1M: cyc={} fetch_stall={} rob_full={} lsq_full={} st_stall={} avg_ld={:.1}\n             l2 hit={} miss={} ({:.0}% miss)",
            b.name(), r32.ipc(), r1m.ipc(), st.cycles, st.fetch_stall_cycles,
            st.rob_full_cycles, st.lsq_full_cycles, st.store_stall_cycles,
            st.avg_load_latency(), m.l2_hits, m.l2_misses, 100.0 * m.l2_miss_ratio())
    });
    for block in blocks {
        println!("{block}");
    }
}
