//! Regenerates the paper's Figure 7.

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig7::run(&params));
        hbc_bench::emit_probes(
            &params,
            &[("DRAM cache 6~ + LB", &|s| s.dram_cache(6).line_buffer(true))],
        );
    });
}
