//! Regenerates the paper's Figure 7.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig7::run(&params));
}
