//! Regenerates the paper's Table 1.

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::table1::run());
        // Table 1 is descriptive (the benchmark roster), so the probe report
        // runs the paper's baseline simulated configuration instead.
        hbc_bench::emit_probes(&params, &[("32K ideal 2-port, 1~", &|s| s)]);
    });
}
