//! Regenerates the paper's Table 1.

fn main() {
    println!("{}", hbc_core::experiments::table1::run());
}
