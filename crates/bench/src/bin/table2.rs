//! Regenerates the paper's Table 2 (spec vs measured instruction mix).

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::table2::run(&params));
}
