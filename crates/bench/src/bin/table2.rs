//! Regenerates the paper's Table 2 (spec vs measured instruction mix).

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::table2::run(&params));
        hbc_bench::emit_probes(&params, &[("32K ideal 2-port, 1~", &|s| s)]);
    });
}
