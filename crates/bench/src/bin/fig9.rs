//! Regenerates the paper's Figure 9.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig9::run(&params));
}
