//! Regenerates the paper's Figure 9.

use hbc_mem::PortModel;

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig9::run(&params));
        hbc_bench::emit_probes(
            &params,
            &[("32K duplicate + LB, 1~", &|s| {
                s.cache_size_kib(32).hit_cycles(1).ports(PortModel::Duplicate).line_buffer(true)
            })],
        );
    });
}
