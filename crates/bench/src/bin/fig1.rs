//! Regenerates the paper's Figure 1 (no simulation required).

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig1::run());
        // Figure 1 is analytic (SRAM access times), so the probe report runs
        // the paper's baseline simulated configuration instead.
        hbc_bench::emit_probes(&params, &[("32K ideal 2-port, 1~", &|s| s)]);
    });
}
