//! Regenerates the paper's Figure 1 (no simulation required).

fn main() {
    println!("{}", hbc_core::experiments::fig1::run());
}
