//! Regenerates the paper's Figure 4.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig4::run(&params));
}
