//! `hbc-bench` — benchmark tooling CLI.
//!
//! ```text
//! hbc-bench compare [--default-threshold R] [--threshold PREFIX=R]... \
//!     <baseline.json> <current.json>
//! ```
//!
//! `compare` is the perf-regression gate over the committed
//! `results/BENCH_*.json` reports: it validates the `"schema"` stamp on
//! both files, extracts the metric tables, and exits `1` when any metric
//! regresses past its threshold (`0` when all pass, `2` on usage or load
//! errors). See `hbc_bench::compare` for the metric and threshold model.

use hbc_bench::compare::{compare_files, Thresholds};
use std::path::PathBuf;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: hbc-bench compare [--default-threshold R] [--threshold PREFIX=R]... \
         <baseline.json> <current.json>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!(
                "hbc-bench compare [--default-threshold R] [--threshold PREFIX=R]... \
                 <baseline.json> <current.json>\n\n\
                 Compares two BENCH_*.json reports (throughput or serve) and exits 1 when a\n\
                 metric regresses past its threshold ratio. R is the allowed degradation\n\
                 ratio, e.g. 0.95 allows a 5% drop (or rise, for latency metrics)."
            );
        }
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("a subcommand is required"),
    }
}

fn run_compare(args: &[String]) -> ! {
    let mut thresholds = Thresholds::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--default-threshold" => {
                let v = args.next().unwrap_or_else(|| usage("--default-threshold needs a value"));
                thresholds.default_ratio = parse_ratio(v);
            }
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| usage("--threshold needs PREFIX=R"));
                let Some((prefix, ratio)) = v.split_once('=') else {
                    usage(&format!("--threshold wants PREFIX=R, got `{v}`"));
                };
                thresholds.overrides.push((prefix.to_string(), parse_ratio(ratio)));
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag `{flag}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        usage("compare wants exactly two files: <baseline.json> <current.json>");
    };
    match compare_files(baseline, current, &thresholds) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.regressions() == 0 { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_ratio(text: &str) -> f64 {
    match text.parse::<f64>() {
        Ok(r) if r > 0.0 && r.is_finite() => r,
        _ => usage(&format!("threshold ratio must be a positive number, got `{text}`")),
    }
}
