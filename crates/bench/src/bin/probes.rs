//! Stall-cause breakdown per benchmark × port organization — the main
//! consumer of the `hbc-probe` layer.
//!
//! For every benchmark in the chosen preset and each of the three leading
//! port organizations (two ideal ports, eight banks, duplicate arrays),
//! runs one probe-enabled simulation and reports the per-cycle stall
//! attribution, the IPC, and the host-side simulation throughput.
//!
//! ```text
//! cargo run --release -p hbc-bench --features probe --bin probes -- [--fast|--full] [--json]
//! ```
//!
//! `--json` emits one machine-readable document on standard output (the CI
//! stall-breakdown artifact) instead of tables. Without the `probe`
//! feature the binary still runs but every stall bucket is zero.

use std::time::Instant;

use hbc_core::report::{fmt_f, stall_table};
use hbc_core::Benchmark;
use hbc_mem::PortModel;

const CONFIGS: [(&str, PortModel); 3] = [
    ("ideal2", PortModel::Ideal(2)),
    ("banked8", PortModel::Banked(8)),
    ("duplicate", PortModel::Duplicate),
];

struct Run {
    benchmark: Benchmark,
    config: &'static str,
    ipc: f64,
    cycles: u64,
    host_mips: f64,
    wall_s: f64,
    stall: hbc_core::StallBreakdown,
}

fn main() {
    let mut json = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .collect();
    let params = hbc_bench::params_from(args);
    if !cfg!(feature = "probe") {
        eprintln!(
            "note: built without the `probe` feature; stall buckets are zero \
             (rebuild with `--features probe`)"
        );
    }

    let t_all = Instant::now();
    let runs = params.run_cells(params.benchmarks.len() * CONFIGS.len(), |i| {
        let b = params.benchmarks[i / CONFIGS.len()];
        let (config, ports) = CONFIGS[i % CONFIGS.len()];
        // Bare 32 KB 2-cycle organizations, as in Figures 4-5: no line
        // buffer, so the port-structure contrasts stay visible.
        let sim = params.sim(b).probes(true).cache_size_kib(32).hit_cycles(2).ports(ports);
        let t0 = Instant::now();
        let result = sim.run();
        let wall_s = t0.elapsed().as_secs_f64();
        let simulated = params.instructions + params.warmup;
        Run {
            benchmark: b,
            config,
            ipc: result.ipc(),
            cycles: result.run().cycles,
            host_mips: simulated as f64 / 1e6 / wall_s.max(1e-9),
            wall_s,
            stall: result.run().stall,
        }
    });
    let wall_s = t_all.elapsed().as_secs_f64();

    if json {
        println!("{}", to_json(&runs, &params, wall_s));
    } else {
        for r in &runs {
            println!(
                "== {} / {} — ipc {} — host {} Msim-inst/s ==",
                r.benchmark.name(),
                r.config,
                fmt_f(r.ipc, 3),
                fmt_f(r.host_mips, 2),
            );
            println!("{}", stall_table(&r.stall));
        }
    }
}

/// Renders the run list as one JSON document (no dependencies, so this is
/// hand-rolled like `hbc-probe`'s own exporters). Host wall-clock fields
/// (`wall_s`, `host_mips`, the aggregate block) vary run to run; everything
/// else is deterministic.
fn to_json(runs: &[Run], params: &hbc_core::ExpParams, wall_s: f64) -> String {
    let simulated: u64 = (params.instructions + params.warmup) * runs.len() as u64;
    let mut out = format!(
        "{{\"jobs\":{},\"wall_s\":{:.6},\"sims_per_sec\":{:.3},\"agg_mips\":{:.3},\"runs\":[",
        params.jobs,
        wall_s,
        runs.len() as f64 / wall_s.max(1e-9),
        simulated as f64 / 1e6 / wall_s.max(1e-9),
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"benchmark\":\"{}\",\"config\":\"{}\",\"ipc\":{:.6},\"cycles\":{},\
             \"host_mips\":{:.3},\"wall_s\":{:.6},\"stall\":{{",
            r.benchmark.name(),
            r.config,
            r.ipc,
            r.cycles,
            r.host_mips,
            r.wall_s,
        ));
        for (j, (cause, cycles)) in r.stall.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{cycles}", cause.label()));
        }
        out.push_str(&format!("}},\"stall_total\":{}}}", r.stall.total()));
    }
    out.push_str("]}");
    out
}
