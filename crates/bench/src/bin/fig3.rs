//! Regenerates the paper's Figure 3.

fn main() {
    let params = hbc_bench::params_from_args();
    hbc_bench::with_spans(&params, || {
        println!("{}", hbc_core::experiments::fig3::run(&params));
        // The figure itself is functional (no cycle simulation); the probe
        // report runs the paper's baseline configuration.
        hbc_bench::emit_probes(&params, &[("32K ideal 2-port, 1~", &|s| s)]);
    });
}
