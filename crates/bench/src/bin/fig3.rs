//! Regenerates the paper's Figure 3.

fn main() {
    let params = hbc_bench::params_from_args();
    println!("{}", hbc_core::experiments::fig3::run(&params));
}
