//! A dependency-free micro-benchmark runner for the `cargo bench` targets.
//!
//! The previous harness was an external benchmarking crate; this replaces
//! it with a self-contained wall-clock runner so the workspace builds with
//! no network access. Methodology: each benchmark runs a warm-up batch,
//! then a fixed number of timed batches, and reports the best (minimum)
//! per-iteration time — the estimator least disturbed by scheduler noise.
//!
//! Wall-clock timing is inherently non-deterministic; that is fine here
//! because benchmark numbers are reporting-only and never feed back into
//! simulation results (the determinism contract covers simulations, not
//! the cost of running them).

use std::hint::black_box;
use std::time::Instant;

/// Batches per measurement; the minimum over these is reported.
const BATCHES: u32 = 10;

/// A named group of micro-benchmarks, printed as one table section.
pub struct Runner {
    group: String,
    /// Iterations per timed batch.
    iters: u64,
}

impl Runner {
    /// Creates a runner whose results print under `group`.
    pub fn new(group: &str) -> Self {
        println!("## {group}");
        Runner { group: group.to_string(), iters: 1000 }
    }

    /// Sets iterations per timed batch (default 1000); use small values
    /// for expensive bodies such as whole simulations.
    pub fn iters(mut self, iters: u64) -> Self {
        assert!(iters > 0, "iterations must be non-zero");
        self.iters = iters;
        self
    }

    /// Times `f`, reporting the best per-iteration time over all batches.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> &Self {
        // Warm-up batch (untimed): fills caches and warms the branch
        // predictors so the first timed batch is not an outlier.
        for _ in 0..self.iters.min(100) {
            black_box(f());
        }
        let mut best_ns = f64::INFINITY;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() * 1e9 / self.iters as f64;
            best_ns = best_ns.min(per_iter);
        }
        println!("{:<40} {:>14}", format!("{}/{}", self.group, name), format_ns(best_ns));
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1_000.0)
    } else {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert!(format_ns(12.3).ends_with("ns/iter"));
        assert!(format_ns(12_300.0).ends_with("us/iter"));
        assert!(format_ns(12_300_000.0).ends_with("ms/iter"));
    }

    #[test]
    fn bench_runs_body() {
        let mut n = 0u64;
        Runner::new("test").iters(5).bench("count", || n += 1);
        assert!(n > 0);
    }
}
