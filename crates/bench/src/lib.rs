//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--fast` — short windows, representative benchmarks only;
//! * `--full` — 200 K-instruction windows, all nine benchmarks;
//! * `--reps` — restrict any preset to the three representatives;
//! * `--seed N` — workload seed;
//! * (default) — 60 K-instruction windows, all nine benchmarks.

#![warn(missing_docs)]

use hbc_core::ExpParams;

pub mod timer;

/// Parses the common experiment flags from `std::env::args`.
///
/// Unknown flags abort with a usage message rather than being silently
/// ignored.
pub fn params_from_args() -> ExpParams {
    params_from(std::env::args().skip(1))
}

/// Parses the common experiment flags from an explicit argument list.
///
/// # Example
///
/// ```
/// let p = hbc_bench::params_from(["--fast"].map(String::from));
/// assert_eq!(p.benchmarks.len(), 3);
/// ```
pub fn params_from(args: impl IntoIterator<Item = String>) -> ExpParams {
    let mut params = ExpParams::standard();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => params = ExpParams::fast(),
            "--full" => params = ExpParams::full(),
            "--reps" => params = params.representatives(),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                params.seed = v.parse().unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    params
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--fast|--full] [--reps] [--seed N]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_standard() {
        let p = params_from(Vec::<String>::new());
        assert_eq!(p, ExpParams::standard());
    }

    #[test]
    fn fast_then_reps_compose() {
        let p = params_from(["--full", "--reps"].map(String::from));
        assert_eq!(p.instructions, ExpParams::full().instructions);
        assert_eq!(p.benchmarks.len(), 3);
    }

    #[test]
    fn seed_parses() {
        let p = params_from(["--seed", "7"].map(String::from));
        assert_eq!(p.seed, 7);
    }
}
