//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--fast` — short windows, representative benchmarks only;
//! * `--full` — 200 K-instruction windows, all nine benchmarks;
//! * `--reps` — restrict any preset to the three representatives;
//! * `--seed N` — workload seed;
//! * `--probes` — print a stall-cause breakdown and probe-registry table
//!   next to the figure (full per-cycle data needs the `probe` feature);
//! * `--trace-window N` — retain and dump the last N pipeline/cache events
//!   of each probe run as JSON lines;
//! * `--jobs N` — worker threads for the experiment sweeps (`0` or omitted:
//!   available parallelism; `1`: serial). Results are bit-identical for
//!   every value;
//! * `--spans out.jsonl` — write per-phase span records (warm-up, measured
//!   run, report, plus the exec engine's steal/run/merge) to a JSONL file
//!   after the run. Spans carry data only in `--features span` builds and
//!   never change the figures;
//! * (default) — 60 K-instruction windows, all nine benchmarks.
//!
//! The crate also ships the `hbc-bench` CLI whose `compare` subcommand is
//! the perf-regression gate over `results/BENCH_*.json` (see [`compare`]).

#![warn(missing_docs)]

use hbc_core::report::{probe_table, stall_table};
use hbc_core::{ExpParams, SimBuilder};

pub mod compare;
pub mod timer;

/// Parses the common experiment flags from `std::env::args`.
///
/// Unknown flags abort with a usage message rather than being silently
/// ignored.
pub fn params_from_args() -> ExpParams {
    params_from(std::env::args().skip(1))
}

/// Parses the common experiment flags from an explicit argument list.
///
/// # Example
///
/// ```
/// let p = hbc_bench::params_from(["--fast"].map(String::from));
/// assert_eq!(p.benchmarks.len(), 3);
/// ```
pub fn params_from(args: impl IntoIterator<Item = String>) -> ExpParams {
    let mut params = ExpParams::standard();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => params = ExpParams::fast(),
            "--full" => params = ExpParams::full(),
            "--reps" => params = params.representatives(),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                params.seed = v.parse().unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--probes" => params.probes = true,
            "--trace-window" => {
                let v = args.next().unwrap_or_else(|| usage("--trace-window needs a value"));
                params.trace_window =
                    v.parse().unwrap_or_else(|_| usage("--trace-window needs an integer"));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage("--jobs needs a value"));
                params.jobs = v.parse().unwrap_or_else(|_| usage("--jobs needs an integer"));
            }
            "--spans" => {
                let v = args.next().unwrap_or_else(|| usage("--spans needs a file path"));
                params.spans_out = Some(std::path::PathBuf::from(v));
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    params
}

/// Parses a lone `--jobs N` flag from `std::env::args`, for binaries that
/// take no experiment preset (`tune`, `ablation`). Returns `0` (available
/// parallelism) when absent; unknown flags abort with a usage message.
pub fn jobs_from_args() -> usize {
    let mut jobs = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage("--jobs needs a value"));
                jobs = v.parse().unwrap_or_else(|_| usage("--jobs needs an integer"));
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    jobs
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--fast|--full] [--reps] [--seed N] [--probes] [--trace-window N] \
         [--jobs N] [--spans out.jsonl]"
    );
    std::process::exit(2);
}

/// Span-log retention while a figure binary runs: generous enough that a
/// full nine-benchmark sweep (a few spans per cell) never wraps.
const SPAN_CAPACITY: usize = 65_536;

/// Runs `f` with the span sink installed when the user asked for
/// `--spans out.jsonl`, then writes the recorded spans to that file.
///
/// Without the flag this is exactly `f()`. With the flag but without the
/// `span` cargo feature, the file is still written (empty) and a note
/// explains how to get data, mirroring how `probe_report` degrades. The
/// sink is process-global, so figure binaries install it exactly once,
/// around their whole run.
pub fn with_spans<R>(params: &ExpParams, f: impl FnOnce() -> R) -> R {
    let Some(path) = &params.spans_out else {
        return f();
    };
    if !cfg!(feature = "span") {
        eprintln!(
            "note: built without the `span` feature; {} will be empty (rebuild with \
             `--features span` for span data)",
            path.display()
        );
    }
    let log = hbc_core::spans::install(SPAN_CAPACITY);
    let out = f();
    hbc_core::spans::uninstall();
    if let Err(e) = std::fs::write(path, log.to_jsonl()) {
        eprintln!("error: cannot write spans to {}: {e}", path.display());
        std::process::exit(1);
    }
    if log.dropped() > 0 {
        eprintln!(
            "note: span ring wrapped; {} oldest spans were dropped (capacity {})",
            log.dropped(),
            SPAN_CAPACITY
        );
    }
    out
}

/// Emits the `--probes` / `--trace-window` report for a figure binary: one
/// probe-enabled run per benchmark × named configuration, printing the
/// stall-cause breakdown, the full probe registry, and (when a trace window
/// was requested) the retained pipeline events as JSON lines.
///
/// Does nothing unless the user passed `--probes` or `--trace-window`, so
/// figure binaries call it unconditionally after printing their table. When
/// the harness is built without the `probe` feature the event counters are
/// still exact but the per-cycle stall attribution and trace are empty; a
/// note says so.
///
/// # Example
///
/// ```
/// let params = hbc_bench::params_from(Vec::<String>::new());
/// // No --probes flag: returns immediately without simulating.
/// hbc_bench::emit_probes(&params, &[("base", &|s| s)]);
/// ```
pub fn emit_probes(params: &ExpParams, configs: &[(&str, SimConfig<'_>)]) {
    print!("{}", probe_report(params, configs));
}

/// A named simulator configuration hook, as taken by [`emit_probes`].
pub type SimConfig<'a> = &'a (dyn Fn(SimBuilder) -> SimBuilder + Sync);

/// Renders the [`emit_probes`] report to a string (empty unless `--probes`
/// or `--trace-window` was requested). The benchmark × configuration runs
/// go through the parallel execution engine; blocks are assembled in cell
/// index order, so the report is identical at every `--jobs` value.
pub fn probe_report(params: &ExpParams, configs: &[(&str, SimConfig<'_>)]) -> String {
    use std::fmt::Write as _;
    if !params.probes && params.trace_window == 0 {
        return String::new();
    }
    if !cfg!(feature = "probe") {
        eprintln!(
            "note: built without the `probe` feature; stall attribution and traces are \
             empty (rebuild with `--features probe` for per-cycle data)"
        );
    }
    let blocks = params.run_cells(params.benchmarks.len() * configs.len(), |i| {
        let b = params.benchmarks[i / configs.len()];
        let (label, configure) = &configs[i % configs.len()];
        let result = configure(params.sim(b).probes(true)).run();
        let mut out = String::new();
        let _ = writeln!(out, "== probes: {} / {label} (ipc {:.3}) ==", b.name(), result.ipc());
        if params.probes {
            // hbc-allow: panic (probes(true) is set on this builder two lines up)
            let reg = result.probes().expect("probes were enabled");
            let _ = writeln!(out, "{}", stall_table(&result.run().stall));
            let _ = writeln!(out, "{}", probe_table(reg));
        }
        if params.trace_window > 0 {
            let trace = result.trace_jsonl().unwrap_or("");
            let _ = writeln!(out, "-- trace: last {} events --", trace.lines().count());
            out.push_str(trace);
        }
        out
    });
    blocks.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_standard() {
        let p = params_from(Vec::<String>::new());
        assert_eq!(p, ExpParams::standard());
    }

    #[test]
    fn fast_then_reps_compose() {
        let p = params_from(["--full", "--reps"].map(String::from));
        assert_eq!(p.instructions, ExpParams::full().instructions);
        assert_eq!(p.benchmarks.len(), 3);
    }

    #[test]
    fn seed_parses() {
        let p = params_from(["--seed", "7"].map(String::from));
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn spans_flag_parses_and_with_spans_writes_the_file() {
        let p = params_from(["--spans", "out.jsonl"].map(String::from));
        assert_eq!(p.spans_out.as_deref(), Some(std::path::Path::new("out.jsonl")));
        assert!(params_from(Vec::<String>::new()).spans_out.is_none());

        let dir = std::env::temp_dir().join(format!("hbc_spans_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("spans.jsonl");
        let mut p = ExpParams::fast();
        p.spans_out = Some(path.clone());
        let got = with_spans(&p, || 42);
        assert_eq!(got, 42);
        let written = std::fs::read_to_string(&path).expect("spans file written");
        // Nothing simulated inside the closure, so the file is empty in
        // every feature combination; the point is that it exists.
        assert_eq!(written, "");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_flags_parse() {
        let p = params_from(["--probes", "--trace-window", "256"].map(String::from));
        assert!(p.probes);
        assert_eq!(p.trace_window, 256);
        let p = params_from(Vec::<String>::new());
        assert!(!p.probes);
        assert_eq!(p.trace_window, 0);
    }
}
