//! `hbc-bench compare` — the perf-regression differ over the committed
//! `BENCH_*.json` baselines.
//!
//! Both benchmark emitters (`benches/throughput.rs` and `hbc-load`) stamp
//! their reports with `"schema": 1`; this module loads two such reports,
//! extracts a flat metric table from each, and compares them under
//! configurable per-metric thresholds:
//!
//! * `BENCH_throughput.json` → `throughput.<metric>.best_units_per_sec`
//!   (higher is better), plus — when present — the derived gauges
//!   `throughput.warm_fastpath_speedup`, `throughput.skip_rate`,
//!   `throughput.skip_speedup`, `throughput.jobs_sweep.speedup` (all
//!   higher-is-better) and `throughput.jobs_sweep.serial_wall_s`
//!   (lower is better);
//! * `BENCH_serve.json` → per concurrency level
//!   `serve.c<N>.throughput_rps` (higher is better) and
//!   `serve.c<N>.latency.p{50,95,99}_ms` (lower is better).
//!
//! A metric *regresses* when the current value falls outside the
//! threshold band around the baseline: for higher-is-better metrics,
//! `current < baseline × r`; for lower-is-better, `current > baseline / r`
//! (`r` defaults to [`Thresholds::DEFAULT_RATIO`] and can be overridden
//! per metric-name prefix). A metric present in the baseline but missing
//! from the current report also regresses — a perf gate that silently
//! loses metrics is not a gate. Identical inputs always pass.
//!
//! Everything returns typed [`CompareError`]s — an unknown schema, a
//! truncated file, or a malformed report must exit the CLI with a
//! diagnostic, never a panic.

use hbc_serve::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The schema version this differ understands.
pub const SCHEMA_VERSION: u64 = 1;

/// Why a comparison could not run.
#[derive(Debug)]
pub enum CompareError {
    /// A report file could not be read.
    Io {
        /// File that failed to read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A report file was not valid JSON.
    Parse {
        /// File that failed to parse.
        path: PathBuf,
        /// The underlying JSON error.
        source: JsonError,
    },
    /// A report declared a schema version this differ does not understand
    /// (or none at all).
    Schema {
        /// File with the bad schema stamp.
        path: PathBuf,
        /// The `"schema"` value found, if any.
        found: Option<u64>,
    },
    /// A report parsed but did not look like either benchmark shape.
    Shape {
        /// File with the unrecognized shape.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// The two reports are different benchmark kinds (e.g. a throughput
    /// baseline against a serve report).
    KindMismatch {
        /// Kind of the baseline report.
        baseline: &'static str,
        /// Kind of the current report.
        current: &'static str,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            CompareError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CompareError::Schema { path, found: Some(v) } => write!(
                f,
                "{}: unsupported schema version {v} (this build understands {SCHEMA_VERSION})",
                path.display()
            ),
            CompareError::Schema { path, found: None } => write!(
                f,
                "{}: missing \"schema\" field (expected {SCHEMA_VERSION}; re-run the bench \
                 to regenerate the report)",
                path.display()
            ),
            CompareError::Shape { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            CompareError::KindMismatch { baseline, current } => write!(
                f,
                "report kinds differ: baseline is a {baseline} report, current is a {current} \
                 report"
            ),
        }
    }
}

impl std::error::Error for CompareError {}

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (throughput).
    HigherIsBetter,
    /// Smaller values are better (latency).
    LowerIsBetter,
}

/// One extracted metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// The measured value.
    pub value: f64,
    /// Improvement direction.
    pub direction: Direction,
}

/// Per-metric regression thresholds.
///
/// A ratio `r` means the current value may degrade to `r ×` the baseline
/// (higher-is-better) or `baseline / r` (lower-is-better) before the
/// metric counts as regressed. Overrides match by metric-name prefix;
/// the longest matching prefix wins.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Ratio applied when no override matches.
    pub default_ratio: f64,
    /// `(metric-name prefix, ratio)` overrides.
    pub overrides: Vec<(String, f64)>,
}

impl Thresholds {
    /// The stock degradation allowance: 5 %.
    pub const DEFAULT_RATIO: f64 = 0.95;

    /// Thresholds with the stock default and no overrides.
    pub fn new() -> Self {
        Thresholds { default_ratio: Self::DEFAULT_RATIO, overrides: Vec::new() }
    }

    /// The ratio for `metric`: the longest matching override prefix, or
    /// the default.
    pub fn ratio_for(&self, metric: &str) -> f64 {
        self.overrides
            .iter()
            .filter(|(prefix, _)| metric.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, r)| *r)
            .unwrap_or(self.default_ratio)
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::new()
    }
}

/// One compared metric in a [`CompareReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`None`: the metric vanished from the current
    /// report, which counts as a regression).
    pub current: Option<f64>,
    /// Threshold ratio applied.
    pub ratio: f64,
    /// `true` when the metric regressed past its threshold.
    pub regressed: bool,
}

/// Outcome of comparing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Benchmark kind (`"throughput"` or `"serve"`).
    pub kind: &'static str,
    /// One row per baseline metric, in name order.
    pub rows: Vec<MetricRow>,
    /// Metrics present only in the current report (new, informational).
    pub added: Vec<String>,
}

impl CompareReport {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Renders the comparison as an aligned text table with a verdict
    /// line (`ok: …` or `REGRESSION: …`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
        let _ = writeln!(
            out,
            "{:width$}  {:>14}  {:>14}  {:>7}  verdict",
            "metric", "baseline", "current", "ratio"
        );
        for row in &self.rows {
            let (current, change, verdict) = match row.current {
                Some(v) => {
                    let change = if row.baseline.abs() > f64::EPSILON {
                        format!("{:+.1}%", (v / row.baseline - 1.0) * 100.0)
                    } else {
                        "n/a".to_string()
                    };
                    let verdict = if row.regressed { "REGRESSED" } else { "ok" };
                    (format!("{v:.3}"), change, verdict)
                }
                None => ("missing".to_string(), "n/a".to_string(), "REGRESSED"),
            };
            let _ = writeln!(
                out,
                "{:width$}  {:>14.3}  {:>14}  {:>7}  {verdict} ({change})",
                row.name, row.baseline, current, row.ratio
            );
        }
        for name in &self.added {
            let _ = writeln!(out, "{name:width$}  (new metric, not compared)");
        }
        let regressions = self.regressions();
        if regressions == 0 {
            let _ = writeln!(out, "ok: {} metrics within thresholds", self.rows.len());
        } else {
            let _ = writeln!(
                out,
                "REGRESSION: {regressions} of {} metrics past their threshold",
                self.rows.len()
            );
        }
        out
    }
}

/// A parsed benchmark report: its kind plus the flat metric table.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// `"throughput"` or `"serve"`.
    pub kind: &'static str,
    /// Metric name → value and direction.
    pub metrics: BTreeMap<String, Metric>,
}

/// Reads and validates one benchmark report file.
pub fn load_report(path: &Path) -> Result<BenchReport, CompareError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| CompareError::Io { path: path.to_path_buf(), source })?;
    let json = Json::parse(&text)
        .map_err(|source| CompareError::Parse { path: path.to_path_buf(), source })?;
    parse_report(path, &json)
}

/// Validates the schema stamp and extracts the metric table.
pub fn parse_report(path: &Path, json: &Json) -> Result<BenchReport, CompareError> {
    let obj = json.as_obj().ok_or_else(|| CompareError::Shape {
        path: path.to_path_buf(),
        message: "top level is not a JSON object".to_string(),
    })?;
    match obj.get("schema").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        found => return Err(CompareError::Schema { path: path.to_path_buf(), found }),
    }
    if obj.contains_key("metrics") {
        parse_throughput(path, obj)
    } else if obj.contains_key("levels") {
        parse_serve(path, obj)
    } else {
        Err(CompareError::Shape {
            path: path.to_path_buf(),
            message: "object has neither \"metrics\" (throughput) nor \"levels\" (serve)"
                .to_string(),
        })
    }
}

fn shape(path: &Path, message: impl Into<String>) -> CompareError {
    CompareError::Shape { path: path.to_path_buf(), message: message.into() }
}

fn parse_throughput(
    path: &Path,
    obj: &BTreeMap<String, Json>,
) -> Result<BenchReport, CompareError> {
    let mut metrics = BTreeMap::new();
    let entries = obj
        .get("metrics")
        .and_then(|m| match m {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or_else(|| shape(path, "\"metrics\" is not an array"))?;
    for (i, entry) in entries.iter().enumerate() {
        let entry =
            entry.as_obj().ok_or_else(|| shape(path, format!("metrics[{i}] is not an object")))?;
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| shape(path, format!("metrics[{i}] has no string \"name\"")))?;
        let best = entry
            .get("best_units_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| shape(path, format!("metrics[{i}] has no \"best_units_per_sec\"")))?;
        metrics.insert(
            format!("throughput.{name}.best_units_per_sec"),
            Metric { value: best, direction: Direction::HigherIsBetter },
        );
    }
    for gauge in ["warm_fastpath_speedup", "skip_rate", "skip_speedup"] {
        if let Some(value) = obj.get(gauge).and_then(Json::as_f64) {
            metrics.insert(
                format!("throughput.{gauge}"),
                Metric { value, direction: Direction::HigherIsBetter },
            );
        }
    }
    if let Some(sweep) = obj.get("jobs_sweep").and_then(Json::as_obj) {
        if let Some(speedup) = sweep.get("speedup").and_then(Json::as_f64) {
            metrics.insert(
                "throughput.jobs_sweep.speedup".to_string(),
                Metric { value: speedup, direction: Direction::HigherIsBetter },
            );
        }
        if let Some(wall) = sweep.get("serial_wall_s").and_then(Json::as_f64) {
            metrics.insert(
                "throughput.jobs_sweep.serial_wall_s".to_string(),
                Metric { value: wall, direction: Direction::LowerIsBetter },
            );
        }
    }
    Ok(BenchReport { kind: "throughput", metrics })
}

fn parse_serve(path: &Path, obj: &BTreeMap<String, Json>) -> Result<BenchReport, CompareError> {
    let mut metrics = BTreeMap::new();
    let levels = obj
        .get("levels")
        .and_then(|m| match m {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or_else(|| shape(path, "\"levels\" is not an array"))?;
    for (i, level) in levels.iter().enumerate() {
        let level =
            level.as_obj().ok_or_else(|| shape(path, format!("levels[{i}] is not an object")))?;
        let concurrency = level
            .get("concurrency")
            .and_then(Json::as_u64)
            .ok_or_else(|| shape(path, format!("levels[{i}] has no \"concurrency\"")))?;
        let rps = level
            .get("throughput_rps")
            .and_then(Json::as_f64)
            .ok_or_else(|| shape(path, format!("levels[{i}] has no \"throughput_rps\"")))?;
        metrics.insert(
            format!("serve.c{concurrency}.throughput_rps"),
            Metric { value: rps, direction: Direction::HigherIsBetter },
        );
        let latency = level
            .get("latency")
            .and_then(Json::as_obj)
            .ok_or_else(|| shape(path, format!("levels[{i}] has no \"latency\" object")))?;
        for quantile in ["p50_ms", "p95_ms", "p99_ms"] {
            let ms = latency
                .get(quantile)
                .and_then(Json::as_f64)
                .ok_or_else(|| shape(path, format!("levels[{i}].latency has no \"{quantile}\"")))?;
            metrics.insert(
                format!("serve.c{concurrency}.latency.{quantile}"),
                Metric { value: ms, direction: Direction::LowerIsBetter },
            );
        }
    }
    Ok(BenchReport { kind: "serve", metrics })
}

/// Compares two parsed reports under `thresholds`.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    thresholds: &Thresholds,
) -> Result<CompareReport, CompareError> {
    if baseline.kind != current.kind {
        return Err(CompareError::KindMismatch { baseline: baseline.kind, current: current.kind });
    }
    let mut rows = Vec::new();
    for (name, base) in &baseline.metrics {
        let ratio = thresholds.ratio_for(name);
        let row = match current.metrics.get(name) {
            Some(cur) => {
                let regressed = match base.direction {
                    Direction::HigherIsBetter => cur.value < base.value * ratio,
                    Direction::LowerIsBetter => cur.value > base.value / ratio,
                };
                MetricRow {
                    name: name.clone(),
                    baseline: base.value,
                    current: Some(cur.value),
                    ratio,
                    regressed,
                }
            }
            None => MetricRow {
                name: name.clone(),
                baseline: base.value,
                current: None,
                ratio,
                regressed: true,
            },
        };
        rows.push(row);
    }
    let added = current
        .metrics
        .keys()
        .filter(|name| !baseline.metrics.contains_key(*name))
        .cloned()
        .collect();
    Ok(CompareReport { kind: baseline.kind, rows, added })
}

/// Loads both files and compares them (the CLI entry point's core).
pub fn compare_files(
    baseline: &Path,
    current: &Path,
    thresholds: &Thresholds,
) -> Result<CompareReport, CompareError> {
    let base = load_report(baseline)?;
    let cur = load_report(current)?;
    compare(&base, &cur, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;

    const THROUGHPUT: &str = r#"{"schema":1,"probe_feature":false,"metrics":[
        {"name":"workload_gen (inst/s)","units_per_rep":1000000,
         "best_units_per_sec":16488713.0,"wall_s":0.31},
        {"name":"full_core (inst/s)","units_per_rep":60000,
         "best_units_per_sec":2454594.5,"wall_s":0.076}],
        "skip_rate":0.62,"skip_speedup":2.4,
        "jobs_sweep":{"figure":"fig6_fast","cells":36,
         "serial_wall_s":0.75,"speedup":1.111}}"#;

    const SERVE: &str = r#"{"schema":1,"bench":"hbc-serve load","config":{"requests":64},
        "levels":[{"cache":{"hit-memory":49},"concurrency":1,
         "latency":{"p50_ms":0.2,"p95_ms":1.5,"p99_ms":2.0},
         "status":{"200":64},"throughput_rps":5000.0,"wall_s":0.01}]}"#;

    fn report(text: &str) -> BenchReport {
        let json = Json::parse(text).expect("test JSON parses");
        parse_report(Path::new("test.json"), &json).expect("test report parses")
    }

    #[test]
    fn identical_inputs_pass() {
        for text in [THROUGHPUT, SERVE] {
            let r = report(text);
            let out = compare(&r, &r, &Thresholds::new()).expect("same kind");
            assert_eq!(out.regressions(), 0, "{}", out.render());
            assert!(out.render().starts_with("metric"));
            assert!(out.render().contains("ok:"));
        }
    }

    #[test]
    fn injected_throughput_regression_is_caught() {
        let base = report(THROUGHPUT);
        let mut cur = base.clone();
        if let Some(m) = cur.metrics.get_mut("throughput.full_core (inst/s).best_units_per_sec") {
            m.value *= 0.5; // 2x slowdown
        } else {
            panic!("metric key changed");
        }
        let out = compare(&base, &cur, &Thresholds::new()).expect("same kind");
        assert_eq!(out.regressions(), 1);
        assert!(out.render().contains("REGRESSED"));
        assert!(out.render().contains("REGRESSION: 1 of"));
    }

    #[test]
    fn latency_regresses_upward_only() {
        let base = report(SERVE);
        let mut slower = base.clone();
        if let Some(m) = slower.metrics.get_mut("serve.c1.latency.p95_ms") {
            m.value *= 3.0;
        }
        let out = compare(&base, &slower, &Thresholds::new()).expect("same kind");
        assert_eq!(out.regressions(), 1);
        // Faster latency is an improvement, never a regression.
        let mut faster = base.clone();
        for m in faster.metrics.values_mut() {
            if m.direction == Direction::LowerIsBetter {
                m.value *= 0.5;
            }
        }
        assert_eq!(
            compare(&base, &faster, &Thresholds::new()).expect("same kind").regressions(),
            0
        );
    }

    #[test]
    fn skip_and_wall_time_gauges_are_extracted() {
        let r = report(THROUGHPUT);
        assert_eq!(
            r.metrics.get("throughput.skip_rate"),
            Some(&Metric { value: 0.62, direction: Direction::HigherIsBetter })
        );
        assert_eq!(
            r.metrics.get("throughput.skip_speedup"),
            Some(&Metric { value: 2.4, direction: Direction::HigherIsBetter })
        );
        assert_eq!(
            r.metrics.get("throughput.jobs_sweep.serial_wall_s"),
            Some(&Metric { value: 0.75, direction: Direction::LowerIsBetter })
        );
        // A slower serial figure run regresses; a faster one never does.
        let mut slower = r.clone();
        slower.metrics.get_mut("throughput.jobs_sweep.serial_wall_s").unwrap().value = 1.5;
        assert_eq!(compare(&r, &slower, &Thresholds::new()).expect("kind").regressions(), 1);
        let mut faster = r.clone();
        faster.metrics.get_mut("throughput.jobs_sweep.serial_wall_s").unwrap().value = 0.4;
        assert_eq!(compare(&r, &faster, &Thresholds::new()).expect("kind").regressions(), 0);
    }

    #[test]
    fn missing_metric_regresses_and_new_metric_informs() {
        let base = report(THROUGHPUT);
        let mut cur = base.clone();
        cur.metrics.remove("throughput.jobs_sweep.speedup");
        cur.metrics.insert(
            "throughput.brand_new".to_string(),
            Metric { value: 1.0, direction: Direction::HigherIsBetter },
        );
        let out = compare(&base, &cur, &Thresholds::new()).expect("same kind");
        assert_eq!(out.regressions(), 1);
        assert_eq!(out.added, ["throughput.brand_new"]);
        assert!(out.render().contains("missing"));
        assert!(out.render().contains("new metric"));
    }

    #[test]
    fn threshold_overrides_pick_longest_prefix() {
        let mut t = Thresholds::new();
        t.overrides.push(("serve.".to_string(), 0.5));
        t.overrides.push(("serve.c1.latency".to_string(), 0.9));
        assert_eq!(t.ratio_for("serve.c1.throughput_rps"), 0.5);
        assert_eq!(t.ratio_for("serve.c1.latency.p99_ms"), 0.9);
        assert_eq!(t.ratio_for("throughput.x"), Thresholds::DEFAULT_RATIO);

        // A loose override forgives what the default would flag.
        let base = report(SERVE);
        let mut cur = base.clone();
        if let Some(m) = cur.metrics.get_mut("serve.c1.throughput_rps") {
            m.value *= 0.6;
        }
        assert_eq!(compare(&base, &cur, &Thresholds::new()).expect("kind").regressions(), 1);
        let mut loose = Thresholds::new();
        loose.overrides.push(("serve.c1.throughput_rps".to_string(), 0.5));
        assert_eq!(compare(&base, &cur, &loose).expect("kind").regressions(), 0);
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        let missing = Json::parse(r#"{"metrics":[]}"#).expect("parses");
        match parse_report(Path::new("t.json"), &missing) {
            Err(CompareError::Schema { found: None, .. }) => {}
            other => panic!("expected missing-schema error, got {other:?}"),
        }
        let wrong = Json::parse(r#"{"schema":99,"metrics":[]}"#).expect("parses");
        match parse_report(Path::new("t.json"), &wrong) {
            Err(CompareError::Schema { found: Some(99), .. }) => {}
            other => panic!("expected wrong-schema error, got {other:?}"),
        }
        assert!(format!(
            "{}",
            CompareError::Schema { path: PathBuf::from("t.json"), found: Some(99) }
        )
        .contains("unsupported schema version 99"));
    }

    #[test]
    fn shape_and_kind_errors_are_typed() {
        let neither = Json::parse(r#"{"schema":1,"x":2}"#).expect("parses");
        assert!(matches!(
            parse_report(Path::new("t.json"), &neither),
            Err(CompareError::Shape { .. })
        ));
        let t = report(THROUGHPUT);
        let s = report(SERVE);
        match compare(&t, &s, &Thresholds::new()) {
            Err(CompareError::KindMismatch { baseline: "throughput", current: "serve" }) => {}
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn committed_baselines_parse() {
        // The repo's own committed baselines must always satisfy the
        // schema this differ enforces.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for name in ["BENCH_throughput.json", "BENCH_serve.json"] {
            let path = root.join("results").join(name);
            let report = load_report(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!report.metrics.is_empty(), "{name}: no metrics extracted");
            let out = compare(&report, &report, &Thresholds::new()).expect("same kind");
            assert_eq!(out.regressions(), 0);
        }
    }
}
