//! Golden zero-cost tests for span tracing: figure tables and probe
//! exports must be byte-identical with the span sink installed and
//! uninstalled, serial and `--jobs 4`.
//!
//! This is the observability analogue of `exec_equivalence`: spans are
//! metadata the simulation never reads, so recording them — or compiling
//! them out entirely — cannot change a single simulated byte. The tests
//! run with and without `--features span`; without it the sink stubs are
//! no-ops and the "enabled" arm degenerates to the plain run, which must
//! *still* be identical.

use hbc_core::experiments::{fig5, fig6, ExpParams};
use hbc_core::{spans, Benchmark};
use std::sync::Mutex;

/// The span sink is process-global, so the tests in this binary must not
/// interleave their install/uninstall windows.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tiny but non-trivial parameters: two benchmarks so the sweeps have
/// several cells per figure, and windows short enough for debug builds.
fn reduced_params(jobs: usize) -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 4_000;
    p.warmup = 1_000;
    p.cache_warm = 50_000;
    p.benchmarks = vec![Benchmark::Gcc, Benchmark::Database];
    p.jobs = jobs;
    p
}

/// Runs `f` with the global span sink installed, returning the result and
/// the recorded span log.
fn with_sink<R>(f: impl FnOnce() -> R) -> (R, std::sync::Arc<hbc_core::SpanLog>) {
    let log = spans::install(16_384);
    let out = f();
    spans::uninstall();
    (out, log)
}

#[test]
fn figure_tables_are_identical_with_and_without_spans() {
    let _guard = serialized();
    for jobs in [1, 4] {
        for run in [fig5::run as fn(&ExpParams) -> hbc_core::report::Table, fig6::run] {
            let plain = run(&reduced_params(jobs)).to_csv();
            let (spanned, _log) = with_sink(|| run(&reduced_params(jobs)).to_csv());
            assert_eq!(
                plain, spanned,
                "span recording must not change figure output (jobs={jobs})"
            );
        }
    }
}

#[test]
fn probe_exports_are_identical_with_and_without_spans() {
    let _guard = serialized();
    let report = |jobs| {
        let mut p = reduced_params(jobs);
        p.probes = true;
        hbc_bench::probe_report(&p, &[("base", &|s| s)])
    };
    for jobs in [1, 4] {
        let plain = report(jobs);
        let (spanned, _log) = with_sink(|| report(jobs));
        assert!(!plain.is_empty(), "probe report must carry content");
        assert_eq!(plain, spanned, "span recording must not change probe exports (jobs={jobs})");
    }
}

#[cfg(feature = "span")]
#[test]
fn span_log_carries_the_expected_stages() {
    let _guard = serialized();
    use std::collections::BTreeSet;

    // Serial: every cell gets its own request with an exec.run span, and
    // the simulation phases nest under it.
    let (_, serial) = with_sink(|| fig6::run(&reduced_params(1)));
    let records = serial.snapshot();
    let stages: BTreeSet<&str> = records.iter().map(|r| r.stage).collect();
    for stage in ["exec.run", "sim.warm_up", "sim.measured"] {
        assert!(stages.contains(stage), "missing {stage} in serial run: {stages:?}");
    }
    for r in &records {
        assert!(hbc_core::is_registered_stage(r.stage), "unregistered stage {:?}", r.stage);
        assert!(r.span > 0, "span IDs are never zero");
    }
    // Simulation phases are children of the cell's exec.run span within
    // the same request.
    let runs: BTreeSet<(u64, u64)> =
        records.iter().filter(|r| r.stage == "exec.run").map(|r| (r.request, r.span)).collect();
    let measured: Vec<_> = records.iter().filter(|r| r.stage == "sim.measured").collect();
    assert!(!measured.is_empty());
    for m in &measured {
        assert!(
            runs.contains(&(m.request, m.parent)),
            "sim.measured must nest under its cell's exec.run span"
        );
    }

    // Parallel adds the engine stages; timings differ but stage coverage
    // and nesting discipline hold.
    let (_, parallel) = with_sink(|| fig6::run(&reduced_params(4)));
    let stages: BTreeSet<&str> = parallel.snapshot().iter().map(|r| r.stage).collect();
    for stage in ["exec.steal", "exec.run", "exec.merge", "sim.warm_up", "sim.measured"] {
        assert!(stages.contains(stage), "missing {stage} in parallel run: {stages:?}");
    }
}

#[cfg(not(feature = "span"))]
#[test]
fn span_stubs_record_nothing() {
    let _guard = serialized();
    let ((), log) = with_sink(|| {
        fig5::run(&reduced_params(1));
    });
    // Cargo feature unification can switch `hbc-core/span` on for the
    // whole build (e.g. `--features hbcache/span`) while this crate's
    // own `span` feature — and this cfg — stay off. The stub contract
    // is only in effect when the stub `install` answered, which is
    // detectable: stubs return a capacity-0 log regardless of the
    // capacity asked for.
    if log.capacity() != 0 {
        return;
    }
    assert!(log.is_empty(), "without --features span the sink must stay empty");
    assert_eq!(spans::begin_request(), 0);
    assert_eq!(spans::now_us(), 0);
}
