//! Golden equivalence tests for the parallel execution engine: a sweep run
//! with `--jobs 4` must be byte-identical to the same sweep run with
//! `--jobs 1`, for the figure tables and the probe exports alike.
//!
//! These run in every feature combination — plain, `--features sanitize`,
//! `--features probe` — because the engine's determinism argument (cell
//! independence, fixed cell→index mapping, index-ordered merge) must hold
//! no matter what instrumentation is compiled in.

use hbc_core::experiments::{fig3, fig5, fig6, ExpParams};
use hbc_core::Benchmark;

/// Tiny but non-trivial parameters: two benchmarks so the sweeps have
/// several cells per figure, and windows short enough for debug builds.
fn reduced_params(jobs: usize) -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 4_000;
    p.warmup = 1_000;
    p.cache_warm = 50_000;
    p.benchmarks = vec![Benchmark::Gcc, Benchmark::Database];
    p.jobs = jobs;
    p
}

#[test]
fn figure_tables_are_identical_serial_vs_parallel() {
    for run in [fig3::run as fn(&ExpParams) -> hbc_core::report::Table, fig5::run, fig6::run] {
        let serial = run(&reduced_params(1)).to_csv();
        let parallel = run(&reduced_params(4)).to_csv();
        assert_eq!(serial, parallel, "--jobs 4 must be byte-identical to --jobs 1");
    }
}

#[test]
fn probe_exports_are_identical_serial_vs_parallel() {
    let report = |jobs| {
        let mut p = reduced_params(jobs);
        p.probes = true;
        p.trace_window = 64;
        hbc_bench::probe_report(
            &p,
            &[("base", &|s| s), ("lb", &|s: hbc_core::SimBuilder| s.line_buffer(true))],
        )
    };
    let serial = report(1);
    let parallel = report(4);
    assert!(!serial.is_empty(), "probe report must carry content");
    assert_eq!(serial, parallel, "probe exports must not depend on worker count");
}

#[test]
fn jobs_zero_auto_matches_serial() {
    let serial = fig6::run(&reduced_params(1)).to_csv();
    let auto = fig6::run(&reduced_params(0)).to_csv();
    assert_eq!(serial, auto, "--jobs 0 (auto) must be byte-identical to serial");
}
