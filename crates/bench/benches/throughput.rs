//! Host-side simulator throughput: how many simulated instructions (or
//! events) each layer of the stack processes per host second. Wall-clock
//! only — these numbers never feed back into simulation results; they
//! exist to catch regressions in simulator speed, the cost the `probe`
//! feature must not add to release figure runs.
//!
//! ```text
//! cargo bench -p hbc-bench --bench throughput
//! cargo bench -p hbc-bench --bench throughput --features probe
//! ```

use std::hint::black_box;
use std::time::Instant;

use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::{MemConfig, MemSystem, PortModel};
use hbc_workloads::WorkloadGen;

/// Times `f`, which processes `units` simulated units per call, and prints
/// the best rate over a few repeats.
fn rate(name: &str, units: u64, repeats: u32, mut f: impl FnMut()) {
    black_box(()); // keep the import obvious for future bodies
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.max(units as f64 / t0.elapsed().as_secs_f64().max(1e-9));
    }
    println!("{:<44} {:>12.2} M units/s", name, best / 1e6);
}

fn main() {
    println!("## throughput (probe feature: {})", cfg!(feature = "probe"));

    let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
    rate("workload_gen_gcc (inst/s)", 1_000_000, 5, || {
        for _ in 0..1_000_000 {
            black_box(gen.next_inst());
        }
    });

    let cfg = MemConfig::paper_sram(32 << 10, 2, PortModel::Banked(8)).with_line_buffer();
    let mut mem = MemSystem::new(cfg).unwrap();
    let mut now = 0u64;
    rate("mem_system_banked8_lb (load-cycles/s)", 1_000_000, 5, || {
        for _ in 0..1_000_000 {
            now += 1;
            mem.begin_cycle(now);
            black_box(mem.try_load((now.wrapping_mul(72)) & 0x7FFF));
            mem.end_cycle();
        }
    });

    const CORE_INSTS: u64 = 60_000;
    for (name, probes) in [
        ("full_core_duplicate_lb (inst/s)", false),
        ("full_core_duplicate_lb+probes (inst/s)", true),
    ] {
        rate(name, CORE_INSTS, 3, || {
            let r = SimBuilder::new(Benchmark::Gcc)
                .cache_size_kib(32)
                .hit_cycles(2)
                .ports(PortModel::Duplicate)
                .line_buffer(true)
                .instructions(CORE_INSTS)
                .warmup(0)
                .cache_warm(100_000)
                .probes(probes)
                .run();
            black_box(r.ipc());
        });
    }
}
