//! Host-side simulator throughput: how many simulated instructions (or
//! events) each layer of the stack processes per host second. Wall-clock
//! only — these numbers never feed back into simulation results; they
//! exist to catch regressions in simulator speed, the cost the `probe`
//! feature must not add to release figure runs.
//!
//! Every run writes `results/BENCH_throughput.json` with the per-metric
//! wall-clock and rates plus a serial-vs-parallel sweep of a full figure
//! (the CI artifact); `--json` additionally prints that document.
//!
//! ```text
//! cargo bench -p hbc-bench --bench throughput
//! cargo bench -p hbc-bench --bench throughput --features probe
//! cargo bench -p hbc-bench --bench throughput -- --json
//! ```

use std::hint::black_box;
use std::time::Instant;

use hbc_core::{exec, Benchmark, ExpParams, SimBuilder};
use hbc_mem::{MemConfig, MemSystem, PortModel};
use hbc_workloads::WorkloadGen;

struct Metric {
    name: &'static str,
    units: u64,
    best: f64,
    wall_s: f64,
}

/// Times `f`, which processes `units` simulated units per call, prints the
/// best rate over a few repeats, and records it for the JSON document.
fn rate(out: &mut Vec<Metric>, name: &'static str, units: u64, repeats: u32, mut f: impl FnMut()) {
    black_box(()); // keep the import obvious for future bodies
    let mut best = 0.0f64;
    let t_all = Instant::now();
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.max(units as f64 / t0.elapsed().as_secs_f64().max(1e-9));
    }
    println!("{:<44} {:>12.2} M units/s", name, best / 1e6);
    out.push(Metric { name, units, best, wall_s: t_all.elapsed().as_secs_f64() });
}

/// One full figure (Figure 6 at fast fidelity) serially and at the host's
/// parallelism: the end-to-end engine speedup, plus aggregate sims/sec.
fn jobs_sweep(json: &mut String) {
    use std::fmt::Write as _;
    let mut p = ExpParams::fast();
    let cells = p.benchmarks.len() * 2 * 3 * 2; // benchmarks x orgs x hits x lb
    p.jobs = 1;
    let t0 = Instant::now();
    black_box(hbc_core::experiments::fig6::run(&p));
    let serial_s = t0.elapsed().as_secs_f64();
    let jobs = exec::default_jobs();
    p.jobs = jobs;
    let t0 = Instant::now();
    black_box(hbc_core::experiments::fig6::run(&p));
    let parallel_s = t0.elapsed().as_secs_f64();
    println!(
        "fig6_fast_jobs1_vs_jobs{jobs}                       {serial_s:>9.3} s vs {parallel_s:.3} s ({:.2}x)",
        serial_s / parallel_s.max(1e-9)
    );
    let _ = write!(
        json,
        "\"jobs_sweep\":{{\"figure\":\"fig6_fast\",\"cells\":{cells},\
         \"serial_wall_s\":{serial_s:.6},\"serial_sims_per_sec\":{:.3},\
         \"parallel_jobs\":{jobs},\"parallel_wall_s\":{parallel_s:.6},\
         \"parallel_sims_per_sec\":{:.3},\"speedup\":{:.3}}}",
        cells as f64 / serial_s.max(1e-9),
        cells as f64 / parallel_s.max(1e-9),
        serial_s / parallel_s.max(1e-9),
    )
    .is_ok();
}

fn main() {
    use std::fmt::Write as _;
    let print_json = std::env::args().skip(1).any(|a| a == "--json");
    println!("## throughput (probe feature: {})", cfg!(feature = "probe"));
    let mut metrics = Vec::new();

    let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
    rate(&mut metrics, "workload_gen_gcc (inst/s)", 1_000_000, 5, || {
        for _ in 0..1_000_000 {
            black_box(gen.next_inst());
        }
    });

    let cfg = MemConfig::paper_sram(32 << 10, 2, PortModel::Banked(8)).with_line_buffer();
    let mut mem = MemSystem::new(cfg).unwrap();
    let mut now = 0u64;
    rate(&mut metrics, "mem_system_banked8_lb (load-cycles/s)", 1_000_000, 5, || {
        for _ in 0..1_000_000 {
            now += 1;
            mem.begin_cycle(now);
            black_box(mem.try_load((now.wrapping_mul(72)) & 0x7FFF));
            mem.end_cycle();
        }
    });

    // Reference warm loop: full instruction decode (`next_inst`) feeding
    // `warm_touch`, the shape the drivers used before the `next_warm` fast
    // path existed. The ratio against `cache_warm_gcc_32k_lb` below is the
    // fast path's speedup and is recorded as `warm_fastpath_speedup`.
    const WARM_INSTS: u64 = 2_000_000;
    let warm_cfg = MemConfig::paper_sram(32 << 10, 2, PortModel::Duplicate).with_line_buffer();
    rate(&mut metrics, "warm_loop_full_decode (inst/s)", WARM_INSTS, 3, || {
        let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
        let mut mem = MemSystem::new(warm_cfg.clone()).unwrap();
        for _ in 0..WARM_INSTS {
            if let Some(addr) = gen.next_inst().addr() {
                mem.warm_touch(addr);
            }
        }
        black_box(mem.stats().clone());
    });

    rate(&mut metrics, "cache_warm_gcc_32k_lb (inst/s)", WARM_INSTS, 3, || {
        let r = SimBuilder::new(Benchmark::Gcc)
            .cache_size_kib(32)
            .hit_cycles(2)
            .ports(PortModel::Duplicate)
            .line_buffer(true)
            .instructions(1)
            .warmup(0)
            .cache_warm(WARM_INSTS)
            .run();
        black_box(r.ipc());
    });

    const CORE_INSTS: u64 = 60_000;
    for (name, probes) in [
        ("full_core_duplicate_lb (inst/s)", false),
        ("full_core_duplicate_lb+probes (inst/s)", true),
    ] {
        rate(&mut metrics, name, CORE_INSTS, 3, || {
            let r = SimBuilder::new(Benchmark::Gcc)
                .cache_size_kib(32)
                .hit_cycles(2)
                .ports(PortModel::Duplicate)
                .line_buffer(true)
                .instructions(CORE_INSTS)
                .warmup(0)
                .cache_warm(100_000)
                .probes(probes)
                .run();
            black_box(r.ipc());
        });
    }

    // Event-horizon skipping: the same miss-heavy DRAM-cache run under the
    // reference tick loop and the fast-forward engine. The ratio is the
    // engine's end-to-end speedup on stall-bound simulations; `skip_rate`
    // is the fraction of simulated cycles it fast-forwarded.
    let dram_run = |skip: bool| {
        SimBuilder::new(Benchmark::Compress)
            .dram_cache(8)
            .line_buffer(true)
            .instructions(CORE_INSTS)
            .warmup(0)
            .cache_warm(100_000)
            .event_horizon(skip)
            .run()
    };
    rate(&mut metrics, "full_core_dram8_tick (inst/s)", CORE_INSTS, 3, || {
        black_box(dram_run(false).ipc());
    });
    rate(&mut metrics, "full_core_dram8_skip (inst/s)", CORE_INSTS, 3, || {
        black_box(dram_run(true).ipc());
    });
    let skip_rate_measured = dram_run(true).skip_rate();
    println!("{:<44} {:>12.4}", "skip_rate (dram8)", skip_rate_measured);

    let mut json =
        format!("{{\"schema\":1,\"probe_feature\":{},\"metrics\":[", cfg!(feature = "probe"));
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"units_per_rep\":{},\"best_units_per_sec\":{:.3},\
             \"wall_s\":{:.6}}}",
            m.name, m.units, m.best, m.wall_s,
        );
    }
    json.push_str("],");
    let rate_of = |n: &str| metrics.iter().find(|m| m.name.starts_with(n)).map(|m| m.best);
    if let (Some(slow), Some(fast)) =
        (rate_of("warm_loop_full_decode"), rate_of("cache_warm_gcc_32k_lb"))
    {
        println!("{:<44} {:>12.2} x", "warm_fastpath_speedup", fast / slow.max(1e-9));
        let _ = write!(json, "\"warm_fastpath_speedup\":{:.3},", fast / slow.max(1e-9));
    }
    let _ = write!(json, "\"skip_rate\":{skip_rate_measured:.4},");
    if let (Some(tick), Some(skip)) =
        (rate_of("full_core_dram8_tick"), rate_of("full_core_dram8_skip"))
    {
        println!("{:<44} {:>12.2} x", "skip_speedup", skip / tick.max(1e-9));
        let _ = write!(json, "\"skip_speedup\":{:.3},", skip / tick.max(1e-9));
    }
    jobs_sweep(&mut json);
    json.push('}');

    // Anchor at the workspace root: cargo runs benches with the package
    // directory as cwd, but the committed baseline (and the CI artifact)
    // live in the top-level `results/`.
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let out = out_dir.join("BENCH_throughput.json");
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("note: could not write {}: {e}", out.display());
        }
    }
    if print_json {
        println!("{json}");
    }
}
