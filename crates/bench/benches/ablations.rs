//! Benchmarks of simulator throughput under the design options DESIGN.md
//! flags for ablation: the *performance results* of these options come
//! from the `ablation` binary; these benchmarks track the simulation cost
//! each option adds.

use std::hint::black_box;

use hbc_bench::timer::Runner;
use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::PortModel;

fn quick(b: Benchmark) -> SimBuilder {
    SimBuilder::new(b).instructions(3_000).warmup(500).cache_warm(100_000)
}

fn bench_port_models() {
    let r = Runner::new("port_models").iters(3);
    for (name, ports) in [
        ("ideal2", PortModel::Ideal(2)),
        ("banked8", PortModel::Banked(8)),
        ("banked128", PortModel::Banked(128)),
        ("duplicate", PortModel::Duplicate),
    ] {
        r.bench(name, || black_box(quick(Benchmark::Gcc).ports(ports).run().ipc()));
    }
}

fn bench_line_buffer_cost() {
    let r = Runner::new("line_buffer_cost").iters(3);
    r.bench("without", || black_box(quick(Benchmark::Tomcatv).hit_cycles(2).run().ipc()));
    r.bench("with", || {
        black_box(quick(Benchmark::Tomcatv).hit_cycles(2).line_buffer(true).run().ipc())
    });
}

fn bench_dram_mode() {
    let r = Runner::new("dram_mode").iters(3);
    r.bench("sram_l2", || black_box(quick(Benchmark::Database).run().ipc()));
    r.bench("dram_cache", || black_box(quick(Benchmark::Database).dram_cache(6).run().ipc()));
}

fn main() {
    bench_port_models();
    bench_line_buffer_cost();
    bench_dram_mode();
}
