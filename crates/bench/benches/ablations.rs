//! Criterion benchmarks of simulator throughput under the design options
//! DESIGN.md flags for ablation: the *performance results* of these options
//! come from the `ablation` binary; these benchmarks track the simulation
//! cost each option adds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::PortModel;

fn quick(b: Benchmark) -> SimBuilder {
    SimBuilder::new(b).instructions(3_000).warmup(500).cache_warm(100_000)
}

fn bench_port_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("port_models");
    g.sample_size(10);
    for (name, ports) in [
        ("ideal2", PortModel::Ideal(2)),
        ("banked8", PortModel::Banked(8)),
        ("banked128", PortModel::Banked(128)),
        ("duplicate", PortModel::Duplicate),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(quick(Benchmark::Gcc).ports(ports).run().ipc()));
        });
    }
    g.finish();
}

fn bench_line_buffer_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_buffer_cost");
    g.sample_size(10);
    g.bench_function("without", |b| {
        b.iter(|| black_box(quick(Benchmark::Tomcatv).hit_cycles(2).run().ipc()))
    });
    g.bench_function("with", |b| {
        b.iter(|| black_box(quick(Benchmark::Tomcatv).hit_cycles(2).line_buffer(true).run().ipc()))
    });
    g.finish();
}

fn bench_dram_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_mode");
    g.sample_size(10);
    g.bench_function("sram_l2", |b| {
        b.iter(|| black_box(quick(Benchmark::Database).run().ipc()))
    });
    g.bench_function("dram_cache", |b| {
        b.iter(|| black_box(quick(Benchmark::Database).dram_cache(6).run().ipc()))
    });
    g.finish();
}

criterion_group!(benches, bench_port_models, bench_line_buffer_cost, bench_dram_mode);
criterion_main!(benches);
