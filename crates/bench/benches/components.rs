//! Micro-benchmarks of the simulator substrates: how fast the building
//! blocks run, so regressions in simulator throughput are caught.

use std::hint::black_box;

use hbc_bench::timer::Runner;
use hbc_mem::{CacheArray, LineBuffer, MemConfig, MemSystem, PortModel};
use hbc_timing::{
    cacti::CactiModel, cacti::SearchSpace, AccessTimeModel, CacheSize, PortStructure,
};
use hbc_workloads::{Benchmark, WorkloadGen};

fn bench_cache_array(r: &Runner) {
    let mut cache = CacheArray::new(32 << 10, 2, 32);
    let mut i = 0u64;
    r.bench("cache_array_touch_32k", || {
        i = i.wrapping_add(0x9E37_79B9);
        black_box(cache.touch(i & 0xF_FFFF))
    });
}

fn bench_line_buffer(r: &Runner) {
    let mut lb = LineBuffer::new(32, 32);
    let mut i = 0u64;
    r.bench("line_buffer_lookup_fill", || {
        i = i.wrapping_add(40);
        if !lb.lookup(i & 0xFFFF) {
            lb.fill(i & 0xFFFF);
        }
    });
}

fn bench_workload_gen(r: &Runner) {
    let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
    r.bench("workload_gen_gcc", || black_box(gen.next_inst()));
    let mut gen = WorkloadGen::new(Benchmark::Database, 1);
    r.bench("workload_gen_database", || black_box(gen.next_inst()));
}

fn bench_mem_system(r: &Runner) {
    let cfg = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate).with_line_buffer();
    let mut mem = MemSystem::new(cfg).unwrap();
    let mut now = 0u64;
    let mut addr = 0u64;
    r.bench("mem_system_load_cycle", || {
        now += 1;
        addr = addr.wrapping_add(72) & 0x7FFF;
        mem.begin_cycle(now);
        black_box(mem.try_load(addr));
        mem.end_cycle();
    });
}

fn bench_timing_models(r: &Runner) {
    let model = AccessTimeModel::default();
    r.bench("access_time_lookup", || {
        black_box(model.access_time(CacheSize::from_kib(96), PortStructure::SinglePorted).unwrap())
    });
    let cacti = CactiModel::default();
    Runner::new("components_slow").iters(20).bench("cacti_best_organization_1m", || {
        black_box(cacti.best_organization(CacheSize::from_mib(1), &SearchSpace::default()))
    });
}

fn main() {
    let r = Runner::new("components").iters(10_000);
    bench_cache_array(&r);
    bench_line_buffer(&r);
    bench_workload_gen(&r);
    bench_mem_system(&r);
    bench_timing_models(&r);
}
