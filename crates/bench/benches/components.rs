//! Criterion micro-benchmarks of the simulator substrates: how fast the
//! building blocks run, so regressions in simulator throughput are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbc_mem::{CacheArray, LineBuffer, MemConfig, MemSystem, PortModel};
use hbc_timing::{cacti::CactiModel, cacti::SearchSpace, AccessTimeModel, CacheSize, PortStructure};
use hbc_workloads::{Benchmark, WorkloadGen};

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array_touch_32k", |b| {
        let mut cache = CacheArray::new(32 << 10, 2, 32);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(cache.touch(i & 0xF_FFFF))
        });
    });
}

fn bench_line_buffer(c: &mut Criterion) {
    c.bench_function("line_buffer_lookup_fill", |b| {
        let mut lb = LineBuffer::new(32, 32);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(40);
            if !lb.lookup(i & 0xFFFF) {
                lb.fill(i & 0xFFFF);
            }
        });
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("workload_gen_gcc", |b| {
        let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
        b.iter(|| black_box(gen.next_inst()));
    });
    c.bench_function("workload_gen_database", |b| {
        let mut gen = WorkloadGen::new(Benchmark::Database, 1);
        b.iter(|| black_box(gen.next_inst()));
    });
}

fn bench_mem_system(c: &mut Criterion) {
    c.bench_function("mem_system_load_cycle", |b| {
        let cfg = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate).with_line_buffer();
        let mut mem = MemSystem::new(cfg).unwrap();
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(72) & 0x7FFF;
            mem.begin_cycle(now);
            black_box(mem.try_load(addr));
            mem.end_cycle();
        });
    });
}

fn bench_timing_models(c: &mut Criterion) {
    c.bench_function("access_time_lookup", |b| {
        let model = AccessTimeModel::default();
        b.iter(|| {
            black_box(
                model.access_time(CacheSize::from_kib(96), PortStructure::SinglePorted).unwrap(),
            )
        });
    });
    c.bench_function("cacti_best_organization_1m", |b| {
        let model = CactiModel::default();
        b.iter(|| {
            black_box(model.best_organization(CacheSize::from_mib(1), &SearchSpace::default()))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_line_buffer,
    bench_workload_gen,
    bench_mem_system,
    bench_timing_models
);
criterion_main!(benches);
