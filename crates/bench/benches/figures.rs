//! Benchmarks of whole experiment drivers (reduced fidelity):
//! `cargo bench` exercises the same code paths that regenerate every paper
//! table and figure. Absolute wall time per driver is the metric; the
//! figure *contents* come from the `fig*` binaries.

use std::hint::black_box;

use hbc_bench::timer::Runner;
use hbc_core::experiments::{fig1, fig3, fig4, fig6, fig7, fig9, table1, table2, ExpParams};
use hbc_core::{Benchmark, SimBuilder};

/// Very small windows so `cargo bench` stays tractable on one core.
fn tiny() -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 3_000;
    p.warmup = 500;
    p.cache_warm = 100_000;
    p.benchmarks = vec![Benchmark::Gcc];
    p
}

fn bench_single_sim() {
    let r = Runner::new("simulate").iters(3);
    for b in Benchmark::REPRESENTATIVES {
        r.bench(b.name(), || {
            black_box(
                SimBuilder::new(b).instructions(3_000).warmup(500).cache_warm(100_000).run().ipc(),
            )
        });
    }
}

fn bench_figures() {
    let r = Runner::new("figures").iters(2);
    r.bench("fig1", || black_box(fig1::run()));
    r.bench("table1", || black_box(table1::run()));
    let p = tiny();
    r.bench("table2", || black_box(table2::run(&p)));
    r.bench("fig3", || black_box(fig3::run(&p)));
    r.bench("fig4", || black_box(fig4::run(&p)));
    r.bench("fig6", || black_box(fig6::run(&p)));
    r.bench("fig7", || black_box(fig7::run(&p)));
    r.bench("fig9", || black_box(fig9::run(&p)));
}

fn main() {
    bench_single_sim();
    bench_figures();
}
