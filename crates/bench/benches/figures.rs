//! Criterion benchmarks of whole experiment drivers (reduced fidelity):
//! `cargo bench` exercises the same code paths that regenerate every paper
//! table and figure. Absolute wall time per driver is the metric; the
//! figure *contents* come from the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbc_core::experiments::{fig1, fig3, fig4, fig6, fig7, fig9, table1, table2, ExpParams};
use hbc_core::{Benchmark, SimBuilder};

/// Very small windows so `cargo bench` stays tractable on one core.
fn tiny() -> ExpParams {
    let mut p = ExpParams::fast();
    p.instructions = 3_000;
    p.warmup = 500;
    p.cache_warm = 100_000;
    p.benchmarks = vec![Benchmark::Gcc];
    p
}

fn bench_single_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for b in Benchmark::REPRESENTATIVES {
        g.bench_function(b.name(), |bench| {
            bench.iter(|| {
                black_box(
                    SimBuilder::new(b)
                        .instructions(3_000)
                        .warmup(500)
                        .cache_warm(100_000)
                        .run()
                        .ipc(),
                )
            });
        });
    }
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1", |b| b.iter(|| black_box(fig1::run())));
    g.bench_function("table1", |b| b.iter(|| black_box(table1::run())));
    let p = tiny();
    g.bench_function("table2", |b| b.iter(|| black_box(table2::run(&p))));
    g.bench_function("fig3", |b| b.iter(|| black_box(fig3::run(&p))));
    g.bench_function("fig4", |b| b.iter(|| black_box(fig4::run(&p))));
    g.bench_function("fig6", |b| b.iter(|| black_box(fig6::run(&p))));
    g.bench_function("fig7", |b| b.iter(|| black_box(fig7::run(&p))));
    g.bench_function("fig9", |b| b.iter(|| black_box(fig9::run(&p))));
    g.finish();
}

criterion_group!(benches, bench_single_sim, bench_figures);
criterion_main!(benches);
