//! Dynamic instruction records.

use std::fmt;

use crate::OpClass;

/// Identity of one dynamic instruction: its position in the committed
/// instruction stream, starting at zero.
///
/// Data dependences are expressed as producer `InstId`s, so the whole
/// machine state is expressible without architectural registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(u64);

impl InstId {
    /// Creates an instruction id.
    pub fn new(seq: u64) -> Self {
        InstId(seq)
    }

    /// The raw sequence number.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The id `distance` instructions earlier, or `None` if that would
    /// precede the start of the stream.
    pub fn back(self, distance: u64) -> Option<InstId> {
        self.0.checked_sub(distance).map(InstId)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Processor execution mode of an instruction.
///
/// SimOS simulates kernel as well as user references, which the paper calls
/// out as essential for the multiprogramming and database workloads
/// (Table 2); idle-loop instructions are excluded from IPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Application code.
    #[default]
    User,
    /// Operating-system code.
    Kernel,
    /// The idle loop (spinning on I/O); excluded from performance metrics.
    Idle,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::User => f.write_str("user"),
            ExecMode::Kernel => f.write_str("kernel"),
            ExecMode::Idle => f.write_str("idle"),
        }
    }
}

/// One dynamic instruction as produced by a workload model and consumed by
/// the processor pipeline.
///
/// # Example
///
/// ```
/// use hbc_isa::{DynInst, ExecMode, InstId, OpClass};
///
/// let load = DynInst::new(InstId::new(10), OpClass::Load, ExecMode::User)
///     .with_src(InstId::new(8))
///     .with_addr(0x1000);
/// assert_eq!(load.srcs(), &[Some(InstId::new(8)), None]);
/// assert_eq!(load.addr(), Some(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    id: InstId,
    op: OpClass,
    mode: ExecMode,
    srcs: [Option<InstId>; 2],
    addr: Option<u64>,
    taken: bool,
    mispredicted: bool,
}

impl DynInst {
    /// Creates an instruction with no sources, no address, and a correctly
    /// predicted not-taken branch outcome.
    pub fn new(id: InstId, op: OpClass, mode: ExecMode) -> Self {
        DynInst { id, op, mode, srcs: [None, None], addr: None, taken: false, mispredicted: false }
    }

    /// Adds a source dependence on `producer`.
    ///
    /// # Panics
    ///
    /// Panics if both source slots are already filled or if `producer` does
    /// not precede this instruction.
    pub fn with_src(mut self, producer: InstId) -> Self {
        assert!(producer < self.id, "producer {producer} must precede {}", self.id);
        let slot = self
            .srcs
            .iter_mut()
            .find(|s| s.is_none())
            .expect("an instruction has at most two source operands");
        *slot = Some(producer);
        self
    }

    /// Sets the memory address (loads and stores).
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a memory operation.
    pub fn with_addr(mut self, addr: u64) -> Self {
        assert!(self.op.is_mem(), "only loads and stores carry addresses");
        self.addr = Some(addr);
        self
    }

    /// Sets the branch outcome and whether the front end mispredicts it.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a control transfer.
    pub fn with_branch(mut self, taken: bool, mispredicted: bool) -> Self {
        assert!(self.op.is_control(), "only control transfers have outcomes");
        self.taken = taken;
        self.mispredicted = mispredicted;
        self
    }

    /// This instruction's id.
    pub fn id(self) -> InstId {
        self.id
    }

    /// Operation class.
    pub fn op(self) -> OpClass {
        self.op
    }

    /// Execution mode.
    pub fn mode(self) -> ExecMode {
        self.mode
    }

    /// Producer ids of the source operands.
    pub fn srcs(&self) -> &[Option<InstId>; 2] {
        &self.srcs
    }

    /// Memory address, if a load or store.
    pub fn addr(self) -> Option<u64> {
        self.addr
    }

    /// Branch outcome (meaningful only for control transfers).
    pub fn taken(self) -> bool {
        self.taken
    }

    /// `true` if the front end mispredicts this control transfer.
    pub fn mispredicted(self) -> bool {
        self.mispredicted
    }

    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        self.op.is_mem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_id_back() {
        let id = InstId::new(5);
        assert_eq!(id.back(2), Some(InstId::new(3)));
        assert_eq!(id.back(5), Some(InstId::new(0)));
        assert_eq!(id.back(6), None);
    }

    #[test]
    fn builder_fills_both_source_slots() {
        let i = DynInst::new(InstId::new(9), OpClass::IntAlu, ExecMode::User)
            .with_src(InstId::new(1))
            .with_src(InstId::new(4));
        assert_eq!(i.srcs(), &[Some(InstId::new(1)), Some(InstId::new(4))]);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn three_sources_rejected() {
        let _ = DynInst::new(InstId::new(9), OpClass::IntAlu, ExecMode::User)
            .with_src(InstId::new(1))
            .with_src(InstId::new(2))
            .with_src(InstId::new(3));
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn future_producer_rejected() {
        let _ =
            DynInst::new(InstId::new(3), OpClass::IntAlu, ExecMode::User).with_src(InstId::new(3));
    }

    #[test]
    #[should_panic(expected = "only loads and stores")]
    fn address_on_alu_rejected() {
        let _ = DynInst::new(InstId::new(0), OpClass::IntAlu, ExecMode::User).with_addr(0x0);
    }

    #[test]
    fn branch_outcome() {
        let b =
            DynInst::new(InstId::new(2), OpClass::Branch, ExecMode::Kernel).with_branch(true, true);
        assert!(b.taken() && b.mispredicted());
        assert_eq!(b.mode(), ExecMode::Kernel);
    }

    #[test]
    #[should_panic(expected = "control transfers")]
    fn branch_outcome_on_load_rejected() {
        let _ =
            DynInst::new(InstId::new(2), OpClass::Load, ExecMode::User).with_branch(true, false);
    }

    #[test]
    fn displays() {
        assert_eq!(InstId::new(42).to_string(), "i42");
        assert_eq!(ExecMode::Kernel.to_string(), "kernel");
        assert_eq!(ExecMode::default(), ExecMode::User);
    }
}
