//! Operation classes.

use std::fmt;

/// The class of a dynamic instruction, as far as pipeline timing is
/// concerned.
///
/// The paper's processor places "no restrictions on the type of instructions
/// that can be issued each cycle" (Section 3.1), so classes matter only for
/// execution latency and for routing loads and stores to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump, call, or return.
    Jump,
    /// Floating-point add or subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
}

impl OpClass {
    /// All operation classes, in a fixed order (useful for tables and
    /// exhaustive tests).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
    ];

    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        self == OpClass::Load
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        self == OpClass::Store
    }

    /// `true` for control transfers (conditional branches and jumps).
    pub fn is_control(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }

    /// `true` for floating-point operations.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::FpSqrt => "fp-sqrt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(OpClass::Load.is_mem() && OpClass::Load.is_load());
        assert!(OpClass::Store.is_mem() && OpClass::Store.is_store());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Branch.is_control() && OpClass::Jump.is_control());
        assert!(OpClass::FpDiv.is_fp() && !OpClass::IntDiv.is_fp());
    }

    #[test]
    fn all_lists_every_class_once() {
        for (i, a) in OpClass::ALL.iter().enumerate() {
            for b in &OpClass::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(OpClass::ALL.len(), 11);
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for op in OpClass::ALL {
            let s = op.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s), "duplicate display for {op:?}");
        }
    }
}
