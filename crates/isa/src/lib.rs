//! Instruction-set abstractions shared by the workload generator and the
//! processor model.
//!
//! The study is timing-driven: instructions carry everything the pipeline
//! needs to schedule them (operation class, producers of their source
//! operands, memory address, branch outcome) but no architectural semantics.
//! Latencies follow the MIPS R10000, the machine the paper's MXS simulator
//! models.
//!
//! # Example
//!
//! ```
//! use hbc_isa::{DynInst, ExecMode, InstId, LatencyTable, OpClass};
//!
//! let lat = LatencyTable::r10000();
//! assert_eq!(lat.latency(OpClass::IntAlu), 1);
//! assert_eq!(lat.latency(OpClass::FpDiv), 19);
//!
//! let inst = DynInst::new(InstId::new(7), OpClass::IntAlu, ExecMode::User);
//! assert!(!inst.is_mem());
//! ```

#![warn(missing_docs)]

mod inst;
mod latency;
mod op;

pub use inst::{DynInst, ExecMode, InstId};
pub use latency::LatencyTable;
pub use op::OpClass;
