//! Functional-unit latencies.

use crate::OpClass;

/// Execution latencies per operation class, in processor cycles.
///
/// For loads and stores the table holds only the **address-calculation**
/// latency; the memory-system latency (cache hit time, misses) is added by
/// the memory hierarchy. This matches the paper's note that "the load
/// latency is actually one cycle greater than the cache access time due to
/// the load's address calculation" (Section 3.1).
///
/// # Example
///
/// ```
/// use hbc_isa::{LatencyTable, OpClass};
///
/// let lat = LatencyTable::r10000();
/// assert_eq!(lat.latency(OpClass::Load), 1);   // address calculation only
/// assert_eq!(lat.latency(OpClass::IntMul), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    int_alu: u32,
    int_mul: u32,
    int_div: u32,
    addr_calc: u32,
    branch: u32,
    fp_add: u32,
    fp_mul: u32,
    fp_div: u32,
    fp_sqrt: u32,
}

impl LatencyTable {
    /// MIPS R10000 instruction latencies [Yeag96], the paper's processor
    /// model.
    pub fn r10000() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 6,
            int_div: 35,
            addr_calc: 1,
            branch: 1,
            fp_add: 2,
            fp_mul: 2,
            fp_div: 19,
            fp_sqrt: 33,
        }
    }

    /// A uniform single-cycle table, useful for isolating memory effects in
    /// tests and ablations.
    pub fn uniform_single_cycle() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 1,
            int_div: 1,
            addr_calc: 1,
            branch: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
            fp_sqrt: 1,
        }
    }

    /// Execution latency of `op` in cycles (address calculation only for
    /// memory operations).
    pub fn latency(&self, op: OpClass) -> u32 {
        match op {
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::IntDiv => self.int_div,
            OpClass::Load | OpClass::Store => self.addr_calc,
            OpClass::Branch | OpClass::Jump => self.branch,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::FpSqrt => self.fp_sqrt,
        }
    }
}

impl Default for LatencyTable {
    /// The R10000 table.
    fn default() -> Self {
        LatencyTable::r10000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r10000_values() {
        let t = LatencyTable::r10000();
        assert_eq!(t.latency(OpClass::IntAlu), 1);
        assert_eq!(t.latency(OpClass::Branch), 1);
        assert_eq!(t.latency(OpClass::Jump), 1);
        assert_eq!(t.latency(OpClass::FpAdd), 2);
        assert_eq!(t.latency(OpClass::FpMul), 2);
        assert_eq!(t.latency(OpClass::FpDiv), 19);
        assert_eq!(t.latency(OpClass::FpSqrt), 33);
        assert_eq!(t.latency(OpClass::IntDiv), 35);
        assert_eq!(t.latency(OpClass::Store), 1);
    }

    #[test]
    fn every_class_has_positive_latency() {
        for table in [LatencyTable::r10000(), LatencyTable::uniform_single_cycle()] {
            for op in OpClass::ALL {
                assert!(table.latency(op) >= 1, "{op} must take at least one cycle");
            }
        }
    }

    #[test]
    fn default_is_r10000() {
        assert_eq!(LatencyTable::default(), LatencyTable::r10000());
    }
}
