//! Experiment drivers reproducing every table and figure of Wilson &
//! Olukotun, *"Designing High Bandwidth On-Chip Caches"* (ISCA 1997).
//!
//! This crate ties the substrates together — [`hbc_timing`] access-time
//! curves, [`hbc_workloads`] benchmark models, [`hbc_mem`] hierarchies, and
//! the [`hbc_cpu`] core — into the paper's experiments. The entry points:
//!
//! * [`SimBuilder`] — run one configuration and get IPC plus memory
//!   statistics;
//! * [`miss_curve`] — fast functional miss-rate sweeps (Figure 3);
//! * the [`experiments`] module — one driver per paper table/figure.
//!
//! # Example
//!
//! ```
//! use hbc_core::{Benchmark, SimBuilder};
//!
//! let ipc = SimBuilder::new(Benchmark::Tomcatv)
//!     .cache_size_kib(64)
//!     .instructions(10_000)
//!     .warmup(2_000)
//!     .run()
//!     .ipc();
//! assert!(ipc > 0.2);
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod exectime;
pub mod experiments;
mod misses;
pub mod report;
mod sim;
pub mod spans;
mod warm;

pub use experiments::ExpParams;
pub use hbc_probe::{
    is_registered_stage, ProbeExport, ProbeRegistry, SpanLog, SpanRecord, StallBreakdown,
    StallCause, STAGE_NAMES,
};
pub use hbc_workloads::Benchmark;
pub use misses::{miss_curve, misses_per_instruction};
pub use sim::{SimBuilder, SimResult, DEFAULT_CACHE_WARM, DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP};
