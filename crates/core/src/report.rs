//! Plain-text table rendering for experiment results.

use std::fmt;

use hbc_probe::{ProbeRegistry, StallBreakdown};

/// A simple aligned text table, the output format of every experiment
/// driver.
///
/// # Example
///
/// ```
/// use hbc_core::report::Table;
///
/// let mut t = Table::new("demo", &["size", "ipc"]);
/// t.push(vec!["32K".into(), "1.81".into()]);
/// let text = t.to_string();
/// assert!(text.contains("demo") && text.contains("1.81"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for programmatic access.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let _span = crate::spans::enter("figure.report");
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let _span = crate::spans::enter("figure.report");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let header: Vec<String> =
            self.headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Renders a [`ProbeRegistry`] snapshot as a two-column table: every
/// counter by name, then every histogram summarized as
/// `count/mean/min..max`.
///
/// # Example
///
/// ```
/// use hbc_core::report::probe_table;
/// use hbc_probe::ProbeRegistry;
///
/// let mut reg = ProbeRegistry::new();
/// reg.counter("mem.lb.hits").add(9);
/// let t = probe_table(&reg);
/// assert!(t.to_string().contains("mem.lb.hits"));
/// ```
pub fn probe_table(reg: &ProbeRegistry) -> Table {
    let mut t = Table::new("probes", &["probe", "value"]);
    for (name, c) in reg.counters() {
        t.push(vec![name.to_string(), c.get().to_string()]);
    }
    for (name, h) in reg.histograms() {
        t.push(vec![
            name.to_string(),
            format!("n={} mean={} range={}..{}", h.count(), fmt_f(h.mean(), 2), h.min(), h.max()),
        ]);
    }
    t
}

/// Renders a [`StallBreakdown`] as a cause/cycles/share table, with a
/// trailing total row. Shares are fractions of the charged cycles, so they
/// sum to 100% whenever the attribution ran.
pub fn stall_table(stall: &StallBreakdown) -> Table {
    let mut t = Table::new("stall breakdown", &["cause", "cycles", "share"]);
    for (cause, cycles) in stall.iter() {
        t.push(vec![cause.label().to_string(), cycles.to_string(), fmt_pct(stall.fraction(cause))]);
    }
    t.push(vec!["total".to_string(), stall.total().to_string(), fmt_pct(1.0)]);
    t
}

/// Formats a float with `prec` decimals (experiment cell helper).
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as a percentage with two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("t\n"));
        assert!(s.contains("  a  bbbb"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.1234), "12.34%");
    }

    #[test]
    fn probe_table_lists_counters_and_histograms() {
        let mut reg = ProbeRegistry::new();
        reg.counter("cpu.run.cycles").set(100);
        reg.histogram("cpu.issue.width_used").record_n(4, 10);
        let t = probe_table(&reg);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("cpu.run.cycles") && s.contains("100"));
        assert!(s.contains("n=10 mean=4.00 range=4..4"));
    }

    #[test]
    fn stall_table_sums_to_total() {
        use hbc_probe::StallCause;
        let mut b = StallBreakdown::default();
        b.charge(StallCause::Commit);
        b.charge(StallCause::Commit);
        b.charge(StallCause::DramBusy);
        let t = stall_table(&b);
        assert_eq!(t.len(), StallCause::COUNT + 1, "one row per cause plus the total");
        let total = t.rows().last().unwrap();
        assert_eq!(total[0], "total");
        assert_eq!(total[1], "3");
    }
}
