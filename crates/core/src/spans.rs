//! Global span sink for the simulation layers, behind the `span` feature.
//!
//! The span *types* live in [`hbc_probe::span`] and are clockless; this
//! module is the only place on the simulation side that owns a wall
//! clock. It holds one process-global [`SpanLog`] sink plus a thread-local
//! `(request, parent span)` context, so the exec engine and the simulation
//! runner can emit spans without threading a handle through every call:
//!
//! * [`install`] / [`uninstall`] — attach or detach the sink (the
//!   `--spans out.jsonl` flag in the figure binaries drives these);
//! * [`begin_request`] — start a new unit of work (one experiment cell)
//!   on the current thread;
//! * [`enter`] — open a nested span that records itself on drop;
//! * [`record_since`] — record a leaf span from an explicit start stamp
//!   (used where a guard cannot straddle the timed region, e.g. the
//!   work-steal fetch).
//!
//! **Cost discipline.** With the feature off every function here is an
//! empty inline stub and the instrumentation in `exec.rs`/`sim.rs`
//! compiles out entirely. With the feature on but no sink installed, each
//! call is one relaxed atomic load. Either way the simulated numbers
//! cannot change — spans are observability metadata the simulation never
//! reads — and the `span_equivalence` golden test in `hbc-bench` pins the
//! stronger claim: figure outputs are byte-identical with spans enabled
//! and disabled, serial and parallel.
//!
//! The wall clock confined here is exactly why `hbc-probe` stays
//! clockless: determinism linting still guarantees no simulation *result*
//! can depend on time, while this module timestamps the metadata.

#[cfg(feature = "span")]
pub use imp::{begin_request, enabled, enter, install, now_us, record_since, uninstall, SpanGuard};
#[cfg(not(feature = "span"))]
pub use stub::{
    begin_request, enabled, enter, install, now_us, record_since, uninstall, SpanGuard,
};

#[cfg(feature = "span")]
mod imp {
    use hbc_probe::{SpanLog, SpanRecord};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, Ordering};
    // The sink is shared metadata, not simulation state: workers append
    // span records in arrival order, and nothing the simulator computes
    // ever reads them back.
    // hbc-allow: exec-merge (global span sink is observability metadata; simulation results never read it)
    use std::sync::{Arc, Mutex, OnceLock};
    // The one wall clock on the simulation side: span timestamps are
    // wall-time by definition and never feed back into simulated state.
    // hbc-allow: determinism (span timestamps are wall-clock metadata; simulated numbers never depend on them)
    use std::time::Instant;

    /// Fast path: `false` means every span call returns immediately.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// The installed sink, if any.
    // hbc-allow: exec-merge (global span sink is observability metadata; simulation results never read it)
    static SINK: Mutex<Option<Arc<SpanLog>>> = Mutex::new(None);
    /// Monotonic origin all `*_us` stamps are measured from.
    // hbc-allow: determinism (span timestamps are wall-clock metadata; simulated numbers never depend on them)
    static ORIGIN: OnceLock<Instant> = OnceLock::new();

    thread_local! {
        /// `(request, parent span)` for spans opened on this thread.
        static CTX: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    }

    /// Recovers from a poisoned sink lock: a panicking recorder loses at
    /// most its own record.
    fn sink() -> Option<Arc<SpanLog>> {
        if !enabled() {
            return None;
        }
        SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Installs a fresh sink retaining the last `capacity` spans and
    /// returns it; subsequent span calls on any thread record into it.
    pub fn install(capacity: usize) -> Arc<SpanLog> {
        let log = Arc::new(SpanLog::new(capacity));
        // hbc-allow: determinism (span timestamps are wall-clock metadata; simulated numbers never depend on them)
        ORIGIN.get_or_init(Instant::now);
        *SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&log));
        ENABLED.store(true, Ordering::Release);
        log
    }

    /// Detaches the sink (span calls become single-atomic-load no-ops
    /// again) and returns it for export.
    pub fn uninstall() -> Option<Arc<SpanLog>> {
        ENABLED.store(false, Ordering::Release);
        SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
    }

    /// `true` while a sink is installed.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Microseconds since the sink's monotonic origin (0 when disabled).
    pub fn now_us() -> u64 {
        if !enabled() {
            return 0;
        }
        match ORIGIN.get() {
            Some(origin) => u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Starts a new unit of work on this thread: allocates a request ID
    /// and resets the parent-span context. Returns the ID (0 when
    /// disabled).
    pub fn begin_request() -> u64 {
        let Some(log) = sink() else {
            return 0;
        };
        let request = log.next_request_id();
        CTX.with(|c| c.set((request, 0)));
        request
    }

    /// An open span: records itself into the sink when dropped and
    /// restores the parent-span context.
    pub struct SpanGuard {
        active: Option<Active>,
    }

    struct Active {
        log: Arc<SpanLog>,
        stage: &'static str,
        request: u64,
        span: u64,
        parent: u64,
        start_us: u64,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(a) = self.active.take() else {
                return;
            };
            let end = now_us();
            a.log.record(SpanRecord {
                request: a.request,
                span: a.span,
                parent: a.parent,
                stage: a.stage,
                start_us: a.start_us,
                dur_us: end.saturating_sub(a.start_us),
            });
            CTX.with(|c| c.set((a.request, a.parent)));
        }
    }

    /// Opens a span for `stage` under the current request and parent;
    /// the span records itself when the guard drops. Inert when disabled.
    pub fn enter(stage: &'static str) -> SpanGuard {
        let Some(log) = sink() else {
            return SpanGuard { active: None };
        };
        let (request, parent) = CTX.with(|c| c.get());
        let span = log.next_span_id();
        CTX.with(|c| c.set((request, span)));
        SpanGuard { active: Some(Active { log, stage, request, span, parent, start_us: now_us() }) }
    }

    /// Records a completed leaf span for `stage` that began at
    /// `start_us` (a prior [`now_us`] stamp) and ends now. No-op when
    /// disabled.
    pub fn record_since(stage: &'static str, start_us: u64) {
        let Some(log) = sink() else {
            return;
        };
        let (request, parent) = CTX.with(|c| c.get());
        let end = now_us();
        log.record(SpanRecord {
            request,
            span: log.next_span_id(),
            parent,
            stage,
            start_us,
            dur_us: end.saturating_sub(start_us),
        });
    }
}

#[cfg(not(feature = "span"))]
mod stub {
    use hbc_probe::SpanLog;
    use std::sync::Arc;

    /// Inert guard: the `span` feature is compiled out.
    pub struct SpanGuard;

    /// No-op `Drop`, so `drop(guard)` at a call site ends a stage
    /// identically whether or not the feature is compiled in (and is
    /// not a `clippy::drop_non_drop` finding).
    impl Drop for SpanGuard {
        fn drop(&mut self) {}
    }

    /// Feature off: returns an empty, zero-capacity log.
    #[inline]
    pub fn install(_capacity: usize) -> Arc<SpanLog> {
        Arc::new(SpanLog::new(0))
    }

    /// Feature off: nothing to detach.
    #[inline]
    pub fn uninstall() -> Option<Arc<SpanLog>> {
        None
    }

    /// Feature off: never enabled.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// Feature off: no clock.
    #[inline]
    pub fn now_us() -> u64 {
        0
    }

    /// Feature off: no request IDs.
    #[inline]
    pub fn begin_request() -> u64 {
        0
    }

    /// Feature off: inert guard, no record.
    #[inline]
    pub fn enter(_stage: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Feature off: no record.
    #[inline]
    pub fn record_since(_stage: &'static str, _start_us: u64) {}
}

#[cfg(all(test, feature = "span"))]
mod tests {
    use super::*;

    // The sink is process-global, so the scenarios share one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn install_record_uninstall_round_trip() {
        assert!(!enabled());
        assert_eq!(begin_request(), 0);
        record_since("exec.steal", 0); // disabled: must not record anywhere
        drop(enter("exec.run"));

        let log = install(64);
        assert!(enabled());
        let request = begin_request();
        assert!(request > 0);
        {
            let _outer = enter("sim.warm_up");
            let _inner = enter("sim.measured");
        }
        record_since("exec.steal", now_us());
        let records = log.snapshot();
        assert_eq!(records.len(), 3);
        // Inner span recorded first (drop order), nested under the outer.
        assert_eq!(records[0].stage, "sim.measured");
        assert_eq!(records[1].stage, "sim.warm_up");
        assert_eq!(records[0].parent, records[1].span);
        assert_eq!(records[1].parent, 0);
        assert_eq!(records[2].stage, "exec.steal");
        assert!(records.iter().all(|r| r.request == request));

        let detached = uninstall();
        assert!(detached.is_some_and(|l| l.len() == 3));
        assert!(!enabled());
        drop(enter("exec.run")); // disabled again: no panic, no record
    }
}
