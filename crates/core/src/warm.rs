//! Memoized functional cache warm-up.
//!
//! Every cell of a figure sweep warms its hierarchy with the same
//! `(benchmark, seed, cache_warm)` stream — only the memory configuration
//! differs — and generating that stream dominates the wall-clock of fast
//! sweeps. This module computes the stream once per thread and replays the
//! recorded addresses (plus a clone of the post-warm generator) into every
//! subsequent cell with the same key.
//!
//! Correctness relies on two properties:
//!
//! * `WorkloadGen::next_warm` is deterministic in `(benchmark, seed)`, so a
//!   clone of the post-warm generator is indistinguishable from one that
//!   advanced itself;
//! * `MemSystem::warm_touch` consumes only the address sequence, so
//!   replaying the recorded addresses touches the hierarchy exactly as the
//!   inline loop would.
//!
//! The memo is `thread_local`, never shared, and bounded (a small LRU), so
//! parallel experiment execution stays deterministic: results depend only
//! on each cell's key, never on which thread ran it or what ran before.

use std::cell::RefCell;

use hbc_workloads::{Benchmark, WorkloadGen};

/// Distinct warm streams retained per thread. Figure sweeps iterate
/// benchmark-major, so within one sweep a single entry is live at a time;
/// a few extra slots keep interleaved sweeps (e.g. fig5 then fig6 in one
/// process) warm too.
const WARM_LRU_CAPACITY: usize = 4;

struct WarmRecord {
    key: (Benchmark, u64, u64),
    /// The generator state after `cache_warm` warm draws.
    gen: WorkloadGen,
    /// Every address the warm stream touched, in order.
    addrs: Vec<u64>,
}

thread_local! {
    /// Recency-ordered memo: LRU at the front, MRU at the back.
    static WARM_LRU: RefCell<Vec<WarmRecord>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the post-warm generator and recorded address stream for
/// `(benchmark, seed, cache_warm)`, computing and memoizing them on a miss.
pub(crate) fn with_warm_state<R>(
    benchmark: Benchmark,
    seed: u64,
    cache_warm: u64,
    f: impl FnOnce(&WorkloadGen, &[u64]) -> R,
) -> R {
    let key = (benchmark, seed, cache_warm);
    WARM_LRU.with(|lru| {
        let mut lru = lru.borrow_mut();
        let record = match lru.iter().position(|r| r.key == key) {
            Some(i) => lru.remove(i),
            None => {
                let mut gen = WorkloadGen::new(benchmark, seed);
                let mut addrs = Vec::new();
                for _ in 0..cache_warm {
                    if let Some(addr) = gen.next_warm() {
                        addrs.push(addr);
                    }
                }
                WarmRecord { key, gen, addrs }
            }
        };
        let out = f(&record.gen, &record.addrs);
        if lru.len() == WARM_LRU_CAPACITY {
            lru.remove(0);
        }
        lru.push(record);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The memoized stream must be indistinguishable from the inline loop.
    #[test]
    fn replay_matches_inline_warm() {
        let mut inline_gen = WorkloadGen::new(Benchmark::Gcc, 7);
        let mut inline_addrs = Vec::new();
        for _ in 0..5_000 {
            if let Some(addr) = inline_gen.next_warm() {
                inline_addrs.push(addr);
            }
        }
        for _ in 0..3 {
            with_warm_state(Benchmark::Gcc, 7, 5_000, |gen, addrs| {
                assert_eq!(addrs, inline_addrs.as_slice());
                let mut a = gen.clone();
                let mut b = inline_gen.clone();
                for _ in 0..64 {
                    assert_eq!(a.next_inst(), b.next_inst());
                }
            });
        }
    }

    #[test]
    fn lru_evicts_oldest_key_only() {
        // Fill the memo past capacity with distinct seeds; every call must
        // still return the right stream for its own key.
        for seed in 0..(WARM_LRU_CAPACITY as u64 + 2) {
            with_warm_state(Benchmark::Li, seed, 200, |gen, addrs| {
                let mut fresh = WorkloadGen::new(Benchmark::Li, seed);
                let fresh_addrs: Vec<u64> = (0..200).filter_map(|_| fresh.next_warm()).collect();
                assert_eq!(addrs, fresh_addrs.as_slice());
                assert_eq!(gen.clone().next_inst(), fresh.next_inst());
            });
        }
        WARM_LRU.with(|lru| assert!(lru.borrow().len() <= WARM_LRU_CAPACITY));
    }
}
