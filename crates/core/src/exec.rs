//! `hbc-exec` — the deterministic parallel experiment engine.
//!
//! Every figure in the paper is a sweep of independent (benchmark ×
//! cache-organization) cells, and the cells are seed-paired: each one
//! builds its own `WorkloadGen` and `MemSystem` from nothing but the
//! configuration and the seed. That makes the sweeps embarrassingly
//! parallel *without changing a single simulated number*, provided the
//! engine never lets host scheduling order leak into the output:
//!
//! 1. **Cell independence** — a cell closure receives only its index and
//!    shares no mutable state with any other cell; all simulator state is
//!    constructed inside the cell from `(configuration, seed)`.
//! 2. **Fixed cell→index mapping** — drivers enumerate their cells in a
//!    fixed order *before* execution starts, so the meaning of index `i`
//!    never depends on which worker picks it up or when.
//! 3. **Index-ordered merge** — workers return `(index, result)` pairs and
//!    the engine writes each result into slot `index` of the output after
//!    all workers have joined. Nothing is merged in arrival order, and no
//!    `Mutex`/channel sits between the workers and the output (the
//!    `exec-merge` analyzer rule keeps it that way).
//!
//! Consequently [`run_cells`] with any worker count is bit-identical to the
//! serial loop `(0..cells).map(cell).collect()` — the property the
//! `--jobs 1` vs `--jobs N` golden tests pin down.
//!
//! The pool itself is dependency-free: scoped `std::thread` workers pull
//! cell indices from a shared atomic counter (dynamic self-scheduling, so
//! an expensive cell does not straggle a whole static chunk) and buffer
//! their results locally until the join.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used when a caller passes `jobs = 0` ("auto"): the
/// host's available parallelism. Scheduling — never results — depends on
/// this value.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `cells` independent cells, `cell(0), cell(1), ..`, on `jobs`
/// workers and returns the results in index order.
///
/// `jobs = 0` means [`default_jobs`]; `jobs = 1` is the plain serial loop.
/// The output is bit-identical for every `jobs` value: parallelism affects
/// wall-clock only.
///
/// # Example
///
/// ```
/// use hbc_core::exec::run_cells;
///
/// let serial = run_cells(1, 32, |i| i * i);
/// let parallel = run_cells(4, 32, |i| i * i);
/// assert_eq!(serial, parallel);
/// ```
pub fn run_cells<T, F>(jobs: usize, cells: usize, cell: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.min(cells.max(1));
    if jobs <= 1 {
        return (0..cells)
            .map(|i| {
                crate::spans::begin_request();
                let _run = crate::spans::enter("exec.run");
                cell(i)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let cell = &cell;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(cells);
    slots.resize_with(cells, || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let steal_start = crate::spans::now_us();
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        crate::spans::begin_request();
                        crate::spans::record_since("exec.steal", steal_start);
                        let run = crate::spans::enter("exec.run");
                        done.push((i, cell(i)));
                        drop(run);
                    }
                    done
                })
            })
            .collect();
        // Index-ordered merge: each worker's buffered (index, result) pairs
        // land in their slots only after the worker has finished; arrival
        // order is irrelevant because the slot is the cell index.
        crate::spans::begin_request();
        let _merge = crate::spans::enter("exec.merge");
        for worker in workers {
            match worker.join() {
                Ok(done) => {
                    for (i, value) in done {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let merged: Vec<T> = slots.into_iter().flatten().collect();
    debug_assert_eq!(merged.len(), cells, "every cell index is claimed exactly once");
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i, i.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for jobs in [0, 1, 2, 3, 8] {
            assert_eq!(run_cells(jobs, 100, f), run_cells(1, 100, f), "jobs={jobs}");
        }
    }

    #[test]
    fn results_are_index_ordered_under_skew() {
        // Make early cells the slowest so completion order inverts index
        // order; the merge must still be by index.
        let out = run_cells(4, 16, |i| {
            let mut x = 1u64;
            for _ in 0..(16 - i) * 200_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, x != 0)
        });
        assert_eq!(out.len(), 16);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn empty_and_single_cell() {
        assert_eq!(run_cells(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_cells(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_workers_than_cells() {
        assert_eq!(run_cells(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn simulation_cells_are_bit_identical() {
        use crate::{Benchmark, SimBuilder};
        let run = |jobs| {
            run_cells(jobs, 4, |i| {
                SimBuilder::new(Benchmark::Li)
                    .cache_size_kib(8 << i)
                    .instructions(3_000)
                    .warmup(500)
                    .cache_warm(20_000)
                    .run()
                    .ipc()
            })
        };
        assert_eq!(run(1), run(4));
    }
}
