//! Execution-time machinery for the Figure 9 study.
//!
//! IPC alone ignores the processor cycle time; the paper's real metric is
//! application execution time. As the cycle time (in FO4) shrinks, the
//! fixed-wall-clock second-level cache (50 ns) and main memory (300 ns)
//! take more processor cycles, and smaller primary caches (or deeper cache
//! pipelines) must be used — this module computes those rescalings.

use hbc_timing::{Fo4, Nanoseconds, Technology};

/// Wall-clock latency of the off-chip L2 (50 ns, ten cycles at 200 MHz).
pub const L2_NS: f64 = 50.0;
/// Wall-clock latency of main memory (300 ns, sixty cycles at 200 MHz).
pub const MEM_NS: f64 = 300.0;

/// Second-level and memory latencies in processor cycles at `cycle`.
///
/// # Example
///
/// ```
/// use hbc_core::exectime::scaled_memory_cycles;
/// use hbc_timing::{Fo4, Technology};
///
/// let tech = Technology::default();
/// // At the nominal 25 FO4 (5 ns) cycle: the paper's 10 and 60 cycles.
/// assert_eq!(scaled_memory_cycles(Fo4::new(25.0), &tech), (10, 60));
/// // At 10 FO4 (2 ns) the same parts are 25 and 150 cycles away.
/// assert_eq!(scaled_memory_cycles(Fo4::new(10.0), &tech), (25, 150));
/// ```
pub fn scaled_memory_cycles(cycle: Fo4, tech: &Technology) -> (u64, u64) {
    let cycle_ns = tech.cycle_ns(cycle);
    (Nanoseconds::new(L2_NS).to_cycles(cycle_ns), Nanoseconds::new(MEM_NS).to_cycles(cycle_ns))
}

/// Execution time per instruction in nanoseconds, given a measured
/// cycles-per-instruction and the cycle time.
pub fn time_per_instruction_ns(
    cycles: u64,
    instructions: u64,
    cycle: Fo4,
    tech: &Technology,
) -> f64 {
    assert!(instructions > 0, "need a non-empty measurement window");
    cycles as f64 / instructions as f64 * tech.cycle_ns(cycle).get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_anchors() {
        let tech = Technology::default();
        assert_eq!(scaled_memory_cycles(Fo4::new(25.0), &tech), (10, 60));
    }

    #[test]
    fn faster_clocks_stretch_memory() {
        let tech = Technology::default();
        let (l2_a, mem_a) = scaled_memory_cycles(Fo4::new(30.0), &tech);
        let (l2_b, mem_b) = scaled_memory_cycles(Fo4::new(10.0), &tech);
        assert!(l2_b > l2_a && mem_b > mem_a);
    }

    #[test]
    fn time_per_instruction() {
        let tech = Technology::default();
        // CPI 0.5 at 25 FO4 (5 ns) = 2.5 ns per instruction.
        let t = time_per_instruction_ns(50_000, 100_000, Fo4::new(25.0), &tech);
        assert!((t - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_instructions_rejected() {
        let _ = time_per_instruction_ns(1, 0, Fo4::new(25.0), &Technology::default());
    }
}
