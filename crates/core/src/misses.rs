//! Fast functional miss-rate sweeps (paper Figure 3).
//!
//! Figure 3 only needs cache contents, not timing, so this module replays
//! the memory references of a workload through a bare tag array — orders of
//! magnitude faster than the cycle-level simulator and therefore usable
//! with longer streams.

use hbc_mem::CacheArray;
use hbc_workloads::{Benchmark, WorkloadGen};

/// Misses per instruction of `benchmark` for a single-ported two-way
/// 32-byte-line cache of each size in `sizes_kib`, over `instructions`
/// generated instructions.
///
/// # Example
///
/// ```
/// use hbc_core::{miss_curve, Benchmark};
///
/// let curve = miss_curve(Benchmark::Gcc, &[4, 64], 20_000, 1);
/// assert!(curve[0] > curve[1], "bigger caches miss less");
/// ```
pub fn miss_curve(
    benchmark: Benchmark,
    sizes_kib: &[u64],
    instructions: u64,
    seed: u64,
) -> Vec<f64> {
    sizes_kib
        .iter()
        .map(|&kib| misses_per_instruction(benchmark, kib, instructions, seed))
        .collect()
}

/// Misses per instruction for one cache size (two-way, 32-byte lines, with
/// a one-eighth warm-up excluded from the count).
pub fn misses_per_instruction(
    benchmark: Benchmark,
    size_kib: u64,
    instructions: u64,
    seed: u64,
) -> f64 {
    let mut cache = CacheArray::new(size_kib << 10, 2, 32);
    let mut gen = WorkloadGen::new(benchmark, seed);
    let warmup = instructions / 8;
    let mut misses = 0u64;
    // Only addresses matter here; the warm fast path produces them with
    // full draw parity, so the counts match a `next_inst` replay exactly.
    for i in 0..(warmup + instructions) {
        if let Some(addr) = gen.next_warm() {
            let hit = cache.touch(addr);
            if !hit && i >= warmup {
                misses += 1;
            }
        }
    }
    misses as f64 / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_decrease_overall() {
        for b in [Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Database] {
            let c = miss_curve(b, &[4, 1024], 60_000, 1);
            assert!(c[0] > c[1], "{b}: {c:?}");
        }
    }

    #[test]
    fn integer_benchmarks_miss_least() {
        let gcc = misses_per_instruction(Benchmark::Gcc, 32, 80_000, 1);
        let db = misses_per_instruction(Benchmark::Database, 32, 80_000, 1);
        assert!(db > gcc, "database ({db}) must out-miss gcc ({gcc})");
    }

    #[test]
    fn deterministic() {
        let a = misses_per_instruction(Benchmark::Li, 16, 30_000, 9);
        let b = misses_per_instruction(Benchmark::Li, 16, 30_000, 9);
        assert_eq!(a, b);
    }
}
