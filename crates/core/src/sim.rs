//! Simulation configuration and runner.

use hbc_cpu::{Core, CpuConfig, RunStats};
use hbc_mem::{MemConfig, MemStats, MemSystem, PortModel};
use hbc_probe::{ProbeExport, ProbeRegistry};
use hbc_workloads::{Benchmark, BenchmarkSpec, WorkloadGen};

/// Default instructions simulated per configuration.
pub const DEFAULT_INSTRUCTIONS: u64 = 200_000;
/// Default warm-up instructions (excluded from statistics).
pub const DEFAULT_WARMUP: u64 = 10_000;
/// Default instructions used to functionally pre-warm the caches before
/// cycle-accurate simulation (emulating the steady state of the paper's
/// 100M+-instruction traces).
pub const DEFAULT_CACHE_WARM: u64 = 2_000_000;

/// Builder for one simulation: a benchmark, a memory configuration, and a
/// measurement window.
///
/// # Example
///
/// ```
/// use hbc_core::{Benchmark, SimBuilder};
/// use hbc_mem::PortModel;
///
/// let result = SimBuilder::new(Benchmark::Gcc)
///     .cache_size_kib(32)
///     .hit_cycles(2)
///     .ports(PortModel::Duplicate)
///     .line_buffer(true)
///     .instructions(10_000)
///     .warmup(2_000)
///     .run();
/// assert!(result.ipc() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    benchmark: Benchmark,
    spec_override: Option<BenchmarkSpec>,
    cache_kib: u64,
    hit_cycles: u64,
    ports: PortModel,
    line_buffer: bool,
    dram_hit: Option<u64>,
    l2_hit_override: Option<u64>,
    mem_latency_override: Option<u64>,
    instructions: u64,
    warmup: u64,
    cache_warm: u64,
    seed: u64,
    cpu: CpuConfig,
    probes: bool,
    trace_window: u64,
    event_horizon: bool,
}

impl SimBuilder {
    /// Starts a simulation of `benchmark` with the paper's defaults: 32 KB
    /// two-ideal-port single-cycle cache, no line buffer, 200 K + 30 K
    /// instructions.
    pub fn new(benchmark: Benchmark) -> Self {
        SimBuilder {
            benchmark,
            spec_override: None,
            cache_kib: 32,
            hit_cycles: 1,
            ports: PortModel::Ideal(2),
            line_buffer: false,
            dram_hit: None,
            l2_hit_override: None,
            mem_latency_override: None,
            instructions: DEFAULT_INSTRUCTIONS,
            warmup: DEFAULT_WARMUP,
            cache_warm: DEFAULT_CACHE_WARM,
            seed: 42,
            cpu: CpuConfig::paper(),
            probes: false,
            trace_window: 0,
            event_horizon: true,
        }
    }

    /// Replaces the benchmark's stock spec (custom workloads).
    pub fn spec(mut self, spec: BenchmarkSpec) -> Self {
        self.spec_override = Some(spec);
        self
    }

    /// Primary cache capacity in KiB.
    pub fn cache_size_kib(mut self, kib: u64) -> Self {
        self.cache_kib = kib;
        self
    }

    /// Pipelined hit time in cycles (1–3 in the study).
    pub fn hit_cycles(mut self, cycles: u64) -> Self {
        self.hit_cycles = cycles;
        self
    }

    /// Port structure.
    pub fn ports(mut self, ports: PortModel) -> Self {
        self.ports = ports;
        self
    }

    /// Enables or disables the 32-entry line buffer.
    pub fn line_buffer(mut self, enabled: bool) -> Self {
        self.line_buffer = enabled;
        self
    }

    /// Switches to the DRAM-cache memory system with the given DRAM hit
    /// time (6–8); the primary cache becomes the 16 KB row-buffer cache and
    /// `cache_size_kib`/`hit_cycles`/`ports` are ignored.
    pub fn dram_cache(mut self, dram_hit_cycles: u64) -> Self {
        self.dram_hit = Some(dram_hit_cycles);
        self
    }

    /// Overrides the L2 hit time in cycles (execution-time study).
    pub fn l2_hit_cycles(mut self, cycles: u64) -> Self {
        self.l2_hit_override = Some(cycles);
        self
    }

    /// Overrides the memory latency in cycles (execution-time study).
    pub fn mem_latency(mut self, cycles: u64) -> Self {
        self.mem_latency_override = Some(cycles);
        self
    }

    /// Measured instruction count.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Warm-up instruction count (excluded from statistics).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Instructions used to functionally pre-warm the caches (no timing).
    pub fn cache_warm(mut self, n: u64) -> Self {
        self.cache_warm = n;
        self
    }

    /// Workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Processor configuration.
    pub fn cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpu = cpu;
        self
    }

    /// Exports a [`ProbeRegistry`] snapshot with the result (`--probes`).
    /// The registry is built after the run, so enabling it never perturbs
    /// the simulation; the per-cycle stall and issue-width probes carry
    /// data only when the `probe` feature is compiled in.
    pub fn probes(mut self, enabled: bool) -> Self {
        self.probes = enabled;
        self
    }

    /// Retains the last `events` pipeline/cache events as a JSONL trace
    /// (`--trace-window N`; zero disables). Events are recorded only in
    /// `probe` builds.
    pub fn trace_window(mut self, events: u64) -> Self {
        self.trace_window = events;
        self
    }

    /// Enables or disables event-horizon cycle skipping (on by default).
    /// Skipping fast-forwards through provably idle stall spans; every
    /// exported statistic is bit-identical either way — disabling it only
    /// forces the reference tick-by-tick loop (used by the equivalence
    /// property tests).
    pub fn event_horizon(mut self, enabled: bool) -> Self {
        self.event_horizon = enabled;
        self
    }

    /// The memory configuration this builder will run.
    pub fn mem_config(&self) -> MemConfig {
        let mut cfg = match self.dram_hit {
            Some(hit) => MemConfig::paper_dram(hit),
            None => MemConfig::paper_sram(self.cache_kib << 10, self.hit_cycles, self.ports),
        };
        if self.line_buffer {
            cfg = cfg.with_line_buffer();
        }
        if let Some(l2) = self.l2_hit_override {
            cfg = cfg.with_l2_hit_cycles(l2);
        }
        if let Some(m) = self.mem_latency_override {
            cfg = cfg.with_mem_latency(m);
        }
        cfg
    }

    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (the experiment drivers only
    /// construct valid ones).
    pub fn run(&self) -> SimResult {
        let mut mem = MemSystem::new(self.mem_config()).expect("valid memory configuration");
        // Functional pre-warming: bring the hierarchy to the steady state a
        // trace as long as the paper's would reach, then measure. The warm
        // fast path advances the generator with full draw parity while
        // skipping instruction assembly, so the measured stream is the one
        // `next_inst` alone would produce. Stock-benchmark warm streams are
        // memoized per thread (`crate::warm`): every cell of a sweep shares
        // the same stream, only the hierarchy it touches differs.
        let mut core = {
            let _span = crate::spans::enter("sim.warm_up");
            let gen = match &self.spec_override {
                Some(spec) => {
                    let mut gen = WorkloadGen::from_spec(spec.clone(), self.seed);
                    for _ in 0..self.cache_warm {
                        if let Some(addr) = gen.next_warm() {
                            mem.warm_touch(addr);
                        }
                    }
                    gen
                }
                None => crate::warm::with_warm_state(
                    self.benchmark,
                    self.seed,
                    self.cache_warm,
                    |gen, addrs| {
                        for &addr in addrs {
                            mem.warm_touch(addr);
                        }
                        gen.clone()
                    },
                ),
            };
            let mut core = Core::new(self.cpu.clone(), mem, gen).expect("valid CPU configuration");
            core.set_event_horizon(self.event_horizon);
            if self.trace_window > 0 {
                core.enable_trace(self.trace_window as usize);
            }
            if self.warmup > 0 {
                core.run(self.warmup);
            }
            core
        };
        let run = {
            let _span = crate::spans::enter("sim.measured");
            core.run(self.instructions)
        };
        let probes = self.probes.then(|| {
            let mut reg = ProbeRegistry::new();
            run.export_probes(&mut reg);
            core.mem().export_probes(&mut reg);
            reg
        });
        let trace = core.trace_jsonl();
        SimResult {
            benchmark: self.benchmark,
            run,
            mem: core.mem().stats().clone(),
            probes,
            trace,
            skipped_cycles: core.skipped_cycles(),
            sim_cycles: core.now(),
        }
    }
}

/// Outcome of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    benchmark: Benchmark,
    run: RunStats,
    mem: MemStats,
    probes: Option<ProbeRegistry>,
    trace: Option<String>,
    /// Cycles fast-forwarded by the event-horizon engine over the whole run
    /// (warm-up included). Diagnostic only: deliberately not part of
    /// [`RunStats`] or the probe export, which stay bit-identical whether
    /// skipping ran or not.
    skipped_cycles: u64,
    /// Total cycles simulated (warm-up included), skipped or ticked.
    sim_cycles: u64,
}

impl SimResult {
    /// The simulated benchmark.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Instructions per cycle over the measured window.
    pub fn ipc(&self) -> f64 {
        self.run.ipc()
    }

    /// Processor statistics.
    pub fn run(&self) -> &RunStats {
        &self.run
    }

    /// Memory statistics (cumulative, including warm-up).
    pub fn mem(&self) -> &MemStats {
        &self.mem
    }

    /// The probe registry snapshot, when requested via
    /// [`SimBuilder::probes`].
    pub fn probes(&self) -> Option<&ProbeRegistry> {
        self.probes.as_ref()
    }

    /// The retained cycle trace as JSON lines, when requested via
    /// [`SimBuilder::trace_window`].
    pub fn trace_jsonl(&self) -> Option<&str> {
        self.trace.as_deref()
    }

    /// Cycles the event-horizon engine fast-forwarded instead of ticking.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Fraction of simulated cycles that were skipped rather than ticked
    /// (zero when skipping is disabled or the run never stalled).
    pub fn skip_rate(&self) -> f64 {
        self.skipped_cycles as f64 / self.sim_cycles.max(1) as f64
    }

    /// Primary-cache load misses per measured instruction.
    pub fn misses_per_instruction(&self) -> f64 {
        // Memory stats are cumulative; scale by the measured fraction.
        self.mem.l1_load_misses as f64 / (self.run.instructions.max(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(b: Benchmark) -> SimBuilder {
        SimBuilder::new(b).instructions(40_000).warmup(8_000)
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(Benchmark::Gcc).run();
        let b = quick(Benchmark::Gcc).run();
        assert_eq!(a.ipc(), b.ipc());
        assert_eq!(a.mem(), b.mem());
    }

    #[test]
    fn different_seeds_vary_slightly() {
        let a = quick(Benchmark::Gcc).seed(1).run();
        let b = quick(Benchmark::Gcc).seed(2).run();
        assert_ne!(a.ipc(), b.ipc());
        let rel = (a.ipc() - b.ipc()).abs() / a.ipc();
        assert!(rel < 0.2, "seeds should not change the story: {} vs {}", a.ipc(), b.ipc());
    }

    #[test]
    fn larger_cache_never_much_worse() {
        let small = quick(Benchmark::Gcc).cache_size_kib(4).run();
        let large = quick(Benchmark::Gcc).cache_size_kib(256).run();
        assert!(large.ipc() > small.ipc() * 0.95, "{} vs {}", small.ipc(), large.ipc());
    }

    #[test]
    fn dram_builder_selects_row_cache() {
        let r = quick(Benchmark::Gcc).dram_cache(6).line_buffer(true).run();
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn probes_do_not_perturb_results() {
        let base = quick(Benchmark::Li).run();
        let probed = quick(Benchmark::Li).probes(true).trace_window(128).run();
        assert_eq!(base.ipc(), probed.ipc(), "observability must not change the simulation");
        assert_eq!(base.mem(), probed.mem());
        assert!(base.probes().is_none());
        let reg = probed.probes().expect("registry requested");
        assert_eq!(reg.get("cpu.retire.instructions"), Some(probed.run().instructions));
        assert_eq!(reg.get("mem.l1.load_misses"), Some(probed.mem().l1_load_misses));
        // Shim equivalence: the legacy getters and the registry read the
        // same underlying fields.
        assert_eq!(reg.get("mem.lb.hits"), Some(probed.mem().lb_hits));
        #[cfg(feature = "probe")]
        {
            assert_eq!(reg.get("cpu.stall.commit").map(|c| c > 0), Some(true));
            assert!(probed.trace_jsonl().is_some_and(|t| !t.is_empty()));
        }
    }

    #[test]
    fn event_horizon_skipping_is_invisible() {
        let ticked = quick(Benchmark::Gcc).dram_cache(7).event_horizon(false).run();
        let skipped = quick(Benchmark::Gcc).dram_cache(7).run();
        assert_eq!(ticked.run(), skipped.run(), "skipping must not change processor stats");
        assert_eq!(ticked.mem(), skipped.mem(), "skipping must not change memory stats");
        assert_eq!(ticked.skipped_cycles(), 0);
        assert_eq!(ticked.sim_cycles, skipped.sim_cycles);
        assert!(skipped.skipped_cycles() > 0, "a DRAM-cache run must skip stall spans");
        assert!(skipped.skip_rate() > 0.0 && skipped.skip_rate() < 1.0);
    }

    #[test]
    fn builder_overrides_apply() {
        let b =
            SimBuilder::new(Benchmark::Li).l2_hit_cycles(25).mem_latency(150).cache_size_kib(64);
        let cfg = b.mem_config();
        assert_eq!(cfg.l2.hit_cycles(), 25);
        assert_eq!(cfg.mem_latency, 150);
        assert_eq!(cfg.l1.size_bytes, 64 << 10);
    }
}
