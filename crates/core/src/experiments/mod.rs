//! One driver per table and figure of the paper.
//!
//! Each submodule exposes a `run(&ExpParams) -> Table`-style entry point
//! that regenerates the corresponding result:
//!
//! | paper item | module | content |
//! |---|---|---|
//! | Figure 1 | [`fig1`] | SRAM access times, single-ported vs 8-way banked |
//! | Table 1  | [`table1`] | the nine benchmarks |
//! | Table 2  | [`table2`] | mode/instruction-mix percentages, spec vs measured |
//! | Figure 3 | [`fig3`] | misses per instruction vs cache size |
//! | Figure 4 | [`fig4`] | IPC of ideal multi-ported multi-cycle caches |
//! | Figure 5 | [`fig5`] | IPC of banked multi-cycle caches |
//! | Figure 6 | [`fig6`] | line buffer on banked and duplicate caches |
//! | Figure 7 | [`fig7`] | the on-chip DRAM cache |
//! | Figure 8 | [`fig8`] | IPC vs cache size for the leading organizations |
//! | Figure 9 | [`fig9`] | normalized execution time vs processor cycle time |

pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use hbc_workloads::Benchmark;

/// Shared experiment parameters: how long to simulate and which benchmarks
/// to cover.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpParams {
    /// Measured instructions per configuration.
    pub instructions: u64,
    /// Cycle-level warm-up instructions.
    pub warmup: u64,
    /// Functional cache pre-warm instructions.
    pub cache_warm: u64,
    /// Workload seed (the same seed across configurations makes every
    /// comparison paired).
    pub seed: u64,
    /// Benchmarks to simulate.
    pub benchmarks: Vec<Benchmark>,
    /// Print a probe-registry breakdown next to each figure (`--probes`).
    pub probes: bool,
    /// Retain the last N pipeline/cache events per run (`--trace-window`);
    /// zero disables tracing.
    pub trace_window: u64,
    /// Worker threads for the experiment sweeps (`--jobs N`): `0` means
    /// the host's available parallelism, `1` the serial path. Results are
    /// bit-identical for every value — only wall-clock changes.
    pub jobs: usize,
    /// Write per-phase span records to this JSONL file after the run
    /// (`--spans out.jsonl`); `None` disables span collection. Spans only
    /// carry data when the `span` cargo feature is compiled in, and never
    /// change the simulated numbers either way.
    pub spans_out: Option<std::path::PathBuf>,
}

impl ExpParams {
    /// Full fidelity: 200 K measured instructions, all nine benchmarks.
    pub fn full() -> Self {
        ExpParams {
            instructions: 200_000,
            warmup: 20_000,
            cache_warm: 2_000_000,
            seed: 42,
            benchmarks: Benchmark::ALL.to_vec(),
            probes: false,
            trace_window: 0,
            jobs: 0,
            spans_out: None,
        }
    }

    /// Standard fidelity (the default for the figure binaries): 60 K
    /// measured instructions, all nine benchmarks.
    pub fn standard() -> Self {
        ExpParams { instructions: 60_000, warmup: 10_000, ..ExpParams::full() }
    }

    /// Quick smoke-test fidelity: short windows, representatives only.
    pub fn fast() -> Self {
        ExpParams {
            instructions: 15_000,
            warmup: 3_000,
            cache_warm: 400_000,
            benchmarks: Benchmark::REPRESENTATIVES.to_vec(),
            ..ExpParams::full()
        }
    }

    /// Restricts the run to the three representative benchmarks.
    pub fn representatives(mut self) -> Self {
        self.benchmarks = Benchmark::REPRESENTATIVES.to_vec();
        self
    }

    /// Runs `cells` independent experiment cells on this preset's worker
    /// count ([`crate::exec::run_cells`] with `self.jobs`), returning the
    /// results in index order. Every experiment driver routes its sweep
    /// through here, so `--jobs` applies uniformly.
    pub fn run_cells<T, F>(&self, cells: usize, cell: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        crate::exec::run_cells(self.jobs, cells, cell)
    }

    /// Builds a [`crate::SimBuilder`] carrying these parameters.
    pub fn sim(&self, benchmark: Benchmark) -> crate::SimBuilder {
        crate::SimBuilder::new(benchmark)
            .instructions(self.instructions)
            .warmup(self.warmup)
            .cache_warm(self.cache_warm)
            .seed(self.seed)
            .probes(self.probes)
            .trace_window(self.trace_window)
    }
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cost() {
        let fast = ExpParams::fast();
        let std = ExpParams::standard();
        let full = ExpParams::full();
        assert!(fast.instructions < std.instructions);
        assert!(std.instructions < full.instructions);
        assert_eq!(fast.benchmarks.len(), 3);
        assert_eq!(full.benchmarks.len(), 9);
    }

    #[test]
    fn sim_carries_params() {
        let p = ExpParams::fast();
        let result = p.sim(Benchmark::Li).run();
        assert!(result.ipc() > 0.0);
    }
}
