//! **Figure 8** — IPC versus cache size for duplicate and eight-way banked
//! pipelined caches with a line buffer, plus the 4 MB DRAM-cache point,
//! and the average over the benchmark set.

use hbc_mem::PortModel;
use hbc_timing::CacheSize;

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// One (organization, hit time) series of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Series {
    /// Port organization.
    pub ports: PortModel,
    /// Pipelined hit time.
    pub hit: u64,
}

/// The six SRAM series of the figure.
pub fn series() -> Vec<Series> {
    let mut out = Vec::new();
    for hit in super::fig4::HITS {
        out.push(Series { ports: PortModel::Duplicate, hit });
    }
    for hit in super::fig4::HITS {
        out.push(Series { ports: PortModel::Banked(8), hit });
    }
    out
}

/// Regenerates Figure 8 for every benchmark in `params` plus the average:
/// one row per (benchmark, series), one column per cache size, plus the
/// 6-cycle 4 MB DRAM-cache datapoint. All configurations include the line
/// buffer.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig8, ExpParams};
///
/// let mut p = ExpParams::fast();
/// p.benchmarks.truncate(1);
/// let t = fig8::run(&p);
/// assert_eq!(t.len(), 2 * 6); // benchmark + average, 6 series each
/// ```
pub fn run(params: &ExpParams) -> Table {
    let sizes: Vec<u64> = CacheSize::sram_sweep().iter().map(|s| s.kib()).collect();
    let mut headers = vec!["benchmark".to_string(), "series".to_string()];
    headers.extend(sizes.iter().map(|k| format!("{k}K")));
    headers.push("4M DRAM 6~".to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 8: IPC vs cache size, duplicate & 8-way banked pipelined caches with line buffer",
        &header_refs,
    );

    let label = |s: &Series| {
        let org = match s.ports {
            PortModel::Duplicate => "dup",
            PortModel::Banked(8) => "8bank",
            _ => "other",
        };
        format!("{}~ {org}", s.hit)
    };

    // One cell per (benchmark, point): index bi * stride selects the
    // benchmark, offset 0 is its DRAM-cache point, offsets 1.. are the
    // (series, size) grid in series-major order.
    let all = series();
    let stride = 1 + all.len() * sizes.len();
    let ipcs = params.run_cells(params.benchmarks.len() * stride, |i| {
        let b = params.benchmarks[i / stride];
        match (i % stride).checked_sub(1) {
            None => params.sim(b).dram_cache(6).line_buffer(true).run().ipc(),
            Some(j) => {
                let s = &all[j / sizes.len()];
                params
                    .sim(b)
                    .cache_size_kib(sizes[j % sizes.len()])
                    .hit_cycles(s.hit)
                    .ports(s.ports)
                    .line_buffer(true)
                    .run()
                    .ipc()
            }
        }
    });
    let mut avg: Vec<Vec<f64>> = vec![vec![0.0; sizes.len()]; all.len()];
    let mut avg_dram = 0.0;
    for (bi, &b) in params.benchmarks.iter().enumerate() {
        let dram = ipcs[bi * stride];
        avg_dram += dram / params.benchmarks.len() as f64;
        for (si, s) in all.iter().enumerate() {
            let mut row = vec![b.name().to_string(), label(s)];
            for ki in 0..sizes.len() {
                let ipc = ipcs[bi * stride + 1 + si * sizes.len() + ki];
                avg[si][ki] += ipc / params.benchmarks.len() as f64;
                row.push(fmt_f(ipc, 3));
            }
            row.push(if s.hit == 1 { fmt_f(dram, 3) } else { "-".to_string() });
            table.push(row);
        }
    }
    for (si, s) in all.iter().enumerate() {
        let mut row = vec!["average".to_string(), label(s)];
        row.extend(avg[si].iter().map(|i| fmt_f(*i, 3)));
        row.push(if s.hit == 1 { fmt_f(avg_dram, 3) } else { "-".to_string() });
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn v(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn ipc_grows_with_cache_size_for_gcc() {
        let mut p = ExpParams::fast();
        p.instructions = 10_000;
        p.benchmarks = vec![Benchmark::Gcc];
        let t = run(&p);
        // First row: duplicate 1~; 4K column vs 1M column.
        let small = v(&t.rows()[0][2]);
        let large = v(&t.rows()[0][10]);
        assert!(large > small, "gcc IPC should grow with capacity: {small} -> {large}");
    }

    #[test]
    fn average_rows_present() {
        let mut p = ExpParams::fast();
        p.instructions = 6_000;
        p.warmup = 1_000;
        p.benchmarks = vec![Benchmark::Li];
        let t = run(&p);
        assert!(t.rows().iter().any(|r| r[0] == "average"));
        assert_eq!(t.len(), 12);
    }
}
