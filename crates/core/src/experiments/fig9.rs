//! **Figure 9** — normalized execution time versus processor cycle time
//! for multi-cycle duplicate caches with a line buffer.
//!
//! For each processor cycle time the largest duplicate cache buildable at
//! hit times of one, two and three cycles is selected from the Figure 1
//! access-time curves, the 50 ns L2 and 300 ns memory are rescaled into
//! cycles, and the execution time is measured and normalized to the paper's
//! reference point: a 10 FO4 processor with a 32 KB three-cycle pipelined
//! cache.

use hbc_mem::PortModel;
use hbc_timing::{pipeline, AccessTimeModel, CacheSize, Fo4, PortStructure, Technology};

use crate::exectime::{scaled_memory_cycles, time_per_instruction_ns};
use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};
use crate::Benchmark;

/// The cycle times swept by the figure (FO4).
pub const CYCLE_TIMES: [f64; 9] = [10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0];

/// One point of a Figure 9 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Point {
    /// Processor cycle time.
    pub cycle_fo4: f64,
    /// Cache pipeline depth (hit time in cycles).
    pub depth: u64,
    /// Largest duplicate cache buildable, if any.
    pub cache: Option<CacheSize>,
    /// Execution time normalized to the 10 FO4 / 32 KB / 3-cycle baseline.
    pub normalized_time: Option<f64>,
}

/// Computes the Figure 9 curves for one benchmark.
pub fn curves(benchmark: Benchmark, params: &ExpParams) -> Vec<Fig9Point> {
    let model = AccessTimeModel::default();
    let tech = Technology::default();
    // Cache selection is cheap; enumerate the sweep serially so every
    // simulation cell has a fixed index before execution starts.
    let mut pts = Vec::new();
    for &cycle in &CYCLE_TIMES {
        for depth in 1..=3u64 {
            let cache = pipeline::max_cache_size(
                &model,
                PortStructure::Duplicate,
                Fo4::new(cycle),
                &tech,
                depth as u32,
            );
            pts.push((cycle, depth, cache));
        }
    }
    // Cell 0 is the normalization baseline, cells 1.. the sweep points
    // (unbuildable caches simulate nothing and yield `None`).
    let times = params.run_cells(1 + pts.len(), |i| match i.checked_sub(1) {
        None => Some(time_at(benchmark, params, Fo4::new(10.0), 3, CacheSize::from_kib(32), &tech)),
        Some(j) => {
            let (cycle, depth, cache) = pts[j];
            cache.map(|c| time_at(benchmark, params, Fo4::new(cycle), depth, c, &tech))
        }
    });
    let baseline = times[0].unwrap_or(f64::NAN);
    pts.iter()
        .zip(&times[1..])
        .map(|(&(cycle_fo4, depth, cache), t)| Fig9Point {
            cycle_fo4,
            depth,
            cache,
            normalized_time: t.map(|t| t / baseline),
        })
        .collect()
}

fn time_at(
    benchmark: Benchmark,
    params: &ExpParams,
    cycle: Fo4,
    depth: u64,
    cache: CacheSize,
    tech: &Technology,
) -> f64 {
    let (l2, mem) = scaled_memory_cycles(cycle, tech);
    let result = params
        .sim(benchmark)
        .cache_size_kib(cache.kib())
        .hit_cycles(depth)
        .ports(PortModel::Duplicate)
        .line_buffer(true)
        .l2_hit_cycles(l2)
        .mem_latency(mem)
        .run();
    time_per_instruction_ns(result.run().cycles, result.run().instructions, cycle, tech)
}

/// Regenerates Figure 9 as a table: one row per (benchmark, depth), one
/// column per cycle time, each cell `normalized-time(cache-size)`, plus
/// average rows over the benchmark set.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig9, ExpParams};
///
/// let mut p = ExpParams::fast();
/// p.instructions = 5_000;
/// p.warmup = 1_000;
/// p.benchmarks.truncate(1);
/// let t = fig9::run(&p);
/// assert_eq!(t.len(), 6); // (benchmark + average) x 3 depths
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut headers = vec!["benchmark".to_string(), "hit".to_string()];
    headers.extend(CYCLE_TIMES.iter().map(|c| format!("{c} FO4")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 9: normalized execution time vs cycle time, duplicate caches + line buffer",
        &header_refs,
    );
    let n = params.benchmarks.len() as f64;
    // avg[depth-1][cycle index] accumulates normalized times; count tracks
    // buildable points so partially-buildable cells average correctly.
    let mut avg = vec![vec![(0.0f64, 0u32); CYCLE_TIMES.len()]; 3];
    for &b in &params.benchmarks {
        let pts = curves(b, params);
        for depth in 1..=3u64 {
            let mut row = vec![b.name().to_string(), format!("{depth}~")];
            for (ci, _) in CYCLE_TIMES.iter().enumerate() {
                let p = &pts[ci * 3 + (depth as usize - 1)];
                match (p.cache, p.normalized_time) {
                    (Some(c), Some(t)) => {
                        avg[depth as usize - 1][ci].0 += t;
                        avg[depth as usize - 1][ci].1 += 1;
                        row.push(format!("{}({c})", fmt_f(t, 2)));
                    }
                    _ => row.push("-".to_string()),
                }
            }
            table.push(row);
        }
    }
    for depth in 1..=3usize {
        let mut row = vec!["average".to_string(), format!("{depth}~")];
        for (ci, _) in CYCLE_TIMES.iter().enumerate() {
            let (sum, count) = avg[depth - 1][ci];
            if count as f64 == n && n > 0.0 {
                row.push(fmt_f(sum / n, 2));
            } else {
                row.push("-".to_string());
            }
        }
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpParams {
        let mut p = ExpParams::fast();
        p.instructions = 6_000;
        p.warmup = 1_000;
        p
    }

    #[test]
    fn cache_selection_matches_the_paper() {
        let params = quick();
        let pts = curves(Benchmark::Gcc, &params);
        let find = |cycle: f64, depth: u64| {
            pts.iter().find(|p| p.cycle_fo4 == cycle && p.depth == depth).unwrap().cache
        };
        // 30 FO4 accommodates a one-cycle 64 KB cache (29 FO4 access).
        assert_eq!(find(30.0, 1), Some(CacheSize::from_kib(64)));
        // 25 FO4: 8K one-cycle, 512K two-cycle, 1M three-cycle.
        assert_eq!(find(25.0, 1), Some(CacheSize::from_kib(8)));
        assert_eq!(find(25.0, 2), Some(CacheSize::from_kib(512)));
        assert_eq!(find(25.0, 3), Some(CacheSize::from_mib(1)));
        // Below 24 FO4 no single-cycle cache is buildable at all.
        assert_eq!(find(20.0, 1), None);
        // At 10 FO4 at least three cycles of pipelining are required.
        assert_eq!(find(10.0, 2), None);
        assert!(find(10.0, 3).is_some());
    }

    #[test]
    fn faster_clocks_reduce_execution_time_at_fixed_depth() {
        let params = quick();
        let pts = curves(Benchmark::Tomcatv, &params);
        let t = |cycle: f64, depth: u64| {
            pts.iter().find(|p| p.cycle_fo4 == cycle && p.depth == depth).unwrap().normalized_time
        };
        // Three-cycle caches exist across the sweep; 15 FO4 must beat 30 FO4.
        let fast = t(15.0, 3).unwrap();
        let slow = t(30.0, 3).unwrap();
        assert!(fast < slow, "faster clock lost: {fast} vs {slow}");
    }
}
