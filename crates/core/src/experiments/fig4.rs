//! **Figure 4** — IPC of ideal multi-cycle multi-ported 32 KB caches at a
//! fixed processor cycle time.

use hbc_mem::PortModel;

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// Port counts swept by the figure.
pub const PORTS: [u32; 4] = [1, 2, 3, 4];
/// Hit times swept by the figure.
pub const HITS: [u64; 3] = [1, 2, 3];

/// Regenerates Figure 4: one row per (benchmark, hit time), one column per
/// ideal port count.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig4, ExpParams};
///
/// let t = fig4::run(&ExpParams::fast());
/// assert_eq!(t.len(), 9); // 3 benchmarks x 3 hit times
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut table = Table::new(
        "Figure 4: IPC, ideal multi-cycle multi-ported 32K caches (fixed cycle time)",
        &["benchmark", "hit", "1 port", "2 ports", "3 ports", "4 ports"],
    );
    // Fixed cell→index mapping: benchmark-major, then hit time, then ports.
    let mut cells = Vec::new();
    for &b in &params.benchmarks {
        for hit in HITS {
            for ports in PORTS {
                cells.push((b, hit, ports));
            }
        }
    }
    let ipcs = params.run_cells(cells.len(), |i| {
        let (b, hit, ports) = cells[i];
        params.sim(b).cache_size_kib(32).hit_cycles(hit).ports(PortModel::Ideal(ports)).run().ipc()
    });
    let mut at = ipcs.iter();
    for &b in &params.benchmarks {
        for hit in HITS {
            let mut row = vec![b.name().to_string(), format!("{hit}~")];
            row.extend(PORTS.iter().filter_map(|_| at.next()).map(|ipc| fmt_f(*ipc, 3)));
            table.push(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn v(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn pipelining_always_costs_ipc() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc];
        let t = run(&p);
        // Rows: hit 1, 2, 3 for gcc; column 3 = 2 ports.
        let one = v(&t.rows()[0][3]);
        let two = v(&t.rows()[1][3]);
        let three = v(&t.rows()[2][3]);
        assert!(one > two && two > three, "IPC must fall with hit time: {one} {two} {three}");
    }

    #[test]
    fn more_ports_never_hurt() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Tomcatv];
        let t = run(&p);
        for row in t.rows() {
            for pair in row[2..].windows(2) {
                assert!(v(&pair[1]) >= v(&pair[0]) - 0.02, "ports hurt in {row:?}");
            }
        }
    }

    #[test]
    fn fp_loses_less_to_pipelining_than_int() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc, Benchmark::Tomcatv];
        let t = run(&p);
        let loss = |base: f64, deep: f64| (base - deep) / base;
        let gcc_loss = loss(v(&t.rows()[0][3]), v(&t.rows()[2][3]));
        let fp_loss = loss(v(&t.rows()[3][3]), v(&t.rows()[5][3]));
        assert!(
            fp_loss < gcc_loss,
            "tomcatv should hide pipelining better: gcc {gcc_loss:.3} vs fp {fp_loss:.3}"
        );
    }
}
