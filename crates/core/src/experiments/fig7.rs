//! **Figure 7** — the 4 MB on-chip DRAM cache behind a 16 KB row-buffer
//! cache, DRAM hit time swept 6–8 cycles, with and without a line buffer.

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// DRAM hit times swept by the figure.
pub const DRAM_HITS: [u64; 3] = [6, 7, 8];

/// Regenerates Figure 7.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig7, ExpParams};
///
/// let t = fig7::run(&ExpParams::fast());
/// assert_eq!(t.len(), 9); // 3 benchmarks x 3 DRAM hit times
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut table = Table::new(
        "Figure 7: IPC, 4M on-chip DRAM cache with 16K row-buffer cache",
        &["benchmark", "DRAM hit", "no LB", "LB"],
    );
    // One cell per (benchmark, DRAM hit, line-buffer) point.
    let mut cells = Vec::new();
    for &b in &params.benchmarks {
        for hit in DRAM_HITS {
            for lb in [false, true] {
                cells.push((b, hit, lb));
            }
        }
    }
    let ipcs = params.run_cells(cells.len(), |i| {
        let (b, hit, lb) = cells[i];
        params.sim(b).dram_cache(hit).line_buffer(lb).run().ipc()
    });
    let mut at = ipcs.chunks_exact(2);
    for &b in &params.benchmarks {
        for hit in DRAM_HITS {
            let Some(&[base, with_lb]) = at.next() else { continue };
            table.push(vec![
                b.name().to_string(),
                format!("{hit}~"),
                fmt_f(base, 3),
                fmt_f(with_lb, 3),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn v(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn slower_dram_never_helps() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc];
        let t = run(&p);
        let at6 = v(&t.rows()[0][3]);
        let at8 = v(&t.rows()[2][3]);
        assert!(at8 <= at6 + 0.02, "8-cycle DRAM should not beat 6-cycle: {at6} vs {at8}");
    }

    #[test]
    fn tomcatv_streams_love_the_dram_cache() {
        // tomcatv's 3 MB arrays fit the 4 MB DRAM cache but no SRAM size:
        // its DRAM-cache IPC must beat its 32K SRAM IPC.
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Tomcatv];
        let dram = v(&run(&p).rows()[0][3]);
        let sram = p.sim(Benchmark::Tomcatv).cache_size_kib(32).line_buffer(true).run().ipc();
        assert!(dram > sram, "DRAM cache should help tomcatv: {dram} vs {sram}");
    }
}
