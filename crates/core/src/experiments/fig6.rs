//! **Figure 6** — the line buffer on 32 KB multi-cycle eight-way banked and
//! duplicate caches, fixed processor cycle time.

use hbc_mem::PortModel;

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// Regenerates Figure 6: IPC with and without the 32-entry line buffer for
/// both leading port organizations at 1–3-cycle hit times.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig6, ExpParams};
///
/// let t = fig6::run(&ExpParams::fast());
/// assert_eq!(t.len(), 18); // 3 benchmarks x 2 organizations x 3 hit times
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut table = Table::new(
        "Figure 6: IPC of 32K banked/duplicate caches with and without a line buffer",
        &["benchmark", "organization", "hit", "no LB", "LB", "gain"],
    );
    const ORGS: [(&str, PortModel); 2] =
        [("8-way banked", PortModel::Banked(8)), ("duplicate", PortModel::Duplicate)];
    // One cell per (benchmark, organization, hit, line-buffer) point.
    let mut cells = Vec::new();
    for &b in &params.benchmarks {
        for (_, ports) in ORGS {
            for hit in super::fig4::HITS {
                for lb in [false, true] {
                    cells.push((b, ports, hit, lb));
                }
            }
        }
    }
    let ipcs = params.run_cells(cells.len(), |i| {
        let (b, ports, hit, lb) = cells[i];
        params.sim(b).cache_size_kib(32).hit_cycles(hit).ports(ports).line_buffer(lb).run().ipc()
    });
    let mut at = ipcs.chunks_exact(2);
    for &b in &params.benchmarks {
        for (label, _) in ORGS {
            for hit in super::fig4::HITS {
                let Some(&[base, with_lb]) = at.next() else { continue };
                table.push(vec![
                    b.name().to_string(),
                    label.to_string(),
                    format!("{hit}~"),
                    fmt_f(base, 3),
                    fmt_f(with_lb, 3),
                    format!("{:+.1}%", 100.0 * (with_lb / base - 1.0)),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn v(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn line_buffer_gains_grow_with_pipelining() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc];
        let t = run(&p);
        // Duplicate-cache rows are 3..6; gains at hit 1 vs hit 3.
        let gain = |i: usize| v(&t.rows()[i][4]) / v(&t.rows()[i][3]) - 1.0;
        let dup_1 = gain(3);
        let dup_3 = gain(5);
        assert!(
            dup_3 > dup_1 + 0.02,
            "LB must help pipelined caches more: 1~ {dup_1:.3} vs 3~ {dup_3:.3}"
        );
    }

    #[test]
    fn line_buffer_never_hurts_meaningfully() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Database];
        let t = run(&p);
        for row in t.rows() {
            assert!(v(&row[4]) >= v(&row[3]) * 0.99, "LB hurt in {row:?}");
        }
    }
}
