//! **Figure 3** — misses per instruction versus primary-cache size for the
//! nine benchmarks (single-ported two-way 32-byte-line caches).

use hbc_timing::CacheSize;

use crate::experiments::ExpParams;
use crate::miss_curve;
use crate::report::{fmt_pct, Table};

/// Regenerates Figure 3 over the paper's 4 KB..1 MB sweep, using the fast
/// functional cache model with `params.instructions * 4` instructions per
/// point.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig3, ExpParams};
///
/// let t = fig3::run(&ExpParams::fast());
/// assert_eq!(t.len(), 3);
/// ```
pub fn run(params: &ExpParams) -> Table {
    let sizes: Vec<u64> = CacheSize::sram_sweep().iter().map(|s| s.kib()).collect();
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(sizes.iter().map(|k| format!("{k}K")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table =
        Table::new("Figure 3: misses per instruction vs primary cache size", &header_refs);
    // One cell per benchmark, merged in benchmark order.
    let curves = params.run_cells(params.benchmarks.len(), |i| {
        miss_curve(params.benchmarks[i], &sizes, params.instructions * 4, params.seed)
    });
    for (&b, curve) in params.benchmarks.iter().zip(&curves) {
        let mut row = vec![b.name().to_string()];
        row.extend(curve.iter().map(|m| fmt_pct(*m)));
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn database_has_the_largest_miss_rates() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc, Benchmark::Database];
        let t = run(&p);
        let gcc_4k = pct(&t.rows()[0][1]);
        let db_4k = pct(&t.rows()[1][1]);
        assert!(db_4k > gcc_4k, "database {db_4k} should out-miss gcc {gcc_4k}");
    }

    #[test]
    fn fp_benchmark_has_radical_drop() {
        // su2cor's arrays fit at 128 KB: the miss rate collapses there. The
        // stream must wrap its 96 KB arrays a few times to show reuse, so
        // this test needs a longer window than the fast preset.
        let mut p = ExpParams::fast();
        p.instructions = 80_000;
        p.benchmarks = vec![Benchmark::Su2cor];
        let t = run(&p);
        let at_64k = pct(&t.rows()[0][5]);
        let at_256k = pct(&t.rows()[0][7]);
        assert!(at_256k < at_64k * 0.5, "expected a radical drop: {at_64k} -> {at_256k}");
    }

    #[test]
    fn curves_never_increase_much() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Vcs];
        let t = run(&p);
        for row in t.rows() {
            for pair in row[1..].windows(2) {
                let (a, b) = (pct(&pair[0]), pct(&pair[1]));
                assert!(b <= a + 0.3, "{}: miss rate rose {a} -> {b}", row[0]);
            }
        }
    }
}
