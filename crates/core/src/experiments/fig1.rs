//! **Figure 1** — access times for single-ported and eight-way banked
//! caches, 4 KB to 1 MB, in FO4.

use hbc_timing::AccessTimeModel;

use crate::report::{fmt_f, Table};

/// Regenerates Figure 1.
///
/// # Example
///
/// ```
/// let t = hbc_core::experiments::fig1::run();
/// assert_eq!(t.len(), 9); // 4K..1M
/// ```
pub fn run() -> Table {
    let model = AccessTimeModel::default();
    let mut table = Table::new(
        "Figure 1: cache access time (FO4) vs capacity",
        &["size", "single-ported", "8-way banked", "cycles @25FO4"],
    );
    for row in model.figure1() {
        table.push(vec![
            row.size.to_string(),
            fmt_f(row.single_ported.get(), 2),
            fmt_f(row.banked8.get(), 2),
            fmt_f(row.single_ported.get() / 25.0, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_paper_anchors() {
        let t = run();
        let text = t.to_string();
        assert!(text.contains("25.00"), "8K anchor missing: {text}");
        assert!(text.contains("55.00"), "1M anchor missing: {text}");
        // 512K at 1.67 cycles.
        assert!(text.contains("1.67"), "512K cycle count missing: {text}");
    }

    #[test]
    fn csv_export_works() {
        let csv = run().to_csv();
        assert!(csv.lines().count() == 10);
    }
}
