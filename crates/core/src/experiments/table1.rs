//! **Table 1** — the nine benchmarks.

use hbc_workloads::Benchmark;

use crate::report::Table;

/// Regenerates Table 1: each benchmark with its group and description.
///
/// # Example
///
/// ```
/// let t = hbc_core::experiments::table1::run();
/// assert_eq!(t.len(), 9);
/// ```
pub fn run() -> Table {
    let mut table =
        Table::new("Table 1: the nine benchmarks", &["benchmark", "group", "description"]);
    for b in Benchmark::ALL {
        let spec = b.spec();
        table.push(vec![b.name().to_string(), b.group().to_string(), spec.description.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_nine_with_groups() {
        let t = run();
        let text = t.to_string();
        for b in Benchmark::ALL {
            assert!(text.contains(b.name()), "missing {b}");
        }
        assert!(text.contains("SPEC95 integer"));
        assert!(text.contains("SimOS multiprogramming"));
    }
}
