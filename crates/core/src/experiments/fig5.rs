//! **Figure 5** — IPC of 32 KB multi-cycle banked caches at a fixed
//! processor cycle time.

use hbc_mem::PortModel;

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// External bank counts swept by the figure.
pub const BANKS: [u32; 5] = [1, 2, 4, 8, 128];

/// Regenerates Figure 5: one row per (benchmark, hit time), one column per
/// bank count.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{fig5, ExpParams};
///
/// let t = fig5::run(&ExpParams::fast());
/// assert_eq!(t.len(), 9);
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut table = Table::new(
        "Figure 5: IPC, 32K multi-cycle banked caches (fixed cycle time)",
        &["benchmark", "hit", "1 bank", "2 banks", "4 banks", "8 banks", "128 banks"],
    );
    // Fixed cell→index mapping: benchmark-major, then hit time, then banks.
    let mut cells = Vec::new();
    for &b in &params.benchmarks {
        for hit in super::fig4::HITS {
            for banks in BANKS {
                cells.push((b, hit, banks));
            }
        }
    }
    let ipcs = params.run_cells(cells.len(), |i| {
        let (b, hit, banks) = cells[i];
        params.sim(b).cache_size_kib(32).hit_cycles(hit).ports(PortModel::Banked(banks)).run().ipc()
    });
    let mut at = ipcs.iter();
    for &b in &params.benchmarks {
        for hit in super::fig4::HITS {
            let mut row = vec![b.name().to_string(), format!("{hit}~")];
            row.extend(BANKS.iter().filter_map(|_| at.next()).map(|ipc| fmt_f(*ipc, 3)));
            table.push(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_workloads::Benchmark;

    fn v(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn more_banks_never_hurt_much() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Gcc];
        let t = run(&p);
        for row in t.rows() {
            for pair in row[2..].windows(2) {
                assert!(v(&pair[1]) >= v(&pair[0]) - 0.02, "banks hurt in {row:?}");
            }
        }
    }

    #[test]
    fn many_banks_close_to_eight() {
        // The paper: "the performance difference between an eight-way banked
        // cache and a cache with a large number of banks is small".
        let mut p = ExpParams::fast();
        p.benchmarks = vec![Benchmark::Tomcatv];
        let t = run(&p);
        for row in t.rows() {
            let eight = v(&row[5]);
            let many = v(&row[6]);
            assert!((many - eight).abs() / eight < 0.05, "8 vs 128 banks diverge: {row:?}");
        }
    }
}
