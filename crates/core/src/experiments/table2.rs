//! **Table 2** — execution-time percentages (kernel/user/idle) and the
//! load/store fractions of the instruction stream, paper values alongside
//! the fractions measured from the synthetic streams.

use hbc_workloads::{StreamStats, WorkloadGen};

use crate::experiments::ExpParams;
use crate::report::{fmt_f, Table};

/// Regenerates Table 2, characterizing `params.instructions * 4`
/// instructions of each benchmark's stream.
///
/// # Example
///
/// ```
/// use hbc_core::experiments::{table2, ExpParams};
///
/// let t = table2::run(&ExpParams::fast());
/// assert_eq!(t.len(), 3); // fast() covers the three representatives
/// ```
pub fn run(params: &ExpParams) -> Table {
    let mut table = Table::new(
        "Table 2: execution-time and instruction-mix percentages (paper / measured)",
        &[
            "benchmark",
            "kernel%",
            "user%",
            "idle%",
            "loads%",
            "loads(meas)",
            "stores%",
            "stores(meas)",
        ],
    );
    // One cell per benchmark: stream characterization is independent work.
    let measured = params.run_cells(params.benchmarks.len(), |i| {
        let mut gen = WorkloadGen::new(params.benchmarks[i], params.seed);
        StreamStats::characterize(&mut gen, params.instructions * 4)
    });
    for (&b, stats) in params.benchmarks.iter().zip(&measured) {
        let spec = b.spec();
        table.push(vec![
            b.name().to_string(),
            fmt_f(spec.table2.kernel_pct, 1),
            fmt_f(spec.table2.user_pct, 1),
            fmt_f(spec.table2.idle_pct, 1),
            fmt_f(spec.table2.load_pct, 1),
            fmt_f(stats.load_pct(), 1),
            fmt_f(spec.table2.store_pct, 1),
            fmt_f(stats.store_pct(), 1),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_mix_tracks_spec() {
        let t = run(&ExpParams::fast());
        for row in t.rows() {
            let spec_loads: f64 = row[4].parse().unwrap();
            let meas_loads: f64 = row[5].parse().unwrap();
            assert!(
                (spec_loads - meas_loads).abs() < 2.0,
                "{}: loads {spec_loads} vs {meas_loads}",
                row[0]
            );
        }
    }

    #[test]
    fn database_idle_fraction_reported() {
        let mut p = ExpParams::fast();
        p.benchmarks = vec![hbc_workloads::Benchmark::Database];
        let t = run(&p);
        assert_eq!(t.rows()[0][3], "64.6");
    }
}
