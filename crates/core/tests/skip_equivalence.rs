//! Property test: event-horizon cycle skipping is architecturally invisible.
//!
//! For randomized `(benchmark, cache configuration, seed, window)` triples,
//! a run with skipping enabled must produce bit-identical processor stats,
//! memory stats, and probe exports to the reference tick-by-tick loop
//! (`event_horizon(false)`). This is the external contract DESIGN.md §13
//! states; the `sanitize` feature additionally re-executes every skipped
//! span in lockstep inside the engine itself.

use hbc_core::{Benchmark, SimBuilder};
use hbc_mem::PortModel;
use hbc_ptest::Gen;

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Gcc,
    Benchmark::Li,
    Benchmark::Compress,
    Benchmark::Tomcatv,
    Benchmark::Pmake,
    Benchmark::Database,
];

/// A random simulation: any benchmark, any memory organization the figure
/// drivers use (SRAM ideal/banked/duplicate ports or the DRAM cache, with
/// or without the line buffer), small measurement windows.
fn random_sim(g: &mut Gen) -> SimBuilder {
    let b = SimBuilder::new(*g.pick(&BENCHMARKS))
        .seed(g.u64_in(0, 1 << 16))
        .instructions(g.u64_in(2_000, 8_000))
        .warmup(g.u64_in(0, 1_500))
        .cache_warm(g.u64_in(0, 20_000))
        .probes(true);
    let b = match g.u64_below(4) {
        0 => b.dram_cache(g.u64_in(6, 8)),
        kind => {
            let ports = match kind {
                1 => PortModel::Ideal(g.u32_in(1, 4)),
                2 => PortModel::Banked(1 << g.u32_in(0, 3)),
                _ => PortModel::Duplicate,
            };
            b.cache_size_kib(1 << g.u32_in(2, 7)).hit_cycles(g.u64_in(1, 3)).ports(ports)
        }
    };
    if g.bool() {
        b.line_buffer(true)
    } else {
        b
    }
}

#[test]
fn skipping_matches_the_tick_loop_bit_for_bit() {
    let total_skipped = std::cell::Cell::new(0u64);
    hbc_ptest::check("skip_equivalence", 24, |g| {
        let sim = random_sim(g);
        let ticked = sim.clone().event_horizon(false).run();
        let skipped = sim.run();
        assert_eq!(ticked.run(), skipped.run(), "RunStats diverged");
        assert_eq!(ticked.mem(), skipped.mem(), "MemStats diverged");
        assert_eq!(ticked.probes(), skipped.probes(), "probe export diverged");
        assert_eq!(ticked.trace_jsonl(), skipped.trace_jsonl());
        assert_eq!(ticked.skipped_cycles(), 0, "disabled engine must not skip");
        total_skipped.set(total_skipped.get() + skipped.skipped_cycles());
    });
    // The property is vacuous if no case ever exercised the fast-forward
    // path; the mix above always includes configurations that stall.
    assert!(total_skipped.get() > 0, "no case skipped any cycles");
}
