//! The analyzer's own acceptance test: the workspace it lives in is clean.
//!
//! This makes `cargo test` equivalent to `cargo run -p hbc-analyze -- check`
//! so a rule violation fails CI even if the standalone check step is
//! skipped.

use hbc_analyze::model::Model;
use hbc_analyze::rules::panic_path::{self, Baseline};
use hbc_analyze::{run_all, workspace};
use std::path::Path;

fn root() -> std::path::PathBuf {
    workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn workspace_has_no_findings() {
    let root = root();
    let files = workspace::scan(&root).expect("scan workspace");
    assert!(files.len() > 50, "scan looks truncated: only {} files", files.len());
    let baseline_text = std::fs::read_to_string(root.join("crates/analyze/panic_baseline.txt"))
        .expect("panic baseline is checked in");
    let findings = run_all(&files, &Baseline::parse(&baseline_text));
    assert!(
        findings.is_empty(),
        "hbc-analyze findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn panic_baseline_is_tight() {
    // The baseline may only go down; if someone removes panic sites they
    // should also tighten the baseline so the gate holds the new level.
    let root = root();
    let files = workspace::scan(&root).expect("scan workspace");
    let (counts, _) = panic_path::count_sites(&Model::build(&files));
    let baseline_text = std::fs::read_to_string(root.join("crates/analyze/panic_baseline.txt"))
        .expect("panic baseline is checked in");
    let baseline = Baseline::parse(&baseline_text);
    for (crate_name, count) in &counts {
        assert_eq!(
            baseline.allowed(crate_name),
            *count,
            "{crate_name}: baseline is stale; run `cargo run -p hbc-analyze -- baseline`"
        );
    }
}

#[test]
fn panic_budget_is_modest() {
    // Acceptance bound from the determinism/invariant issue: the
    // simulator's memory and CPU crates stay well under 45 panic sites.
    let files = workspace::scan(&root()).expect("scan workspace");
    let (counts, _) = panic_path::count_sites(&Model::build(&files));
    let mem_cpu = counts["hbc-mem"] + counts["hbc-cpu"];
    assert!(mem_cpu < 45, "hbc-mem + hbc-cpu have {mem_cpu} panic sites");
}
