//! Snapshot test pinning the `--format json` schema consumed by CI.
//!
//! The `analyze.json` artifact is schema version 1; anything that changes
//! the rendered shape below is a breaking change for consumers and must
//! bump `version` (and this snapshot) deliberately.

use hbc_analyze::{findings_to_json, Finding, RULES};
use std::path::PathBuf;

#[test]
fn schema_v1_snapshot() {
    let findings = vec![
        Finding {
            rule: "determinism",
            path: PathBuf::from("crates/mem/src/lib.rs"),
            line: 12,
            message: "`HashMap` in hbc-mem: iteration order is randomized; use BTreeMap"
                .to_string(),
        },
        Finding {
            rule: "lock-discipline",
            path: PathBuf::from("crates/serve/src/server.rs"),
            line: 40,
            message: "escapes: quote \" backslash \\ newline \n tab \t".to_string(),
        },
    ];
    let expected = concat!(
        "{\"version\":1,",
        "\"rules\":[\"determinism\",\"exec-merge\",\"units\",\"config-validate\",\"panic\",",
        "\"probe-naming\",\"serve-io-panic\",\"lock-discipline\",\"probe-coverage\",",
        "\"event-horizon\",\"cast-truncation\",\"wire-coverage\"],",
        "\"files_scanned\":126,",
        "\"findings\":[",
        "{\"rule\":\"determinism\",\"path\":\"crates/mem/src/lib.rs\",\"line\":12,",
        "\"message\":\"`HashMap` in hbc-mem: iteration order is randomized; use BTreeMap\"},",
        "{\"rule\":\"lock-discipline\",\"path\":\"crates/serve/src/server.rs\",\"line\":40,",
        "\"message\":\"escapes: quote \\\" backslash \\\\ newline \\n tab \\t\"}",
        "]}"
    );
    assert_eq!(findings_to_json(&findings, 126), expected);
}

#[test]
fn empty_findings_render_an_empty_array() {
    let json = findings_to_json(&[], 0);
    assert!(json.starts_with("{\"version\":1,"));
    assert!(json.ends_with("\"findings\":[]}"));
}

#[test]
fn rules_array_tracks_the_rules_table() {
    // The schema's `rules` field is derived from RULES; a rule added to
    // the table must show up in the JSON (and in this snapshot above).
    let json = findings_to_json(&[], 0);
    for rule in RULES {
        assert!(
            json.contains(&format!("\"{}\"", rule.name)),
            "rule {} missing from JSON rules array",
            rule.name
        );
    }
    assert_eq!(RULES.len(), 12);
}
