// Fixture: a timed component invisible to the event horizon must fire.
// `tick` advances state every cycle, but without `next_event` the skip
// engine cannot know when the next state change lands and may jump past it.

pub struct PrefetchQueue {
    ready_at: u64,
    pending: Vec<u64>,
}

impl PrefetchQueue {
    pub fn tick(&mut self, now: u64) {
        if now >= self.ready_at {
            self.pending.pop();
        }
    }
}

pub struct WriteCombiner {
    drain_at: u64,
}

impl WriteCombiner {
    pub fn begin_cycle(&mut self, now: u64) {
        if now == self.drain_at {
            self.drain_at = now + 4;
        }
    }

    pub fn end_cycle(&mut self) {}
}
