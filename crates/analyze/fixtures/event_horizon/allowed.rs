// Fixture: timed components that answer `next_event` (or carry an audited
// allow) pass — the event horizon can see every scheduled state change.

pub struct PrefetchQueue {
    ready_at: u64,
    pending: Vec<u64>,
}

impl PrefetchQueue {
    pub fn tick(&mut self, now: u64) {
        if now >= self.ready_at {
            self.pending.pop();
        }
    }

    pub fn next_event(&self, now: u64) -> Option<u64> {
        (!self.pending.is_empty() && self.ready_at > now).then_some(self.ready_at)
    }
}

pub struct ScratchCounter {
    ticks: u64,
}

impl ScratchCounter {
    // hbc-allow: event-horizon (pure statistics; never schedules work)
    pub fn tick(&mut self) {
        self.ticks += 1;
    }
}
