// Fixture: merging parallel results through shared-mutable state must fire.
use std::sync::mpsc;
use std::sync::Mutex;

pub fn run_cells_badly(cells: usize, cell: impl Fn(usize) -> f64 + Sync) -> Vec<f64> {
    // Arrival-ordered accumulation: the output depends on host scheduling.
    let out = Mutex::new(Vec::with_capacity(cells));
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for i in 0..cells {
            let tx = tx.clone();
            let cell = &cell;
            scope.spawn(move || tx.send(cell(i)).ok());
        }
        drop(tx);
        for value in rx {
            out.lock().expect("poisoned").push(value);
        }
    });
    out.into_inner().expect("poisoned")
}
