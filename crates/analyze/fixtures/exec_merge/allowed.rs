// Fixture: the index-ordered merge discipline passes — workers buffer
// (index, result) pairs privately; only a scheduling atomic is shared.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn run_cells(jobs: usize, cells: usize, cell: impl Fn(usize) -> f64 + Sync) -> Vec<f64> {
    let next = AtomicUsize::new(0);
    let cell = &cell;
    let mut slots: Vec<Option<f64>> = Vec::with_capacity(cells);
    slots.resize_with(cells, || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        done.push((i, cell(i)));
                    }
                    done
                })
            })
            .collect();
        for worker in workers {
            for (i, value) in worker.join().expect("worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots.into_iter().flatten().collect()
}
