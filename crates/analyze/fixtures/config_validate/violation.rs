// Fixture: a Config struct with no validate() must fire.
pub struct PrefetcherConfig {
    pub degree: u32,
    pub distance: u32,
}

impl PrefetcherConfig {
    pub fn streams(&self) -> u32 {
        self.degree
    }
}
