// Fixture: an annotated invariant-free Config passes without validate().
// hbc-allow: config-validate (plain data; any value is meaningful)
pub struct LabelConfig {
    pub name: &'static str,
}
