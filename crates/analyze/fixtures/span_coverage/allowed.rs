// probe-coverage span fixture (allowed): every literal stage name at a
// span recording site appears in the STAGE_NAMES table.

pub const STAGE_NAMES: &[&str] = &["serve.parse", "exec.run", "sim.measured"];

fn instrument(spans: &ServeSpans) {
    let _guard = enter("exec.run");
    record_since("sim.measured", 0);
    spans.record_at("serve.parse", 1, 0, 10, 250);
}

fn unrelated(map: &StateMap) {
    // Non-dotted literals are not stage names: other `enter` APIs are
    // outside the span lint.
    map.enter("once");
}

fn instrument_linked(spans: &ServeSpans) {
    // Pre-allocated span IDs record through the same table.
    let span = spans.alloc_span();
    spans.record_linked("exec.run", span, 1, 0, 10, 250);
}
