// probe-coverage span fixture (violation): a recording site names a
// stage the STAGE_NAMES table does not register — debug builds panic at
// the site, and release traces would carry an unregistered stage.

pub const STAGE_NAMES: &[&str] = &["serve.parse"];

fn instrument(spans: &ServeSpans) {
    // Typo: the table registers `serve.parse`.
    spans.record_at("serve.parze", 1, 0, 10, 250);
}

fn instrument_linked(spans: &ServeSpans) {
    // Typo at a linked-record site: same closed-world check applies.
    spans.record_linked("serve.parsa", 7, 1, 0, 10, 250);
}
