// lock-discipline violation fixture: an AB/BA lock-order cycle plus a
// guard held across blocking socket I/O. Scanned as crate `hbc-serve`.

fn order_ab(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    b.push(1);
    a.push(2);
}

fn order_ba(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    a.push(1);
    b.push(2);
}

fn respond_while_locked(s: &Shared, stream: &mut TcpStream) {
    let guard = lock(&s.in_flight);
    // The guard is still live here: every other worker now waits on this
    // socket's peer.
    stream.write_all(b"HTTP/1.1 200 OK\r\n\r\n");
    guard.touch();
}
