// lock-discipline allowed fixture: the disciplined patterns the real
// server uses. Scanned as crate `hbc-serve`.

// Consistent lock order: alpha before beta, everywhere.
fn order_one(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    a.push(1);
    b.push(2);
}

fn order_two(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    b.push(1);
    a.push(2);
}

// Explicit drop before the socket write.
fn drop_then_respond(s: &Shared, stream: &mut TcpStream) {
    let queue = lock(&s.queue);
    let depth = queue.len();
    drop(queue);
    stream.write_all(b"HTTP/1.1 429 Too Many Requests\r\n\r\n");
    log(depth);
}

// Block-scoped guard: dead before the I/O.
fn scoped_then_respond(s: &Shared, stream: &mut TcpStream) {
    let body = {
        let cache = s.cache.lock();
        cache.get_cloned()
    };
    stream.write_all(&body);
}

// Unbound temporary: dead at the end of its statement.
fn temporary_then_read(s: &Shared, stream: &mut TcpStream) {
    lock(&s.counts).insert(1);
    let mut buf = [0u8; 64];
    stream.read(&mut buf);
}

// Condvar wait: releases the mutex while blocked, so not blocking I/O.
fn wait_for_result(s: &Shared) -> u64 {
    let mut state = s.state.lock();
    loop {
        if let Some(v) = state.value {
            return v;
        }
        state = s.cv.wait_timeout(state, timeout).0;
    }
}

// Audited exception: justified single-threaded startup path.
fn startup_banner(s: &Shared, stream: &mut TcpStream) {
    let g = s.state.lock();
    // hbc-allow: lock-discipline (startup runs before any worker thread exists)
    stream.write_all(g.banner());
}
