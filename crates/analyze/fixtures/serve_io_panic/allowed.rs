// Fixture: the typed-error discipline passes — every socket and
// filesystem operation propagates `io::Error`/`HttpError` instead of
// unwrapping, and the one audited exception is annotated.
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};

pub fn serve_one(listener: &TcpListener) -> io::Result<()> {
    let (mut stream, _) = listener.accept()?;
    let mut buf = [0u8; 512];
    let n = stream.read(&mut buf)?;
    stream.write_all(&buf[..n])?;
    stream.flush()?;
    Ok(())
}

pub fn persist(path: &std::path::Path, body: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

pub fn fixture_port(listener: &TcpListener) -> u16 {
    // hbc-allow: serve-io-panic (loopback listener in a dev-only helper)
    listener.local_addr().unwrap().port()
}

// Parsing is not I/O: a bare unwrap here is the `panic` rule's business,
// not this rule's.
pub fn parse_status(text: &str) -> u16 {
    text.parse().unwrap()
}
