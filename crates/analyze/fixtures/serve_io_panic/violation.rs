// Fixture: bare unwrap/expect on socket and filesystem operations must
// fire — each of these turns an expected runtime condition (peer reset,
// full disk, missing cache entry) into a dead server.
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

pub fn serve_one(listener: &TcpListener) {
    let (mut stream, _) = listener.accept().unwrap();
    let mut buf = [0u8; 512];
    let n = stream.read(&mut buf).expect("peer sent a request");
    stream.write_all(&buf[..n]).unwrap();
}

pub fn connect(addr: &str) -> TcpStream {
    TcpStream::connect(addr).expect("server is up")
}

pub fn persist(path: &std::path::Path, body: &[u8]) {
    std::fs::write(path, body).unwrap();
}
