// Fixture: a public timing function trafficking in raw f64 must fire.
pub fn access_time(size_bytes: u64, fo4_per_level: f64) -> f64 {
    (size_bytes as f64).log2() * fo4_per_level
}
