// Fixture: constructors/accessors are exempt; other raw signatures pass
// only under an audited annotation.
pub fn new(fo4: f64) -> Self {
    Self(fo4)
}

pub fn get(&self) -> f64 {
    self.0
}

pub fn from_bytes(bytes: u64) -> Self {
    Self(bytes)
}

// hbc-allow: units (cycle counts are the simulator's native integer type)
pub fn to_cycles(&self, cycle: Nanoseconds) -> u64 {
    (self.0 / cycle.get()).ceil() as u64
}
