// Fixture: the same constructs under audited hbc-allow annotations pass.
// hbc-allow: determinism (counts only; iteration order never observed)
use std::collections::HashMap;

pub fn misses_per_line(lines: &[u64]) -> u64 {
    let mut map = HashMap::new(); // hbc-allow: determinism (counts only)
    for l in lines {
        *map.entry(*l).or_insert(0u64) += 1;
    }
    map.len() as u64
}
