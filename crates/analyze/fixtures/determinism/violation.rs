// Fixture: nondeterministic constructs in a simulation crate must fire.
use std::collections::HashMap;
use std::time::Instant;

pub fn misses_per_line(lines: &[u64]) -> HashMap<u64, u64> {
    let started = Instant::now();
    let mut map = HashMap::new();
    for l in lines {
        *map.entry(*l).or_insert(0u64) += 1;
    }
    let _ = started.elapsed();
    map
}
