// Fixture: hierarchical dotted lowercase names, each registered once.

pub fn export(reg: &mut hbc_probe::ProbeRegistry, n: u64) {
    reg.counter("mem.l1.load_hits").set(n);
    reg.counter("mem.l1.load_misses").set(n);
    reg.histogram("cpu.issue.width_used").record(n);
    // Migration shims may keep a legacy flat name under an audited allow.
    reg.counter("legacy_hits").set(n); // hbc-allow: probe-naming (pre-registry shim)
}
