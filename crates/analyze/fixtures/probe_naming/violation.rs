// Fixture: malformed and colliding probe names must fire.

pub fn export(reg: &mut hbc_probe::ProbeRegistry, n: u64) {
    reg.counter("CamelCase.name").set(n); // uppercase segment
    reg.counter("cycles").set(n); // single segment, no hierarchy
    reg.counter("cpu..cycles").set(n); // empty segment
    reg.histogram("cpu.load latency"); // space in segment
    reg.counter("mem.lb.hits").set(n);
    reg.counter("mem.lb.hits").set(n); // duplicate registration
}
