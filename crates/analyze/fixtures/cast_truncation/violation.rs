// cast-truncation violation fixture: narrowing casts on simulation-state
// values. Scanned as a simulation crate (`hbc-mem`).

fn wrap_at_two_hours(total_cycles: u64) -> u32 {
    // Wraps after 2^32 cycles — ~2.5 simulated hours at 1 GHz.
    total_cycles as u32
}

fn alias_above_4g(addr: u64) -> u32 {
    // Addresses above 4 GiB alias lower ones.
    addr as u32
}

fn saturate_stats(hit_count: u64, miss_count: u64) -> (u16, u8) {
    (hit_count as u16, miss_count as u8)
}
