// cast-truncation allowed fixture: widening, indexing, non-state values,
// and one audited bounded narrowing.

fn widen(cycles: u32) -> u64 {
    u64::from(cycles)
}

fn index(addr: u64) -> usize {
    // `as usize` is the indexing conversion and deliberately exempt.
    addr as usize
}

fn pack_flags(flags: u64) -> u8 {
    // Not simulation state: no suspect name involved.
    flags as u8
}

fn bank_of(addr: u64, nbanks: u32) -> u32 {
    // hbc-allow: cast-truncation (bounded by % nbanks, which is u32)
    (addr % u64::from(nbanks)) as u32
}
