// probe-coverage allowed fixture: every registration handle is used,
// every read names a registered probe of the right kind, and scoped
// views cover registered names.

fn register(reg: &mut ProbeRegistry) {
    // Chained increment.
    reg.counter("serve.requests.total").add(1);
    // Bound handle.
    let lat = reg.histogram("serve.latency.micros");
    lat.record(12);
    // Assigned through (snapshot export).
    *reg.histogram("serve.queue.depth") = snapshot.clone();
    // Passed along as an argument.
    export(reg.counter("serve.requests.total"));
}

fn report(reg: &ProbeRegistry) -> u64 {
    let total = reg.get("serve.requests.total");
    let lat = reg.get_histogram("serve.latency.micros");
    let view = reg.scoped("serve");
    // Single-segment literals are map keys, not probe names: ignored.
    let run = config.get("experiment");
    combine(total, lat, view, run)
}

fn reserved(reg: &mut ProbeRegistry) {
    // hbc-allow: probe-coverage (registered so the export schema is stable before first use)
    reg.counter("serve.reserved.slot");
}
