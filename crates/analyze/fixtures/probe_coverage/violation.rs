// probe-coverage violation fixture: a discarded registration handle, a
// read of a probe nothing registers, a wrong-kind accessor, and an empty
// scoped view.

fn register(reg: &mut ProbeRegistry) {
    // Handle discarded: this statistic is a permanent zero.
    reg.counter("serve.requests.dropped");
    reg.counter("serve.requests.total").add(1);
}

fn report(reg: &ProbeRegistry) -> u64 {
    // Nothing registers this name; the lookup returns None at runtime.
    let ghost = reg.get("serve.requests.phantom");
    // Registered as a counter, read as a histogram.
    let wrong = reg.get_histogram("serve.requests.total");
    // No registered name starts with `cpu.`.
    let empty = reg.scoped("cpu");
    combine(ghost, wrong, empty)
}
