// Fixture: panic sites above the (zero) baseline must fire.
pub fn pick(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    let last = v.last().expect("checked non-empty");
    if first > last {
        panic!("unsorted");
    }
    *last
}
