// Fixture: annotated panic sites are excluded from the count; fallible
// alternatives and assertions never count.
pub fn pick(v: &[u64]) -> u64 {
    assert!(!v.is_empty(), "caller contract");
    let first = v.first().copied().unwrap_or(0);
    // hbc-allow: panic (length checked by the assertion above)
    let last = v.last().expect("checked non-empty");
    if first > *last {
        return 0;
    }
    *last
}
