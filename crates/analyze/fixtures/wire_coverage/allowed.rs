// wire-coverage fixture (allowed): every frame kind is exercised by a
// test line, or carries an audited hbc-allow.

pub enum Msg {
    Run { spec_json: String },
    Health,
    // hbc-allow: wire-coverage (reserved kind for the next protocol rev)
    Reserved,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let m = Msg::Run { spec_json: String::new() };
        assert!(matches!(m, Msg::Run { .. }));
        assert!(matches!(Msg::Health, Msg::Health));
    }
}
