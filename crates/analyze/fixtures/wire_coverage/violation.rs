// wire-coverage fixture (violation): the wire enum declares a frame kind
// no test ever touches — its encode/decode path ships unexercised.

pub enum Msg {
    Run { spec_json: String },
    Health,
    // Never constructed, matched, or asserted on any test line.
    Drain,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_and_health_round_trip() {
        let m = Msg::Run { spec_json: String::new() };
        assert!(matches!(m, Msg::Run { .. }));
        assert!(matches!(Msg::Health, Msg::Health));
    }
}
