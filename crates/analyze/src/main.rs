//! `hbc-analyze` CLI.
//!
//! * `cargo run -p hbc-analyze -- check` — run all rules; exit 1 on
//!   findings. `--format json` prints the stable JSON schema instead of
//!   text; `--output <file>` writes the JSON there *in addition to* the
//!   text findings on stdout (how CI gets both problem-matcher lines and
//!   an `analyze.json` artifact from one run).
//! * `cargo run -p hbc-analyze -- baseline` — rewrite the panic-path
//!   baseline from the current source (use after reducing panic sites).
//! * `cargo run -p hbc-analyze -- explain <rule>` — print a rule's full
//!   explanation; with no rule, list all twelve.
//! * `cargo run -p hbc-analyze -- allows` — list every `hbc-allow` /
//!   `hbc-allow-file` audit site with its justification; exits 1 if any
//!   site lacks one.
//!
//! All commands accept an optional `--root <dir>`; by default the
//! workspace root is found by walking up from the current directory.

use hbc_analyze::model::Model;
use hbc_analyze::rules::panic_path::{self, Baseline};
use hbc_analyze::{findings_to_json, rule_info, run_all, workspace, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hbc-analyze <check|baseline|explain|allows> \
                     [--root <dir>] [--format json] [--output <file>] [rule]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut json = false;
    let mut output = None;
    let mut rule_arg = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                if args[i + 1] != "json" {
                    eprintln!("hbc-analyze: unknown format `{}` (only `json`)", args[i + 1]);
                    return ExitCode::from(2);
                }
                json = true;
                i += 2;
            }
            "--output" if i + 1 < args.len() => {
                output = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "check" | "baseline" | "explain" | "allows" if cmd.is_none() => {
                cmd = Some(args[i].clone());
                i += 1;
            }
            other if cmd.as_deref() == Some("explain") && rule_arg.is_none() => {
                rule_arg = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("hbc-analyze: unexpected argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cmd) = cmd else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    // `explain` needs no workspace scan.
    if cmd == "explain" {
        return explain(rule_arg.as_deref());
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current directory");
            match workspace::find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("hbc-analyze: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let files = match workspace::scan(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hbc-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = root.join("crates/analyze/panic_baseline.txt");

    match cmd.as_str() {
        "baseline" => {
            let model = Model::build(&files);
            let (counts, _) = panic_path::count_sites(&model);
            let text = counts.iter().fold(String::new(), |mut s, (k, v)| {
                s.push_str(&format!("{k} {v}\n"));
                s
            });
            let baseline = Baseline::parse(&text);
            if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
                eprintln!("hbc-analyze: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", baseline_path.display());
            for (k, v) in &counts {
                println!("  {k} {v}");
            }
            ExitCode::SUCCESS
        }
        "allows" => allows(&files),
        "check" => {
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(text) => Baseline::parse(&text),
                Err(e) => {
                    eprintln!(
                        "hbc-analyze: missing panic baseline {}: {e} (run `hbc-analyze baseline`)",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let findings = run_all(&files, &baseline);
            let scanned = files.len();
            let rendered = findings_to_json(&findings, scanned);
            if let Some(out_path) = &output {
                if let Err(e) = std::fs::write(out_path, &rendered) {
                    eprintln!("hbc-analyze: cannot write {}: {e}", out_path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                println!("{rendered}");
                return if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            if findings.is_empty() {
                let model = Model::build(&files);
                let (counts, _) = panic_path::count_sites(&model);
                println!("hbc-analyze: {scanned} files clean ({} rules)", RULES.len());
                for (k, v) in &counts {
                    let allowed = baseline.allowed(k);
                    if *v < allowed {
                        println!(
                            "note: {k} has {v} panic sites, below baseline {allowed} — \
                             tighten with `hbc-analyze baseline`"
                        );
                    }
                }
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("hbc-analyze: {} finding(s) in {scanned} files", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}

/// `explain <rule>`: the rule's full explanation; bare `explain` lists all.
fn explain(rule: Option<&str>) -> ExitCode {
    match rule {
        None => {
            println!("hbc-analyze rules ({}):", RULES.len());
            for r in RULES {
                println!("  {:<16} {}", r.name, r.summary);
            }
            println!("\nrun `hbc-analyze explain <rule>` for the full explanation");
            ExitCode::SUCCESS
        }
        Some(name) => match rule_info(name) {
            Some(r) => {
                println!("{} — {}\n", r.name, r.summary);
                println!("{}", r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("hbc-analyze: unknown rule `{name}`; known rules:");
                for r in RULES {
                    eprintln!("  {}", r.name);
                }
                ExitCode::from(2)
            }
        },
    }
}

/// `allows`: every audit site in the workspace, with its justification.
/// A site with no written justification is an error — the audit trail is
/// the point of the annotation.
fn allows(files: &[hbc_analyze::source::SourceFile]) -> ExitCode {
    let mut total = 0usize;
    let mut unjustified = 0usize;
    for file in files {
        for ann in &file.annotations {
            total += 1;
            let scope = if ann.file_level { "file" } else { "line" };
            let justification = if ann.justification.is_empty() {
                unjustified += 1;
                "<NO JUSTIFICATION>"
            } else {
                ann.justification.as_str()
            };
            println!(
                "{}:{}: [{scope}] {} {justification}",
                file.path.display(),
                ann.line,
                ann.rules.join(", "),
            );
        }
    }
    println!("hbc-analyze: {total} allow site(s), {unjustified} without justification");
    if unjustified > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
