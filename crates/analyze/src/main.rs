//! `hbc-analyze` CLI.
//!
//! * `cargo run -p hbc-analyze -- check` — run all rules; exit 1 on findings.
//! * `cargo run -p hbc-analyze -- baseline` — rewrite the panic-path
//!   baseline from the current source (use after reducing panic sites).
//!
//! Both accept an optional `--root <dir>`; by default the workspace root is
//! found by walking up from the current directory.

use hbc_analyze::rules::panic_path::{self, Baseline};
use hbc_analyze::{run_all, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "check" | "baseline" if cmd.is_none() => {
                cmd = Some(args[i].clone());
                i += 1;
            }
            other => {
                eprintln!("hbc-analyze: unexpected argument `{other}`");
                eprintln!("usage: hbc-analyze <check|baseline> [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cmd) = cmd else {
        eprintln!("usage: hbc-analyze <check|baseline> [--root <dir>]");
        return ExitCode::from(2);
    };

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current directory");
            match workspace::find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("hbc-analyze: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let files = match workspace::scan(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hbc-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = root.join("crates/analyze/panic_baseline.txt");

    match cmd.as_str() {
        "baseline" => {
            let (counts, _) = panic_path::count_sites(&files);
            let text = counts.iter().fold(String::new(), |mut s, (k, v)| {
                s.push_str(&format!("{k} {v}\n"));
                s
            });
            let baseline = Baseline::parse(&text);
            if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
                eprintln!("hbc-analyze: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", baseline_path.display());
            for (k, v) in &counts {
                println!("  {k} {v}");
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(text) => Baseline::parse(&text),
                Err(e) => {
                    eprintln!(
                        "hbc-analyze: missing panic baseline {}: {e} (run `hbc-analyze baseline`)",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let findings = run_all(&files, &baseline);
            let scanned = files.len();
            if findings.is_empty() {
                let (counts, _) = panic_path::count_sites(&files);
                println!("hbc-analyze: {scanned} files clean");
                for (k, v) in &counts {
                    let allowed = baseline.allowed(k);
                    if *v < allowed {
                        println!(
                            "note: {k} has {v} panic sites, below baseline {allowed} — \
                             tighten with `hbc-analyze baseline`"
                        );
                    }
                }
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("hbc-analyze: {} finding(s) in {scanned} files", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}
