//! Static analysis for the hbcache workspace.
//!
//! The simulator's core contract — every simulation is a pure function of
//! (configuration, seed) — is not something the compiler checks. This crate
//! does, with seven rules over the workspace source:
//!
//! * [`rules::determinism`] — no nondeterministically ordered collections,
//!   wall clocks, or ambient RNGs in simulation-state crates;
//! * [`rules::exec_merge`] — no `Mutex`/`RwLock`/channel result merging in
//!   simulation crates: the parallel experiment engine collects results by
//!   cell index, never arrival order;
//! * [`rules::units`] — public `hbc-timing` functions speak the FO4 /
//!   nanosecond / cycle newtypes, not raw `f64`/`u64`;
//! * [`rules::config_validate`] — every `*Config` struct has a `validate()`
//!   and the crate actually calls validation somewhere;
//! * [`rules::panic_path`] — `unwrap`/`expect`/`panic!` in non-test code of
//!   the gated crates is held to a checked-in baseline that may only
//!   shrink;
//! * [`rules::probe_naming`] — literal probe names registered on the
//!   `hbc-probe` registry are hierarchical dotted lowercase and globally
//!   unique;
//! * [`rules::serve_io_panic`] — in `hbc-serve`, no bare `unwrap`/`expect`
//!   on socket or filesystem operations: a long-lived server must turn I/O
//!   failures into typed errors, never aborts.
//!
//! Audited exceptions are written in the source as `// hbc-allow: <rule>`
//! (same line or the line above) or `// hbc-allow-file: <rule>` for a whole
//! file. The pass is a line/token scanner, not a full parser: it strips
//! comments, strings, and `#[cfg(test)]` blocks, then matches identifier
//! tokens — deliberately simple enough to audit by eye and dependency-free
//! so it builds offline.
//!
//! Run it as `cargo run -p hbc-analyze -- check`.

#![warn(missing_docs)]

pub mod rules;
pub mod source;
pub mod workspace;

use std::fmt;
use std::path::PathBuf;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (`determinism`, `exec-merge`, `units`,
    /// `config-validate`, `panic`, `probe-naming`).
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// Crates that hold simulation state and are subject to the determinism
/// rules. `hbc-bench` (reporting, wall-clock benchmarks), `hbc-ptest`
/// (test harness), and this crate are deliberately outside the contract.
pub const SIM_CRATES: &[&str] =
    &["hbc-timing", "hbc-isa", "hbc-workloads", "hbc-mem", "hbc-cpu", "hbc-core", "hbc-probe"];

/// Crates gated by the panic-path baseline: the simulation crates plus the
/// long-lived / user-facing processes (`hbc-bench` binaries, the `hbc-serve`
/// service), where an `unwrap` turns a bad input or full disk into an abort.
/// `hbc-ptest` and this crate stay exempt (test harness and dev tool).
pub const PANIC_CRATES: &[&str] = &[
    "hbc-timing",
    "hbc-isa",
    "hbc-workloads",
    "hbc-mem",
    "hbc-cpu",
    "hbc-core",
    "hbc-probe",
    "hbc-bench",
    "hbc-serve",
];

/// Runs every rule over `files`; findings are sorted by path and line.
pub fn run_all(
    files: &[source::SourceFile],
    baseline: &rules::panic_path::Baseline,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::determinism::check(files));
    findings.extend(rules::exec_merge::check(files));
    findings.extend(rules::units::check(files));
    findings.extend(rules::config_validate::check(files));
    findings.extend(rules::panic_path::check(files, baseline));
    findings.extend(rules::probe_naming::check(files));
    findings.extend(rules::serve_io_panic::check(files));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}
