//! Static analysis for the hbcache workspace.
//!
//! The simulator's core contract — every simulation is a pure function of
//! (configuration, seed), served by a process that never deadlocks and
//! never silently drops a counter — is not something the compiler checks.
//! This crate does, with twelve rules over a small semantic model of the
//! workspace:
//!
//! * [`lexer`] turns each file into a token stream with line numbers and
//!   brace-nesting depth;
//! * [`model`] extracts functions, impls, struct fields, and
//!   conservatively resolved intra-crate call edges, plus a per-crate
//!   symbol table;
//! * [`source`] remains the line model: `hbc-allow` annotations,
//!   `#[cfg(test)]` boundaries, and test-tree marking.
//!
//! The rules themselves are listed in [`RULES`] — the single source of
//! truth for rule names, one-line summaries, and the long explanations
//! behind `hbc-analyze explain <rule>`. See each rule module under
//! [`rules`] for the full story.
//!
//! Audited exceptions are written in the source as `// hbc-allow: <rule>
//! (justification)` (same line or the line above) or `// hbc-allow-file:
//! <rule>` for a whole file; `hbc-analyze allows` lists every such site
//! for review. Everything is dependency-free so the pass builds offline.
//!
//! Run it as `cargo run -p hbc-analyze -- check` (add `--format json` for
//! the machine-readable schema CI uploads).

#![warn(missing_docs)]

pub mod lexer;
pub mod model;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fmt;
use std::path::PathBuf;

/// One analysis rule: its stable name, a one-line summary, and the long
/// explanation printed by `hbc-analyze explain <rule>`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule name as used in findings, `hbc-allow` annotations, and
    /// the JSON output.
    pub name: &'static str,
    /// One-line summary (README rule table, `explain` listing).
    pub summary: &'static str,
    /// The full explanation: what fires, why it matters, how to fix or
    /// audit a finding.
    pub explain: &'static str,
}

/// The twelve rules, in the order `run_all` executes them. This table is the
/// single source of truth: the crate docs, the CLI's `explain`, the JSON
/// schema's `rules` array, and the README table all derive from it.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "determinism",
        summary: "no nondeterministic collections, wall clocks, or ambient RNGs in sim crates",
        explain: "Simulation-state crates must not use HashMap/HashSet (randomized iteration \
                  order), Instant/SystemTime/std::time (wall clock), or rand/thread_rng \
                  (unseeded RNG). A simulation is a pure function of (config, seed); any of \
                  these can silently break reproducibility. Use BTreeMap/BTreeSet, simulated \
                  cycles, and the seeded workload RNG instead.",
    },
    RuleInfo {
        name: "exec-merge",
        summary: "no Mutex/RwLock/channel result merging in simulation crates",
        explain: "The parallel experiment engine guarantees bit-identical output by collecting \
                  (cell index, result) pairs and writing slots after the join. Mutex/RwLock \
                  accumulators, Condvar wakeups, and mpsc channels order results by arrival — \
                  host-scheduling nondeterminism the engine exists to exclude. Scheduling-only \
                  atomics remain fine: they never carry results.",
    },
    RuleInfo {
        name: "units",
        summary: "public hbc-timing functions speak unit newtypes, not raw f64/u64",
        explain: "The paper's methodology depends on keeping FO4 delays, nanoseconds, and cycle \
                  counts distinct; a raw f64/u64 in a public hbc-timing signature is where they \
                  get confused. Constructors (new, from_*) and raw accessors (get) are exempt — \
                  they are the conversion boundary. Use Fo4/Nanoseconds/CacheSize or audit \
                  with hbc-allow.",
    },
    RuleInfo {
        name: "config-validate",
        summary: "every *Config struct has a validate() that the crate actually calls",
        explain: "A config struct without a checked validate() is how impossible cache \
                  geometries (zero banks, non-power-of-two lines) sneak into simulations and \
                  produce garbage numbers instead of errors. The rule requires an inherent \
                  `fn validate` per *Config struct and at least one non-test `.validate()` \
                  call in the crate.",
    },
    RuleInfo {
        name: "panic",
        summary: "unwrap/expect/panic! sites in gated crates held to a shrinking baseline",
        explain: "Non-test unwrap()/expect()/panic!-family sites in the gated crates are \
                  counted per crate against crates/analyze/panic_baseline.txt. The gate is \
                  one-directional: counts may only go down, and `hbc-analyze baseline` \
                  re-tightens the file after a genuine reduction. Plain assert! is not \
                  counted — assertions state contracts; the rule targets panicking error \
                  handling.",
    },
    RuleInfo {
        name: "probe-naming",
        summary: "literal probe names are hierarchical dotted lowercase and globally unique",
        explain: "The probe registry is one flat namespace shared by every crate; a typo'd or \
                  colliding name silently splits (or merges) a statistic instead of failing. \
                  Literal names at counter(\"…\")/histogram(\"…\") sites must match \
                  ^[a-z0-9_]+(\\.[a-z0-9_]+)+$ and be registered from exactly one source site. \
                  Runtime-built names are covered by the registry's own validation assert.",
    },
    RuleInfo {
        name: "serve-io-panic",
        summary: "no bare unwrap/expect on socket or filesystem operations in the serving \
                  crates (hbc-serve, hbc-cluster)",
        explain: "The services are long-lived processes handling untrusted input over real \
                  sockets: connection resets, full disks, and dropped cache files are expected \
                  conditions, and an unwrap on any of them kills a worker instead of producing \
                  a 4xx/5xx, a degraded cache, or a failover. Statements that touch \
                  socket/filesystem I/O must propagate typed errors. No baseline: a hit is \
                  always a finding.",
    },
    RuleInfo {
        name: "lock-discipline",
        summary: "no lock held across blocking I/O; no lock-order cycles (AB/BA deadlocks)",
        explain: "In the serving and execution crates, a mutex guard held across a blocking \
                  socket/filesystem call serializes the server on peer latency (one slow \
                  client wedges every thread wanting the lock), and two locks taken in \
                  opposite orders on different paths deadlock under contention. The rule \
                  tracks guard lifetimes through the semantic model (let-bound guards die at \
                  scope exit or drop(); temporaries at end of statement), follows resolved \
                  intra-crate call edges, flags blocking calls made while a guard is live, \
                  and reports any cycle in the per-crate lock-acquisition-order graph. Fix by \
                  shrinking critical sections (collect, drop, then do I/O) or by making every \
                  path acquire locks in one canonical order.",
    },
    RuleInfo {
        name: "probe-coverage",
        summary: "probe registrations/reads cross-check; span stages must be in STAGE_NAMES",
        explain: "A counter registered but never incremented reads zero in /metrics forever; \
                  a read of a name nothing registers silently yields nothing. The rule \
                  cross-references every literal probe name in the workspace: registration \
                  sites (counter(\"…\")/histogram(\"…\")) must write through the handle \
                  (.inc/.add/.set/.record) or bind it for later writes, exact reads \
                  (get(\"…\")/get_histogram(\"…\")) and prefix reads (scoped(\"…\")) must \
                  match a registered name, and a name must not be registered as a counter \
                  but read as a histogram (or vice versa). Span stages get the same \
                  closed-world check: a literal stage at an enter(\"…\")/record_at(\"…\")/\
                  record_since(\"…\")/record_linked(\"…\") site must appear in the \
                  STAGE_NAMES table, which is \
                  read straight from its initializer — an unregistered stage panics debug \
                  builds at the recording site. Runtime-built names are outside the scan; \
                  audit those reads with hbc-allow.",
    },
    RuleInfo {
        name: "event-horizon",
        summary: "sim types with tick/cycle methods must answer next_event queries",
        explain: "The simulation loop fast-forwards through stall spans by taking the \
                  minimum of every timed component's `next_event(now)` and jumping there. \
                  The jump is only sound if the query surface is complete: a type in a \
                  simulation crate with a `tick`/`step`/`begin_cycle`/`end_cycle` method \
                  but no `next_event` is invisible to the horizon, and the engine may skip \
                  straight past its next state change. Implement \
                  `fn next_event(&self, now: u64) -> Option<u64>` — untimed components \
                  return None, documenting the decision — or audit a component the loop \
                  drains inline with hbc-allow.",
    },
    RuleInfo {
        name: "cast-truncation",
        summary: "no narrowing `as` casts on cycle/address/stat values in sim crates",
        explain: "A cycle count, address, or statistic squeezed through `as u32` (or \
                  narrower) truncates silently at scale — exactly the bug class the Cycle/\
                  Addr newtypes exist to prevent. In simulation-state crates, a narrowing \
                  `as` cast whose source expression mentions a cycle/address/stat-ish \
                  identifier is a finding. Fix by keeping the value in its newtype or u64, \
                  converting with u64::from/try_from at the boundary, or auditing a \
                  genuinely bounded cast with hbc-allow.",
    },
    RuleInfo {
        name: "wire-coverage",
        summary: "every wire-protocol frame kind (Msg variant) is exercised by a test",
        explain: "The cluster wire protocol is a closed enum: each Msg variant is one frame \
                  kind with its own encode/decode path. The property suite's random-message \
                  generator and round-trip lists are maintained by hand, so a newly added \
                  frame kind can compile and ship without ever passing through the codec \
                  under test — its decoder path stays dead until a peer sends it in \
                  production. The rule requires every variant of a non-test `enum Msg` to be \
                  mentioned as `Msg::<Variant>` on at least one test line (construction, \
                  match, or assertion all count). Add new kinds to the wire property suite, \
                  or audit a deliberately untested variant with hbc-allow.",
    },
];

/// Looks up a rule by name in [`RULES`].
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired — one of the names in [`RULES`].
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// Crates that hold simulation state and are subject to the determinism
/// rules. `hbc-bench` (reporting, wall-clock benchmarks), `hbc-ptest`
/// (test harness), and this crate are deliberately outside the contract.
pub const SIM_CRATES: &[&str] =
    &["hbc-timing", "hbc-isa", "hbc-workloads", "hbc-mem", "hbc-cpu", "hbc-core", "hbc-probe"];

/// Crates gated by the panic-path baseline: the simulation crates plus the
/// long-lived / user-facing processes (`hbc-bench` binaries, the `hbc-serve`
/// service), where an `unwrap` turns a bad input or full disk into an abort.
/// `hbc-ptest` and this crate stay exempt (test harness and dev tool).
pub const PANIC_CRATES: &[&str] = &[
    "hbc-timing",
    "hbc-isa",
    "hbc-workloads",
    "hbc-mem",
    "hbc-cpu",
    "hbc-core",
    "hbc-probe",
    "hbc-bench",
    "hbc-serve",
    "hbc-cluster",
];

/// Crates whose locking is held to the `lock-discipline` rule: the
/// long-lived servers and the parallel execution engine's home crate.
pub const LOCK_CRATES: &[&str] = &["hbc-serve", "hbc-cluster", "hbc-core"];

/// Runs every rule over `files`; findings are sorted by path and line.
pub fn run_all(
    files: &[source::SourceFile],
    baseline: &rules::panic_path::Baseline,
) -> Vec<Finding> {
    let model = model::Model::build(files);
    let mut findings = Vec::new();
    findings.extend(rules::determinism::check(&model));
    findings.extend(rules::exec_merge::check(&model));
    findings.extend(rules::units::check(&model));
    findings.extend(rules::config_validate::check(&model));
    findings.extend(rules::panic_path::check(&model, baseline));
    findings.extend(rules::probe_naming::check(&model));
    findings.extend(rules::serve_io_panic::check(&model));
    findings.extend(rules::lock_discipline::check(&model));
    findings.extend(rules::probe_coverage::check(&model));
    findings.extend(rules::event_horizon::check(&model));
    findings.extend(rules::cast_truncation::check(&model));
    findings.extend(rules::wire_coverage::check(&model));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the stable machine-readable schema consumed by CI
/// (uploaded as `analyze.json`). Schema, pinned by a snapshot test:
///
/// ```json
/// {
///   "version": 1,
///   "rules": ["determinism", …],
///   "files_scanned": N,
///   "findings": [{"rule": …, "path": …, "line": N, "message": …}, …]
/// }
/// ```
///
/// `version` increments on any breaking change to this shape. Paths are
/// workspace-relative with forward slashes. Findings appear in the same
/// (path, line) order `run_all` returns.
pub fn findings_to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\"version\":1,\"rules\":[");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", rule.name));
    }
    out.push_str(&format!("],\"files_scanned\":{files_scanned},\"findings\":["));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let path = f.path.to_string_lossy().replace('\\', "/");
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&path),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_table_is_complete_and_consistent() {
        assert_eq!(RULES.len(), 12);
        // Names are unique, kebab-case, and resolvable.
        for (i, rule) in RULES.iter().enumerate() {
            assert!(rule.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(rule_info(rule.name).is_some());
            assert!(RULES[..i].iter().all(|prev| prev.name != rule.name));
            assert!(!rule.summary.is_empty() && !rule.explain.is_empty());
        }
        assert!(rule_info("no-such-rule").is_none());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
