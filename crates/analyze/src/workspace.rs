//! Workspace discovery: find the root, enumerate crates, scan sources.

use crate::source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && std::fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace Cargo.toml above {}", start.display()),
            ));
        }
    }
}

/// Reads the `name = "…"` field of a crate manifest.
fn package_name(manifest: &Path) -> io::Result<String> {
    for line in std::fs::read_to_string(manifest)?.lines() {
        if let Some(rest) = line.trim().strip_prefix("name") {
            if let Some(eq) = rest.trim_start().strip_prefix('=') {
                return Ok(eq.trim().trim_matches('"').to_string());
            }
        }
    }
    Err(io::Error::new(io::ErrorKind::InvalidData, format!("no name in {}", manifest.display())))
}

/// Scans every `.rs` file of every workspace member (the root package and
/// `crates/*`), returning parsed [`SourceFile`]s with workspace-relative
/// paths, sorted by path. Analyzer fixtures and `target/` are skipped;
/// `tests/`, `benches/`, and `examples/` trees are marked as test code.
pub fn scan(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut members = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.join("Cargo.toml").is_file() {
                members.push(path);
            }
        }
    }
    members.sort();

    let mut files = Vec::new();
    for member in &members {
        let crate_name = package_name(&member.join("Cargo.toml"))?;
        for sub in ["src", "tests", "benches", "examples"] {
            let dir = member.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let all_test = sub != "src";
            let mut rs_files = Vec::new();
            collect_rs(&dir, &mut rs_files)?;
            rs_files.sort();
            for file in rs_files {
                let text = std::fs::read_to_string(&file)?;
                let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
                files.push(SourceFile::parse(rel, &crate_name, &text, all_test));
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Recursively collects `.rs` files, skipping `target` and `fixtures`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "fixtures" && !name.starts_with('.') {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
