//! A dependency-free Rust lexer producing the token stream the semantic
//! model is built on.
//!
//! The old analyzer was a per-line scanner: it could not see a call chain
//! split across lines, a signature wrapped at 100 columns, or a string
//! literal containing a newline. The lexer fixes that at the root by
//! tokenizing whole files: every token carries its 1-based source line and
//! the brace-nesting depth it appears at, so rules can reason about
//! statements, scopes, and items instead of lines.
//!
//! Scope is deliberately limited to what the rules need: identifiers,
//! lifetimes, string/char/numeric literals, and single-character
//! punctuation. Comments are dropped (annotation parsing stays in
//! [`crate::source`], which remains the line model for `hbc-allow` and
//! `#[cfg(test)]` tracking). String literals *retain their contents* —
//! unlike the line model, which blanks them — because rules like
//! `probe-naming` and `probe-coverage` match on literal probe names.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`).
    Ident,
    /// A lifetime (`'static`, `'a`) — kept distinct so char-literal
    /// handling never swallows one.
    Lifetime,
    /// A string literal (plain or raw); `text` holds the *contents*,
    /// without delimiters.
    Str,
    /// A char literal; `text` holds the contents.
    Char,
    /// A numeric literal (`42`, `0xff`, `1_000`, `2.5e3`).
    Num,
    /// A single punctuation character (`{`, `.`, `;`, …).
    Punct,
}

/// One token of a lexed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text (contents only for string/char literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Brace-nesting depth the token appears at. Both `{` and `}` report
    /// the depth *outside* the block they delimit, so a block's delimiters
    /// and its surrounding code agree.
    pub depth: u32,
}

impl Tok {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for any identifier token.
    pub fn is_ident_kind(&self) -> bool {
        self.kind == TokKind::Ident
    }
}

/// Lexes `text` into a token stream. Comments (line, nested block, doc)
/// are dropped; everything else becomes a [`Tok`]. The lexer never fails:
/// malformed input degrades to punctuation tokens, which is the right
/// behavior for a linter that must not crash on the code it is judging.
pub fn lex(text: &str) -> Vec<Tok> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut depth = 0u32;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut nest = 1u32;
                i += 2;
                while i < chars.len() && nest > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        nest -= 1;
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        nest += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let mut contents = String::new();
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            contents.push(chars[i]);
                            if let Some(&next) = chars.get(i + 1) {
                                contents.push(next);
                                if next == '\n' {
                                    line += 1;
                                }
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            contents.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok { kind: TokKind::Str, text: contents, line: start_line, depth });
            }
            'r' if raw_str_hashes(&chars, i).is_some() => {
                let hashes = raw_str_hashes(&chars, i).unwrap_or(0);
                let start_line = line;
                let mut contents = String::new();
                i += 2 + hashes; // consume `r`, hashes, opening quote
                while i < chars.len() {
                    if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                        i += 1 + hashes;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    contents.push(chars[i]);
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Str, text: contents, line: start_line, depth });
            }
            '\'' => {
                // Lifetime or char literal — same disambiguation problem
                // the line model has, solved the same way: `'x'` is a char
                // only if a closing quote follows within the literal.
                if chars.get(i + 1) == Some(&'\\') {
                    let mut j = i + 2;
                    let mut contents = String::from("\\");
                    while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                        contents.push(chars[j]);
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Char, text: contents, line, depth });
                    i = j + 1;
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    let contents = chars.get(i + 1).map(|c| c.to_string()).unwrap_or_default();
                    toks.push(Tok { kind: TokKind::Char, text: contents, line, depth });
                    i += 3;
                } else {
                    // A lifetime: consume the identifier after the quote.
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    let text: String =
                        std::iter::once('\'').chain(chars[start..j].iter().copied()).collect();
                    toks.push(Tok { kind: TokKind::Lifetime, text, line, depth });
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Ident, text, line, depth });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || chars[i] == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Num, text, line, depth });
            }
            '{' => {
                toks.push(Tok { kind: TokKind::Punct, text: "{".to_string(), line, depth });
                depth += 1;
                i += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                toks.push(Tok { kind: TokKind::Punct, text: "}".to_string(), line, depth });
                i += 1;
            }
            c => {
                toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, depth });
                i += 1;
            }
        }
    }
    toks
}

/// If `chars[at]` is the `r` of a raw-string opener (`r"`, `r#"`, …),
/// returns the hash count. Rejects identifiers that merely start with `r`
/// by requiring the previous character not be part of an identifier.
fn raw_str_hashes(chars: &[char], at: usize) -> Option<usize> {
    if at > 0 && chars.get(at - 1).is_some_and(|p| p.is_alphanumeric() || *p == '_') {
        return None;
    }
    let mut hashes = 0;
    while chars.get(at + 1 + hashes) == Some(&'#') {
        hashes += 1;
    }
    (chars.get(at + 1 + hashes) == Some(&'"')).then_some(hashes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        lex(text).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = lex("use std::collections::HashMap;");
        assert_eq!(
            idents("use std::collections::HashMap;"),
            ["use", "std", "collections", "HashMap"]
        );
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn comments_are_dropped_strings_kept() {
        let toks = lex("let x = \"HashMap\"; // HashMap comment\n/* HashMap /* nested */ */ y");
        assert_eq!(idents("let x = \"HashMap\"; // HashMap comment\n/* b */ y"), ["let", "x", "y"]);
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "HashMap");
    }

    #[test]
    fn raw_strings_and_multiline_strings_track_lines() {
        let toks = lex("let a = r#\"x \" y\"#;\nlet b = \"one\ntwo\";\nfn f() {}");
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "x \" y");
        assert_eq!(strs[1].text, "one\ntwo");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4, "multi-line string advanced the line counter");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("let c: char = '{'; let s: &'static str = \"\"; let e = '\\n';");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "{"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "\\n"));
        // The `{` inside the char literal must not disturb brace depth.
        assert!(toks.iter().all(|t| t.depth == 0));
    }

    #[test]
    fn depth_tracks_nesting() {
        let toks = lex("fn f() { if x { y(); } }");
        let f = toks.iter().find(|t| t.is_ident("f")).unwrap();
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(f.depth, 0);
        assert_eq!(y.depth, 2);
        let closes: Vec<u32> = toks.iter().filter(|t| t.is_punct('}')).map(|t| t.depth).collect();
        assert_eq!(closes, [1, 0], "braces report the depth outside their block");
    }

    #[test]
    fn numbers_lex_as_one_token() {
        let toks = lex("let x = 1_000 + 0xff + 2.5e3;");
        let nums: Vec<String> =
            toks.into_iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text).collect();
        assert_eq!(nums, ["1_000", "0xff", "2.5e3"]);
    }
}
