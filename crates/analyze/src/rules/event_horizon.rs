//! Rule `event-horizon`: every timed component exposes its schedule.
//!
//! The simulation loop fast-forwards through stall spans by asking every
//! timed component for its next scheduled event (`next_event(now) ->
//! Option<Cycle>`) and jumping to the minimum. The contract only holds if
//! the query surface is complete: a type that participates in the
//! per-cycle protocol (a `tick`/`step`/`begin_cycle`/`end_cycle` method)
//! but answers no `next_event` query is invisible to the horizon — the
//! engine could skip straight past its state change and silently corrupt
//! the simulation.
//!
//! The rule groups inherent methods by `(crate, impl target)` across the
//! simulation crates: any type with a timed method must also define
//! `next_event` (untimed components return `None`, documenting the
//! decision) or carry an audited `hbc-allow: event-horizon`.

use crate::model::Model;
use crate::{Finding, SIM_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Method names that mark a type as participating in the cycle protocol.
const TIMED_METHODS: &[&str] = &["tick", "step", "begin_cycle", "end_cycle"];

/// Timed-method sites for one `(crate, impl target)`: file index, line,
/// and the method name that made the type timed.
type TimedSites<'m> = BTreeMap<(&'m str, &'m str), Vec<(usize, usize, &'m str)>>;

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    // (crate, impl target) → answers next_event; and every timed-method
    // site per type. Impl blocks may be split across a crate's files, so
    // grouping is by crate, not by file.
    let mut answers: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut timed: TimedSites<'_> = BTreeMap::new();
    for (fi, src) in model.sources.iter().enumerate() {
        if !SIM_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        for f in &model.files[fi].functions {
            let Some(target) = &f.impl_target else { continue };
            if model.is_test_line(fi, f.line) {
                continue;
            }
            let key = (src.crate_name.as_str(), target.as_str());
            if f.name == "next_event" {
                answers.insert(key);
            } else if TIMED_METHODS.contains(&f.name.as_str()) {
                timed.entry(key).or_default().push((fi, f.line, f.name.as_str()));
            }
        }
    }
    let mut findings = Vec::new();
    for ((_, target), sites) in timed.iter().filter(|(key, _)| !answers.contains(*key)) {
        for &(fi, line, method) in sites {
            if model.allowed(fi, line, "event-horizon") {
                continue;
            }
            findings.push(Finding {
                rule: "event-horizon",
                path: model.sources[fi].path.clone(),
                line,
                message: format!(
                    "`{target}` has a timed `{method}` method but no `next_event` — the \
                     event-horizon engine cannot see its schedule and may skip past a state \
                     change; implement `fn next_event(&self, now: u64) -> Option<u64>` \
                     (return None for untimed components) or audit with \
                     `hbc-allow: event-horizon`"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run_in(crate_name: &str, text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), crate_name, text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn timed_type_without_next_event_fires() {
        let f = run_in(
            "hbc-mem",
            "impl RowBuffer {\n    pub fn begin_cycle(&mut self, now: u64) {}\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("RowBuffer"));
        assert!(f[0].message.contains("begin_cycle"));
    }

    #[test]
    fn next_event_in_a_sibling_impl_block_satisfies() {
        let ok = "impl RowBuffer {\n    pub fn tick(&mut self) {}\n}\n\
                  impl RowBuffer {\n    pub fn next_event(&self, now: u64) -> Option<u64> \
                  { None }\n}\n";
        assert!(run_in("hbc-mem", ok).is_empty());
    }

    #[test]
    fn untimed_types_and_free_functions_are_exempt() {
        let ok = "impl Config {\n    pub fn validate(&self) {}\n}\n\
                  pub fn step(x: u64) -> u64 { x }\n";
        assert!(run_in("hbc-mem", ok).is_empty());
    }

    #[test]
    fn non_sim_crates_tests_and_allows_are_exempt() {
        let timed = "impl Driver {\n    pub fn tick(&mut self) {}\n}\n";
        assert!(run_in("hbc-bench", timed).is_empty());
        assert!(run_in(
            "hbc-cpu",
            "#[cfg(test)]\nmod t {\n    impl Fake {\n        fn tick(&mut self) {}\n    }\n}\n"
        )
        .is_empty());
        assert!(run_in(
            "hbc-cpu",
            "impl Fake {\n    // hbc-allow: event-horizon (drained inline by the owner)\n    \
             fn tick(&mut self) {}\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join("event_horizon");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run_in("hbc-mem", &bad).is_empty(), "violation.rs should fire");
        assert!(run_in("hbc-mem", &ok).is_empty(), "allowed.rs should be clean");
    }
}
