//! Rule `exec-merge`: simulation crates must not merge parallel results
//! through shared-mutable synchronization.
//!
//! The `hbc-exec` engine's bit-identical guarantee rests on its merge
//! discipline: workers buffer `(cell index, result)` pairs privately and
//! the engine writes each result into slot `index` after the join. A
//! `Mutex`-guarded accumulator, an `mpsc` channel drained in arrival
//! order, or a `RwLock`-shared table would all make the output depend on
//! host scheduling — exactly the nondeterminism the engine exists to
//! exclude. This rule bans those primitives from every simulation-state
//! crate so the property cannot erode quietly; scheduling-only atomics
//! (the work-stealing cell counter) remain fine because they never carry
//! results.

use crate::lexer::TokKind;
use crate::model::Model;
use crate::{Finding, SIM_CRATES};

/// Identifier tokens forbidden in simulation crates, with the suggestion
/// reported alongside each.
const FORBIDDEN: &[(&str, &str)] = &[
    ("Mutex", "shared-mutable merge orders results by arrival; collect (index, result) pairs and write slots after the join"),
    ("RwLock", "shared-mutable merge orders results by arrival; collect (index, result) pairs and write slots after the join"),
    ("Condvar", "wakeup order is scheduler-dependent; workers must buffer results privately until the join"),
    ("mpsc", "channel receive order is arrival order; collect (index, result) pairs and write slots after the join"),
    ("channel", "channel receive order is arrival order; collect (index, result) pairs and write slots after the join"),
];

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        if !SIM_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        for tok in &fm.tokens {
            if tok.kind != TokKind::Ident
                || model.is_test_line(fi, tok.line)
                || model.allowed(fi, tok.line, "exec-merge")
            {
                continue;
            }
            if let Some((name, why)) = FORBIDDEN.iter().find(|(name, _)| *name == tok.text) {
                findings.push(Finding {
                    rule: "exec-merge",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!("`{name}` in {}: {why}", src.crate_name),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(crate_name: &str, text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), crate_name, text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn flags_mutex_in_sim_crate() {
        let f = run("hbc-core", "use std::sync::Mutex;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("(index, result)"));
    }

    #[test]
    fn flags_channels() {
        assert_eq!(run("hbc-core", "use std::sync::mpsc;\n").len(), 1);
        assert_eq!(run("hbc-core", "let (tx, rx) = mpsc::channel();\n").len(), 2);
    }

    #[test]
    fn atomics_and_scoped_threads_pass() {
        let ok = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                  let next = AtomicUsize::new(0);\n\
                  std::thread::scope(|scope| {});\n";
        assert!(run("hbc-core", ok).is_empty());
    }

    #[test]
    fn ignores_non_sim_crates_and_tests() {
        assert!(run("hbc-bench", "use std::sync::Mutex;\n").is_empty());
        assert!(run("hbc-core", "#[cfg(test)]\nmod t {\n use std::sync::Mutex;\n}\n").is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let f = run("hbc-core", "use std::sync::Mutex; // hbc-allow: exec-merge\n");
        assert!(f.is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        assert!(run("hbc-core", "let s = \"Mutex\";\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/exec_merge");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run("hbc-core", &bad).is_empty());
        assert!(run("hbc-core", &ok).is_empty());
    }
}
