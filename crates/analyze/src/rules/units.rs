//! Rule `units`: public `hbc-timing` functions must speak the crate's
//! unit newtypes (`Fo4`, `Nanoseconds`, `CacheSize`, …), not raw `f64` or
//! `u64`.
//!
//! The paper's methodology lives and dies on keeping FO4 delays,
//! nanoseconds, and cycle counts distinct; a raw `f64` at a public
//! boundary is where those get confused. Constructors (`new`, `from_*`)
//! and raw accessors (`get`) are exempt — they *are* the conversion
//! boundary. Anything else raw needs an audited `// hbc-allow: units`.
//!
//! Ported to the semantic model: the rule walks [`crate::model::Function`]
//! items and inspects their signature token ranges, so multi-line
//! signatures and `where` clauses need no line heuristics.

use crate::model::Model;
use crate::Finding;

/// Crate whose public API is held to unit discipline.
const UNITS_CRATE: &str = "hbc-timing";

/// Raw numeric tokens that should not appear in public signatures.
const RAW: &[&str] = &["f64", "u64"];

fn exempt(name: &str) -> bool {
    name == "new" || name == "get" || name.starts_with("from_")
}

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, func) in model.crate_functions(UNITS_CRATE) {
        if !func.is_pub
            || exempt(&func.name)
            || model.is_test_line(fi, func.line)
            || model.allowed(fi, func.line, "units")
        {
            continue;
        }
        let toks = &model.files[fi].tokens;
        if let Some(raw) = toks[func.sig.clone()].iter().find(|t| RAW.contains(&t.text.as_str())) {
            findings.push(Finding {
                rule: "units",
                path: model.sources[fi].path.clone(),
                line: func.line,
                message: format!(
                    "pub fn `{}` exposes raw `{}`; use the unit newtypes \
                     (Fo4, Nanoseconds, CacheSize) or justify with hbc-allow",
                    func.name, raw.text
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-timing", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn flags_raw_f64_in_pub_fn() {
        let f = run("pub fn speed(&self) -> f64 {\n    self.x\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("speed"));
    }

    #[test]
    fn multi_line_signatures_are_seen() {
        let f = run("pub fn blend(\n    a: Fo4,\n    b: u64,\n) -> Fo4 {\n}\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn private_fns_are_not_gated() {
        assert!(run("fn helper(x: f64) -> f64 { x }\n").is_empty());
    }

    #[test]
    fn body_raws_do_not_fire() {
        assert!(run(
            "pub fn scale(&self) -> Fo4 {\n    let raw: f64 = 2.0;\n    Fo4::new(raw)\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn constructors_and_accessors_exempt() {
        assert!(run("pub fn new(v: f64) -> Self { Self(v) }\n").is_empty());
        assert!(run("pub fn get(&self) -> f64 { self.0 }\n").is_empty());
        assert!(run("pub fn from_bytes(b: u64) -> Self { Self(b) }\n").is_empty());
    }

    #[test]
    fn newtype_signatures_pass_and_other_crates_ignored() {
        assert!(run("pub fn to_ns(&self, t: &Technology) -> Nanoseconds {\n}\n").is_empty());
        let files =
            [SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", "pub fn x() -> u64 {}", false)];
        assert!(check(&Model::build(&files)).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        assert!(run("// hbc-allow: units (cycle counts are the native type)\npub fn cycles(&self) -> u64 {\n}\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/units");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
