//! Rule `units`: public `hbc-timing` functions must speak the crate's
//! unit newtypes (`Fo4`, `Nanoseconds`, `CacheSize`, …), not raw `f64` or
//! `u64`.
//!
//! The paper's methodology lives and dies on keeping FO4 delays,
//! nanoseconds, and cycle counts distinct; a raw `f64` at a public
//! boundary is where those get confused. Constructors (`new`, `from_*`)
//! and raw accessors (`get`) are exempt — they *are* the conversion
//! boundary. Anything else raw needs an audited `// hbc-allow: units`.

use crate::source::{tokens, SourceFile};
use crate::Finding;

/// Crate whose public API is held to unit discipline.
const UNITS_CRATE: &str = "hbc-timing";

/// Raw numeric tokens that should not appear in public signatures.
const RAW: &[&str] = &["f64", "u64"];

fn exempt(name: &str) -> bool {
    name == "new" || name == "get" || name.starts_with("from_")
}

/// Runs the rule over all files.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.crate_name != UNITS_CRATE {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_test || file.allowed(lineno, "units") {
                continue;
            }
            let toks: Vec<(usize, &str)> = tokens(&line.code).collect();
            let Some(fn_pos) =
                toks.windows(2).position(|w| w[0].1 == "pub" && w[1].1 == "fn").map(|p| p + 1)
            else {
                continue;
            };
            let Some(&(_, name)) = toks.get(fn_pos + 1) else { continue };
            if exempt(name) {
                continue;
            }
            // Collect the signature from `fn` to the body brace or `;`,
            // spanning lines for multi-line signatures.
            let mut sig = String::new();
            for cont in &file.lines[idx..] {
                let code = &cont.code;
                let end = code.find(['{', ';']).unwrap_or(code.len());
                sig.push_str(&code[..end]);
                sig.push(' ');
                if code.find(['{', ';']).is_some() {
                    break;
                }
            }
            for (_, tok) in tokens(&sig) {
                if RAW.contains(&tok) {
                    findings.push(Finding {
                        rule: "units",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "pub fn `{name}` exposes raw `{tok}`; use the unit newtypes \
                             (Fo4, Nanoseconds, CacheSize) or justify with hbc-allow"
                        ),
                    });
                    break;
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        check(&[SourceFile::parse(PathBuf::from("f.rs"), "hbc-timing", text, false)])
    }

    #[test]
    fn flags_raw_f64_in_pub_fn() {
        let f = run("pub fn speed(&self) -> f64 {\n    self.x\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("speed"));
    }

    #[test]
    fn multi_line_signatures_are_seen() {
        let f = run("pub fn blend(\n    a: Fo4,\n    b: u64,\n) -> Fo4 {\n}\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn constructors_and_accessors_exempt() {
        assert!(run("pub fn new(v: f64) -> Self { Self(v) }\n").is_empty());
        assert!(run("pub fn get(&self) -> f64 { self.0 }\n").is_empty());
        assert!(run("pub fn from_bytes(b: u64) -> Self { Self(b) }\n").is_empty());
    }

    #[test]
    fn newtype_signatures_pass_and_other_crates_ignored() {
        assert!(run("pub fn to_ns(&self, t: &Technology) -> Nanoseconds {\n}\n").is_empty());
        let other = check(&[SourceFile::parse(
            PathBuf::from("f.rs"),
            "hbc-mem",
            "pub fn x() -> u64 {}",
            false,
        )]);
        assert!(other.is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        assert!(run("// hbc-allow: units (cycle counts are the native type)\npub fn cycles(&self) -> u64 {\n}\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/units");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
