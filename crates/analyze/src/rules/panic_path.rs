//! Rule `panic`: the number of `unwrap()` / `expect()` / `panic!` sites in
//! non-test code of the gated crates ([`crate::PANIC_CRATES`]) is held to a
//! checked-in baseline.
//!
//! Panics in `hbc-mem`/`hbc-cpu` hot paths turn a bad configuration or a
//! modelling bug into an abort instead of an error the caller can report;
//! in the `hbc-bench` binaries and the `hbc-serve` service they turn a full
//! disk or a bad request into a dead process. Existing sites are
//! grandfathered in `crates/analyze/panic_baseline.txt`; the count per
//! crate may only go down. Regenerate the baseline after a genuine
//! reduction with `cargo run -p hbc-analyze -- baseline`.
//!
//! Ported to the semantic model: sites are identifier tokens immediately
//! followed by `(` (for `unwrap`/`expect`) or `!` (for the panicking
//! macros), so string contents and comments can never count.

use crate::model::Model;
use crate::{Finding, PANIC_CRATES};
use std::collections::BTreeMap;

/// Per-crate allowed panic-site counts, parsed from `panic_baseline.txt`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the `crate count` line format (`#` comments allowed).
    pub fn parse(text: &str) -> Self {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(name), Some(n)) = (parts.next(), parts.next()) {
                if let Ok(n) = n.parse() {
                    counts.insert(name.to_string(), n);
                }
            }
        }
        Baseline { counts }
    }

    /// Renders the baseline back to the file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-path baseline: non-test unwrap/expect/panic! sites per crate.\n\
             # Maintained by `cargo run -p hbc-analyze -- baseline`; counts may only go down.\n",
        );
        for (name, n) in &self.counts {
            out.push_str(&format!("{name} {n}\n"));
        }
        out
    }

    /// Allowed count for `crate_name` (0 when absent).
    pub fn allowed(&self, crate_name: &str) -> usize {
        self.counts.get(crate_name).copied().unwrap_or(0)
    }
}

/// Counts panic sites per gated crate, skipping test code and
/// `hbc-allow: panic` lines. Returns (crate → count) plus each site for
/// reporting.
pub fn count_sites(model: &Model<'_>) -> (BTreeMap<String, usize>, Vec<Finding>) {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut sites = Vec::new();
    for crate_name in PANIC_CRATES {
        counts.insert(crate_name.to_string(), 0);
    }
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        if !PANIC_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if model.is_test_line(fi, tok.line) || model.allowed(fi, tok.line, "panic") {
                continue;
            }
            let next = fm.tokens.get(ti + 1);
            let hit = match tok.text.as_str() {
                "unwrap" | "expect" => next.is_some_and(|t| t.is_punct('(')),
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    next.is_some_and(|t| t.is_punct('!'))
                }
                // assertions are contracts, not panic paths
                _ => false,
            };
            if hit {
                *counts.entry(src.crate_name.clone()).or_default() += 1;
                sites.push(Finding {
                    rule: "panic",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!("panic site `{}` in {}", tok.text, src.crate_name),
                });
            }
        }
    }
    (counts, sites)
}

/// Compares the current counts against the baseline; a crate over its
/// baseline yields one finding naming every new-ish site.
pub fn check(model: &Model<'_>, baseline: &Baseline) -> Vec<Finding> {
    let (counts, sites) = count_sites(model);
    let mut findings = Vec::new();
    for (crate_name, &count) in &counts {
        let allowed = baseline.allowed(crate_name);
        if count > allowed {
            findings.extend(
                sites
                    .iter()
                    .filter(|s| {
                        model
                            .sources
                            .iter()
                            .any(|f| f.path == s.path && f.crate_name == *crate_name)
                    })
                    .cloned(),
            );
            findings.push(Finding {
                rule: "panic",
                path: crate_name.clone().into(),
                line: 0,
                message: format!(
                    "{crate_name} has {count} panic sites, baseline allows {allowed}; \
                     remove sites or justify with `hbc-allow: panic` (never raise the baseline)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)
    }

    fn counts_of(text: &str) -> BTreeMap<String, usize> {
        let files = [file(text)];
        count_sites(&Model::build(&files)).0
    }

    #[test]
    fn counts_unwrap_expect_panic() {
        let counts = counts_of(
            "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    unreachable!();\n}\n",
        );
        assert_eq!(counts["hbc-mem"], 4);
    }

    #[test]
    fn unwrap_or_variants_do_not_count() {
        let counts = counts_of(
            "fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(|| 1);\n    z.unwrap_or_default();\n}\n",
        );
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn asserts_tests_and_strings_do_not_count() {
        let counts = counts_of(
            "fn f() {\n    assert!(ok);\n    let s = \"panic!\";\n}\n#[cfg(test)]\nmod t {\n    fn g() { x.unwrap(); }\n}\n",
        );
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn baseline_roundtrip_and_gate() {
        let b = Baseline::parse("# comment\nhbc-mem 2\nhbc-cpu 0\n");
        assert_eq!(b.allowed("hbc-mem"), 2);
        assert_eq!(b.allowed("hbc-core"), 0);
        let b2 = Baseline::parse(&b.render());
        assert_eq!(b, b2);

        let files = [file("fn f() {\n    a.unwrap();\n    b.unwrap();\n    c.unwrap();\n}\n")];
        let model = Model::build(&files);
        assert!(!check(&model, &b).is_empty());
        let under = Baseline::parse("hbc-mem 3\n");
        assert!(check(&model, &under).is_empty());
    }

    #[test]
    fn allow_annotation_excludes_site() {
        let counts =
            counts_of("fn f() {\n    x.unwrap(); // hbc-allow: panic (checked above)\n}\n");
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/panic");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        let zero = Baseline::default();
        let bad_files = [file(&bad)];
        let ok_files = [file(&ok)];
        assert!(!check(&Model::build(&bad_files), &zero).is_empty());
        assert!(check(&Model::build(&ok_files), &zero).is_empty());
    }
}
