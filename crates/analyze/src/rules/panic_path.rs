//! Rule `panic`: the number of `unwrap()` / `expect()` / `panic!` sites in
//! non-test code of the gated crates ([`crate::PANIC_CRATES`]) is held to a
//! checked-in baseline.
//!
//! Panics in `hbc-mem`/`hbc-cpu` hot paths turn a bad configuration or a
//! modelling bug into an abort instead of an error the caller can report;
//! in the `hbc-bench` binaries and the `hbc-serve` service they turn a full
//! disk or a bad request into a dead process. Existing sites are
//! grandfathered in `crates/analyze/panic_baseline.txt`; the count per
//! crate may only go down. Regenerate the baseline after a genuine
//! reduction with `cargo run -p hbc-analyze -- baseline`.

use crate::source::{tokens, SourceFile};
use crate::{Finding, PANIC_CRATES};
use std::collections::BTreeMap;

/// Per-crate allowed panic-site counts, parsed from `panic_baseline.txt`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the `crate count` line format (`#` comments allowed).
    pub fn parse(text: &str) -> Self {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(name), Some(n)) = (parts.next(), parts.next()) {
                if let Ok(n) = n.parse() {
                    counts.insert(name.to_string(), n);
                }
            }
        }
        Baseline { counts }
    }

    /// Renders the baseline back to the file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-path baseline: non-test unwrap/expect/panic! sites per crate.\n\
             # Maintained by `cargo run -p hbc-analyze -- baseline`; counts may only go down.\n",
        );
        for (name, n) in &self.counts {
            out.push_str(&format!("{name} {n}\n"));
        }
        out
    }

    /// Allowed count for `crate_name` (0 when absent).
    pub fn allowed(&self, crate_name: &str) -> usize {
        self.counts.get(crate_name).copied().unwrap_or(0)
    }
}

/// Counts panic sites per gated crate, skipping test code and
/// `hbc-allow: panic` lines. Returns (crate → count) plus each site for
/// reporting.
pub fn count_sites(files: &[SourceFile]) -> (BTreeMap<String, usize>, Vec<Finding>) {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut sites = Vec::new();
    for crate_name in PANIC_CRATES {
        counts.insert(crate_name.to_string(), 0);
    }
    for file in files {
        if !PANIC_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_test || file.allowed(lineno, "panic") {
                continue;
            }
            let toks: Vec<(usize, &str)> = tokens(&line.code).collect();
            for (pos, tok) in &toks {
                let after = line.code[pos + tok.len()..].trim_start();
                let hit = match *tok {
                    "unwrap" | "expect" => after.starts_with('('),
                    "panic" | "unreachable" | "todo" | "unimplemented" => after.starts_with('!'),
                    "assert" => false, // assertions are contracts, not panic paths
                    _ => false,
                };
                if hit {
                    *counts.entry(file.crate_name.clone()).or_default() += 1;
                    sites.push(Finding {
                        rule: "panic",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!("panic site `{tok}` in {}", file.crate_name),
                    });
                }
            }
        }
    }
    (counts, sites)
}

/// Compares the current counts against the baseline; a crate over its
/// baseline yields one finding naming every new-ish site.
pub fn check(files: &[SourceFile], baseline: &Baseline) -> Vec<Finding> {
    let (counts, sites) = count_sites(files);
    let mut findings = Vec::new();
    for (crate_name, &count) in &counts {
        let allowed = baseline.allowed(crate_name);
        if count > allowed {
            findings.extend(
                sites
                    .iter()
                    .filter(|s| {
                        files.iter().any(|f| f.path == s.path && f.crate_name == *crate_name)
                    })
                    .cloned(),
            );
            findings.push(Finding {
                rule: "panic",
                path: crate_name.clone().into(),
                line: 0,
                message: format!(
                    "{crate_name} has {count} panic sites, baseline allows {allowed}; \
                     remove sites or justify with `hbc-allow: panic` (never raise the baseline)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)
    }

    #[test]
    fn counts_unwrap_expect_panic() {
        let (counts, _) = count_sites(&[file(
            "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    unreachable!();\n}\n",
        )]);
        assert_eq!(counts["hbc-mem"], 4);
    }

    #[test]
    fn unwrap_or_variants_do_not_count() {
        let (counts, _) =
            count_sites(&[file("fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(|| 1);\n    z.unwrap_or_default();\n}\n")]);
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn asserts_and_tests_do_not_count() {
        let (counts, _) = count_sites(&[file(
            "fn f() {\n    assert!(ok);\n}\n#[cfg(test)]\nmod t {\n    fn g() { x.unwrap(); }\n}\n",
        )]);
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn baseline_roundtrip_and_gate() {
        let b = Baseline::parse("# comment\nhbc-mem 2\nhbc-cpu 0\n");
        assert_eq!(b.allowed("hbc-mem"), 2);
        assert_eq!(b.allowed("hbc-core"), 0);
        let b2 = Baseline::parse(&b.render());
        assert_eq!(b, b2);

        let f = file("fn f() {\n    a.unwrap();\n    b.unwrap();\n    c.unwrap();\n}\n");
        assert!(!check(std::slice::from_ref(&f), &b).is_empty());
        let under = Baseline::parse("hbc-mem 3\n");
        assert!(check(std::slice::from_ref(&f), &under).is_empty());
    }

    #[test]
    fn allow_annotation_excludes_site() {
        let (counts, _) = count_sites(&[file(
            "fn f() {\n    x.unwrap(); // hbc-allow: panic (checked above)\n}\n",
        )]);
        assert_eq!(counts["hbc-mem"], 0);
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/panic");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        let zero = Baseline::default();
        assert!(!check(&[file(&bad)], &zero).is_empty());
        assert!(check(&[file(&ok)], &zero).is_empty());
    }
}
