//! Rule `config-validate`: every `*Config` struct must have a `validate()`
//! method, and the owning crate must actually call validation somewhere.
//!
//! A config struct without a checked `validate()` is how impossible cache
//! geometries (zero banks, non-power-of-two lines) sneak into simulations
//! and produce garbage numbers instead of errors.

use crate::source::{tokens, SourceFile};
use crate::{Finding, SIM_CRATES};

/// Runs the rule over all files.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_name in SIM_CRATES {
        let crate_files: Vec<&SourceFile> =
            files.iter().filter(|f| f.crate_name == *crate_name).collect();
        // Pass 1: which types have an inherent-impl `fn validate`?
        let mut validated: Vec<String> = Vec::new();
        let mut any_call = false;
        for file in &crate_files {
            collect_validated_impls(file, &mut validated);
            if file.lines.iter().any(|l| !l.is_test && l.code.contains(".validate(")) {
                any_call = true;
            }
        }
        // Pass 2: every declared `*Config` struct must be in that set.
        let mut configs = 0;
        for file in &crate_files {
            for (idx, line) in file.lines.iter().enumerate() {
                let lineno = idx + 1;
                if line.is_test || file.allowed(lineno, "config-validate") {
                    continue;
                }
                let toks: Vec<&str> = tokens(&line.code).map(|(_, t)| t).collect();
                let Some(pos) = toks.iter().position(|t| *t == "struct") else { continue };
                let Some(name) = toks.get(pos + 1) else { continue };
                if !name.ends_with("Config") {
                    continue;
                }
                configs += 1;
                if !validated.iter().any(|v| v == name) {
                    findings.push(Finding {
                        rule: "config-validate",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "struct `{name}` has no `fn validate` in an `impl {name}` block"
                        ),
                    });
                }
            }
        }
        // Pass 3: validation that is never invoked is dead armor.
        if configs > 0 && !any_call {
            if let Some(first) = crate_files.first() {
                findings.push(Finding {
                    rule: "config-validate",
                    path: first.path.clone(),
                    line: 1,
                    message: format!(
                        "crate {crate_name} declares Config structs but never calls .validate()"
                    ),
                });
            }
        }
    }
    findings
}

/// Records type names whose inherent `impl` block contains `fn validate`.
/// Trait impls (`impl Trait for Type`) attribute to `Type`, which is
/// harmless for this rule.
fn collect_validated_impls(file: &SourceFile, validated: &mut Vec<String>) {
    let mut idx = 0;
    while idx < file.lines.len() {
        let line = &file.lines[idx];
        let toks: Vec<&str> = tokens(&line.code).map(|(_, t)| t).collect();
        let Some(pos) = toks.iter().position(|t| *t == "impl") else {
            idx += 1;
            continue;
        };
        // `impl Type` or `impl Trait for Type`.
        let target = match toks.iter().position(|t| *t == "for") {
            Some(fp) if fp > pos => toks.get(fp + 1),
            _ => toks.get(pos + 1),
        };
        let Some(target) = target else {
            idx += 1;
            continue;
        };
        let target = target.to_string();
        // Walk the impl block by brace depth, looking for `fn validate`.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = idx;
        while j < file.lines.len() {
            let code = &file.lines[j].code;
            if code.contains("fn validate") && !validated.contains(&target) {
                validated.push(target.clone());
            }
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        idx = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        check(&[SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)])
    }

    #[test]
    fn flags_config_without_validate() {
        let f = run("pub struct FooConfig {\n    pub x: u32,\n}\n");
        assert!(f.iter().any(|f| f.message.contains("FooConfig")));
    }

    #[test]
    fn validate_plus_call_passes() {
        let text = "pub struct FooConfig { pub x: u32 }\n\
                    impl FooConfig {\n    pub fn validate(&self) -> Result<(), E> { Ok(()) }\n}\n\
                    pub fn build(c: &FooConfig) { c.validate().unwrap(); }\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn unused_validate_flagged() {
        let text = "pub struct FooConfig { pub x: u32 }\n\
                    impl FooConfig {\n    pub fn validate(&self) {}\n}\n";
        let f = run(text);
        assert!(f.iter().any(|f| f.message.contains("never calls")));
    }

    #[test]
    fn allow_annotation_suppresses() {
        let text = "// hbc-allow: config-validate (plain data, no invariants)\n\
                    pub struct FooConfig { pub x: u32 }\n";
        let f = run(text);
        assert!(f.iter().all(|f| !f.message.contains("no `fn validate`")));
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/config_validate");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
