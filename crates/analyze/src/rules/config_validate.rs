//! Rule `config-validate`: every `*Config` struct must have a `validate()`
//! method, and the owning crate must actually call validation somewhere.
//!
//! A config struct without a checked `validate()` is how impossible cache
//! geometries (zero banks, non-power-of-two lines) sneak into simulations
//! and produce garbage numbers instead of errors.
//!
//! Ported to the semantic model: `*Config` structs come from the item
//! model, `fn validate` methods are [`crate::model::Function`]s whose
//! `impl_target` names the struct, and "the crate calls validation" is a
//! token-level scan for `.validate(` sequences outside tests.

use crate::model::Model;
use crate::{Finding, SIM_CRATES};

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_name in SIM_CRATES {
        let indices: Vec<usize> = model
            .sources
            .iter()
            .enumerate()
            .filter(|(_, src)| src.crate_name == *crate_name)
            .map(|(fi, _)| fi)
            .collect();
        // Pass 1: types with an impl'd `fn validate`, and whether any
        // non-test code calls `.validate(`.
        let mut validated: Vec<&str> = Vec::new();
        let mut any_call = false;
        for &fi in &indices {
            for func in &model.files[fi].functions {
                if func.name == "validate" {
                    if let Some(target) = func.impl_target.as_deref() {
                        validated.push(target);
                    }
                }
            }
            let toks = &model.files[fi].tokens;
            for (ti, tok) in toks.iter().enumerate() {
                if tok.is_ident("validate")
                    && ti > 0
                    && toks[ti - 1].is_punct('.')
                    && toks.get(ti + 1).is_some_and(|t| t.is_punct('('))
                    && !model.is_test_line(fi, tok.line)
                {
                    any_call = true;
                }
            }
        }
        // Pass 2: every declared `*Config` struct must be in that set.
        let mut configs = 0;
        for &fi in &indices {
            for st in &model.files[fi].structs {
                if !st.name.ends_with("Config")
                    || model.is_test_line(fi, st.line)
                    || model.allowed(fi, st.line, "config-validate")
                {
                    continue;
                }
                configs += 1;
                if !validated.iter().any(|v| *v == st.name) {
                    findings.push(Finding {
                        rule: "config-validate",
                        path: model.sources[fi].path.clone(),
                        line: st.line,
                        message: format!(
                            "struct `{}` has no `fn validate` in an `impl {}` block",
                            st.name, st.name
                        ),
                    });
                }
            }
        }
        // Pass 3: validation that is never invoked is dead armor.
        if configs > 0 && !any_call {
            if let Some(&first) = indices.first() {
                findings.push(Finding {
                    rule: "config-validate",
                    path: model.sources[first].path.clone(),
                    line: 1,
                    message: format!(
                        "crate {crate_name} declares Config structs but never calls .validate()"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn flags_config_without_validate() {
        let f = run("pub struct FooConfig {\n    pub x: u32,\n}\n");
        assert!(f.iter().any(|f| f.message.contains("FooConfig")));
    }

    #[test]
    fn validate_plus_call_passes() {
        let text = "pub struct FooConfig { pub x: u32 }\n\
                    impl FooConfig {\n    pub fn validate(&self) -> Result<(), E> { Ok(()) }\n}\n\
                    pub fn build(c: &FooConfig) { c.validate().unwrap(); }\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn unused_validate_flagged() {
        let text = "pub struct FooConfig { pub x: u32 }\n\
                    impl FooConfig {\n    pub fn validate(&self) {}\n}\n";
        let f = run(text);
        assert!(f.iter().any(|f| f.message.contains("never calls")));
    }

    #[test]
    fn allow_annotation_suppresses() {
        let text = "// hbc-allow: config-validate (plain data, no invariants)\n\
                    pub struct FooConfig { pub x: u32 }\n";
        let f = run(text);
        assert!(f.iter().all(|f| !f.message.contains("no `fn validate`")));
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/config_validate");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
