//! Rule `wire-coverage`: every wire-protocol frame kind is exercised by
//! the test suite.
//!
//! The cluster's binary wire protocol is a closed enum (`Msg` in
//! `crates/cluster/src/wire.rs`): each variant is one frame kind with its
//! own encode/decode path and a fixed kind byte. The property suite
//! (`tests/wire_props.rs`) round-trips random messages, but its
//! `random_msg` generator — and every hand-written round-trip list — is
//! maintained by hand, so a newly added frame kind can compile, ship, and
//! never once pass through the codec under test. That is exactly how the
//! `Trace`/`TraceOk` federation frames (or the next protocol extension)
//! would rot: the decoder path for a kind nobody generates is dead weight
//! until a peer sends it in production.
//!
//! The rule closes the loop mechanically: for every variant of a
//! non-test `enum Msg` declaration, some *test* line in the workspace
//! must mention `Msg::<Variant>` — constructing it, matching on it, or
//! asserting its shape all count. A variant that no test line touches is
//! a finding on its declaration line.
//!
//! Scope: any enum named `Msg` outside test code participates (the
//! workspace has exactly one — the wire protocol). Enums under other
//! names are untouched, so this never fires on unrelated message types.
//! Audit a deliberately untested variant with `hbc-allow: wire-coverage`.

use crate::lexer::TokKind;
use crate::model::{matching_brace, Model};
use crate::Finding;
use std::collections::BTreeSet;

/// One declared wire-enum variant.
struct Variant {
    fi: usize,
    line: usize,
    name: String,
}

/// Collects the variants of every non-test `enum Msg` declaration.
fn wire_variants(model: &Model<'_>) -> Vec<Variant> {
    let mut out = Vec::new();
    for (fi, fm) in model.files.iter().enumerate() {
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !tok.is_ident("enum") || model.is_test_line(fi, tok.line) {
                continue;
            }
            let Some(name) = fm.tokens.get(ti + 1) else { continue };
            let Some(open) = fm.tokens.get(ti + 2) else { continue };
            if !name.is_ident("Msg") || !open.is_punct('{') {
                continue;
            }
            let close = matching_brace(&fm.tokens, ti + 2);
            let variant_depth = open.depth + 1;
            // A variant name is an ident at the enum's body depth in
            // "expect a variant" position: right after the opening brace
            // or a body-depth comma outside tuple-variant parentheses.
            // Struct-variant fields sit one brace deeper; tuple-variant
            // fields are guarded by the paren counter; attributes
            // (`#[…]`) are skipped bracket-balanced.
            let mut expect = true;
            let mut parens = 0i32;
            let mut brackets = 0i32;
            for t in &fm.tokens[ti + 3..close] {
                if t.is_punct('[') {
                    brackets += 1;
                    continue;
                }
                if t.is_punct(']') {
                    brackets -= 1;
                    continue;
                }
                if brackets > 0 || t.is_punct('#') {
                    continue;
                }
                if t.is_punct('(') {
                    parens += 1;
                } else if t.is_punct(')') {
                    parens -= 1;
                } else if t.is_punct(',') && parens == 0 && t.depth == variant_depth {
                    expect = true;
                } else if expect && t.kind == TokKind::Ident && t.depth == variant_depth {
                    out.push(Variant { fi, line: t.line, name: t.text.clone() });
                    expect = false;
                }
            }
        }
    }
    out
}

/// Collects every variant name mentioned as `Msg::<Variant>` on a test
/// line anywhere in the workspace.
fn test_mentions(model: &Model<'_>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (fi, fm) in model.files.iter().enumerate() {
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !tok.is_ident("Msg") || !model.is_test_line(fi, tok.line) {
                continue;
            }
            let path = (
                fm.tokens.get(ti + 1).map(|t| t.is_punct(':')),
                fm.tokens.get(ti + 2).map(|t| t.is_punct(':')),
                fm.tokens.get(ti + 3),
            );
            if let (Some(true), Some(true), Some(variant)) = path {
                if variant.kind == TokKind::Ident {
                    out.insert(variant.text.clone());
                }
            }
        }
    }
    out
}

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let variants = wire_variants(model);
    if variants.is_empty() {
        return Vec::new(); // no wire enum in this workspace
    }
    let covered = test_mentions(model);
    let mut findings = Vec::new();
    for v in variants {
        if covered.contains(&v.name) || model.allowed(v.fi, v.line, "wire-coverage") {
            continue;
        }
        findings.push(Finding {
            rule: "wire-coverage",
            path: model.sources[v.fi].path.clone(),
            line: v.line,
            message: format!(
                "wire frame kind `Msg::{}` is never touched by any test — its codec path \
                 ships unexercised; add it to the wire property suite (random_msg / the \
                 round-trip list) or audit with hbc-allow",
                v.name
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(texts: &[&str]) -> Vec<Finding> {
        let files: Vec<SourceFile> = texts
            .iter()
            .enumerate()
            .map(|(i, text)| {
                SourceFile::parse(PathBuf::from(format!("f{i}.rs")), "hbc-cluster", text, false)
            })
            .collect();
        check(&Model::build(&files))
    }

    const ENUM: &str = "pub enum Msg {\n    Run { spec_json: String },\n    Health,\n    \
                        StatsOk { pairs: Vec<(String, u64)> },\n}\n";

    #[test]
    fn untested_variants_fire_per_variant() {
        let f = run(&[ENUM]);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("Msg::Run"));
        assert!(f.iter().all(|x| x.message.contains("never touched by any test")));
    }

    #[test]
    fn test_mentions_cover_construct_and_match() {
        let tests = "#[cfg(test)]\nmod t {\n    fn f() {\n        \
                     let m = Msg::Run { spec_json: s };\n        \
                     assert!(matches!(m, Msg::Health));\n        \
                     match m { Msg::StatsOk { .. } => {}, _ => {} }\n    }\n}\n";
        assert!(run(&[ENUM, tests]).is_empty());
    }

    #[test]
    fn non_test_mentions_do_not_count() {
        let prod = "fn serve(m: Msg) {\n    match m { Msg::Run { .. } => {}, _ => {} }\n}\n";
        assert_eq!(run(&[ENUM, prod]).len(), 3, "production matches are not coverage");
    }

    #[test]
    fn other_enums_and_workspaces_without_msg_are_silent() {
        assert!(run(&["pub enum Reply {\n    Ok,\n    Err(String),\n}\n"]).is_empty());
        assert!(run(&["fn f() {}\n"]).is_empty());
    }

    #[test]
    fn tuple_variant_fields_are_not_variants() {
        let e = "enum Msg {\n    Pair(u32, u32),\n    Single(String),\n}\n";
        let f = run(&[e]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("Msg::Pair"));
        assert!(f[1].message.contains("Msg::Single"));
    }

    #[test]
    fn allows_audit_a_variant() {
        let e = "pub enum Msg {\n    // hbc-allow: wire-coverage (reserved for the next \
                 protocol rev)\n    Future,\n}\n";
        assert!(run(&[e]).is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join("wire_coverage");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&[bad.as_str()]).is_empty(), "wire_coverage/violation.rs should fire");
        assert!(run(&[ok.as_str()]).is_empty(), "wire_coverage/allowed.rs should be clean");
    }
}
