//! Rule `probe-naming`: probe names registered on a `ProbeRegistry` are
//! hierarchical dotted lowercase identifiers, and each name is registered
//! from exactly one source site.
//!
//! The probe registry is a flat namespace shared by every crate; a typo'd
//! or colliding name silently splits (or merges) a statistic instead of
//! failing. This rule scans non-test `counter("…")` / `histogram("…")`
//! call sites for literal names matching
//! `^[a-z0-9_]+(\.[a-z0-9_]+)+$` and reports duplicates across the whole
//! workspace. Names built at runtime (e.g. `StallCause::probe_name`) are
//! outside the scanner's reach and are covered by `hbc-probe`'s own
//! validation assert instead.

use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Mirrors `hbc_probe::is_valid_probe_name` (kept dependency-free here):
/// two or more non-empty `[a-z0-9_]+` segments separated by dots.
fn valid(name: &str) -> bool {
    let mut segments = 0;
    for segment in name.split('.') {
        if segment.is_empty()
            || !segment.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Extracts the string literals opened by `marker` (e.g. `counter("`) in a
/// raw source line.
fn literals<'a>(mut rest: &'a str, marker: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        let Some(end) = rest.find('"') else { break };
        out.push(&rest[..end]);
        rest = &rest[end + 1..];
    }
    out
}

/// Runs the rule over all files.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeMap<String, (PathBuf, usize)> = BTreeMap::new();
    for file in files {
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_test || file.allowed(lineno, "probe-naming") {
                continue;
            }
            for marker in ["counter(\"", "histogram(\""] {
                // The stripped code keeps the delimiters (`counter("")`),
                // so matching it first means comments never fire; the name
                // itself comes from the raw line.
                if !line.code.contains(marker) {
                    continue;
                }
                for name in literals(&line.raw, marker) {
                    if !valid(name) {
                        findings.push(Finding {
                            rule: "probe-naming",
                            path: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "probe name {name:?} is not hierarchical dotted lowercase \
                                 (`segment.segment…`, segments `[a-z0-9_]+`)"
                            ),
                        });
                    } else if let Some((first_path, first_line)) =
                        seen.insert(name.to_string(), (file.path.clone(), lineno))
                    {
                        findings.push(Finding {
                            rule: "probe-naming",
                            path: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "probe name {name:?} already registered at {}:{first_line}",
                                first_path.display()
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        check(&[SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)])
    }

    #[test]
    fn name_pattern() {
        assert!(valid("cpu.run.cycles"));
        assert!(valid("mem.l1.load_hits"));
        assert!(!valid("cycles")); // needs at least two segments
        assert!(!valid("cpu..cycles"));
        assert!(!valid("Cpu.cycles"));
        assert!(!valid("cpu.cycles "));
        assert!(!valid(""));
    }

    #[test]
    fn good_names_pass() {
        assert!(run(
            "reg.counter(\"cpu.run.cycles\").set(1);\nreg.histogram(\"cpu.issue.width_used\");\n"
        )
        .is_empty());
    }

    #[test]
    fn bad_name_fires() {
        let f = run("reg.counter(\"Cycles\").inc();\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("hierarchical"));
    }

    #[test]
    fn duplicate_registration_fires() {
        let f = run("reg.counter(\"mem.lb.hits\");\nreg.counter(\"mem.lb.hits\");\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("already registered"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn comments_tests_and_allows_do_not_fire() {
        assert!(run("// reg.counter(\"BAD\")\n").is_empty());
        assert!(run("#[cfg(test)]\nmod t {\n fn f() { reg.counter(\"BAD\"); }\n}\n").is_empty());
        assert!(run("reg.counter(\"x\"); // hbc-allow: probe-naming (migration shim)\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/probe_naming");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
