//! Rule `probe-naming`: probe names registered on a `ProbeRegistry` are
//! hierarchical dotted lowercase identifiers, and each name is registered
//! from exactly one source site.
//!
//! The probe registry is a flat namespace shared by every crate; a typo'd
//! or colliding name silently splits (or merges) a statistic instead of
//! failing. This rule scans non-test `counter("…")` / `histogram("…")`
//! call sites for literal names matching
//! `^[a-z0-9_]+(\.[a-z0-9_]+)+$` and reports duplicates across the whole
//! workspace. Names built at runtime (e.g. `StallCause::probe_name`) are
//! outside the scanner's reach and are covered by `hbc-probe`'s own
//! validation assert instead.
//!
//! Ported to the semantic model: a registration is the token triple
//! `counter`/`histogram` `(` `"…"` — string contents come straight from
//! the lexer's `Str` tokens, so commented-out registrations never fire.

use crate::model::Model;
use crate::Finding;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Mirrors `hbc_probe::is_valid_probe_name` (kept dependency-free here):
/// two or more non-empty `[a-z0-9_]+` segments separated by dots.
pub(crate) fn valid(name: &str) -> bool {
    let mut segments = 0;
    for segment in name.split('.') {
        if segment.is_empty()
            || !segment.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeMap<String, (PathBuf, usize)> = BTreeMap::new();
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !(tok.is_ident("counter") || tok.is_ident("histogram"))
                || model.is_test_line(fi, tok.line)
                || model.allowed(fi, tok.line, "probe-naming")
            {
                continue;
            }
            let (Some(open), Some(lit)) = (fm.tokens.get(ti + 1), fm.tokens.get(ti + 2)) else {
                continue;
            };
            if !open.is_punct('(') || lit.kind != crate::lexer::TokKind::Str {
                continue;
            }
            let name = lit.text.as_str();
            if !valid(name) {
                findings.push(Finding {
                    rule: "probe-naming",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!(
                        "probe name {name:?} is not hierarchical dotted lowercase \
                         (`segment.segment…`, segments `[a-z0-9_]+`)"
                    ),
                });
            } else if let Some((first_path, first_line)) =
                seen.insert(name.to_string(), (src.path.clone(), tok.line))
            {
                findings.push(Finding {
                    rule: "probe-naming",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!(
                        "probe name {name:?} already registered at {}:{first_line}",
                        first_path.display()
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-mem", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn name_pattern() {
        assert!(valid("cpu.run.cycles"));
        assert!(valid("mem.l1.load_hits"));
        assert!(!valid("cycles")); // needs at least two segments
        assert!(!valid("cpu..cycles"));
        assert!(!valid("Cpu.cycles"));
        assert!(!valid("cpu.cycles "));
        assert!(!valid(""));
    }

    #[test]
    fn good_names_pass() {
        assert!(run(
            "reg.counter(\"cpu.run.cycles\").set(1);\nreg.histogram(\"cpu.issue.width_used\");\n"
        )
        .is_empty());
    }

    #[test]
    fn bad_name_fires() {
        let f = run("reg.counter(\"Cycles\").inc();\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("hierarchical"));
    }

    #[test]
    fn duplicate_registration_fires() {
        let f = run("reg.counter(\"mem.lb.hits\");\nreg.counter(\"mem.lb.hits\");\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("already registered"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn comments_tests_and_allows_do_not_fire() {
        assert!(run("// reg.counter(\"BAD\")\n").is_empty());
        assert!(run("#[cfg(test)]\nmod t {\n fn f() { reg.counter(\"BAD\"); }\n}\n").is_empty());
        assert!(run("reg.counter(\"x\"); // hbc-allow: probe-naming (migration shim)\n").is_empty());
    }

    #[test]
    fn multi_line_call_still_fires() {
        let f = run("reg.counter(\n    \"BAD\",\n);\n");
        assert_eq!(f.len(), 1, "name literal on the next line is still a registration");
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/probe_naming");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
