//! Rule `serve-io-panic`: in the serving crates (`hbc-serve`,
//! `hbc-cluster`), no bare `unwrap()` / `expect()` on socket or
//! filesystem operations.
//!
//! The services are long-lived processes handling untrusted input over
//! real sockets: a peer that resets a connection, a full disk, or a
//! dropped cache file are *expected* conditions, and an `unwrap` on any
//! of them kills a worker (or the whole server) instead of producing a
//! `4xx`/`5xx` response, a degraded cache, or a failover. The contract is
//! typed errors everywhere I/O can fail (`HttpError`, `WireError`,
//! `io::Result`); this rule enforces it mechanically.
//!
//! Unlike the `panic` rule (a shrinking per-crate budget over all panic
//! sites), this one has no grandfathered baseline: a hit on an I/O
//! statement is always a finding. Ported to the semantic model, the scan
//! is per *statement* (token runs delimited by `;`, `{`, `}`): an
//! `unwrap`/`expect` call fires when an I/O identifier (socket types,
//! socket/file verbs, `fs`/`File` operations) appears in the same
//! statement, even when the chain wraps across lines. Audited exceptions
//! use `// hbc-allow: serve-io-panic`.

use crate::lexer::TokKind;
use crate::model::Model;
use crate::Finding;

/// Identifier tokens that mark a statement as touching socket or
/// filesystem I/O. Types and verbs both count:
/// `TcpStream::connect(..).unwrap()` and `stream.read(..).unwrap()` are
/// equally fatal in a server.
const IO_TOKENS: &[&str] = &[
    // Socket types and operations.
    "TcpListener",
    "TcpStream",
    "SocketAddr",
    "accept",
    "bind",
    "connect",
    "connect_timeout",
    "incoming",
    "local_addr",
    "peer_addr",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "shutdown",
    // Stream verbs (Read/Write traits).
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "flush",
    // Filesystem.
    "fs",
    "File",
    "OpenOptions",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "metadata",
    "canonicalize",
];

/// The crates this rule covers: every long-lived serving process.
const SERVING_CRATES: &[&str] = &["hbc-serve", "hbc-cluster"];

/// Scans serving-crate non-test statements for `unwrap`/`expect` calls
/// sharing a statement with an I/O identifier.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        if !SERVING_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        let toks = &fm.tokens;
        let mut start = 0;
        for (ti, tok) in toks.iter().enumerate() {
            let is_boundary = tok.kind == TokKind::Punct
                && (tok.text == ";" || tok.text == "{" || tok.text == "}");
            if !is_boundary && ti + 1 != toks.len() {
                continue;
            }
            let stmt = &toks[start..=ti];
            start = ti + 1;
            if !stmt
                .iter()
                .any(|t| t.kind == TokKind::Ident && IO_TOKENS.contains(&t.text.as_str()))
            {
                continue;
            }
            for (si, t) in stmt.iter().enumerate() {
                let bare_panic = (t.is_ident("unwrap") || t.is_ident("expect"))
                    && stmt.get(si + 1).is_some_and(|n| n.is_punct('('));
                if bare_panic
                    && !model.is_test_line(fi, t.line)
                    && !model.allowed(fi, t.line, "serve-io-panic")
                {
                    findings.push(Finding {
                        rule: "serve-io-panic",
                        path: src.path.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` on a socket/filesystem operation in {} — return a typed \
                             error (`HttpError`, `WireError`, `io::Result`) so the server \
                             degrades instead of dying",
                            t.text, src.crate_name
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-serve", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn unwrap_on_socket_ops_fires() {
        let findings = run("fn f() {\n    let l = TcpListener::bind(addr).unwrap();\n    \
             stream.read_exact(&mut buf).expect(\"io\");\n}\n");
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("typed error"));
    }

    #[test]
    fn unwrap_on_fs_ops_fires() {
        assert_eq!(run("fn f() {\n    std::fs::rename(&tmp, &path).unwrap();\n}\n").len(), 1);
    }

    #[test]
    fn multi_line_chain_fires() {
        let findings =
            run("fn f() {\n    let l = TcpListener::bind(addr)\n        .unwrap();\n}\n");
        assert_eq!(findings.len(), 1, "statement scan sees across the line break");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn non_io_unwrap_is_left_to_the_panic_rule() {
        assert!(run("fn f() {\n    let n = text.parse::<u64>().unwrap();\n}\n").is_empty());
    }

    #[test]
    fn typed_error_handling_passes() {
        assert!(run("fn f() -> io::Result<()> {\n    let l = TcpListener::bind(addr)?;\n    \
             stream.write_all(b\"x\").map_err(HttpError::Io)?;\n    Ok(())\n}\n",)
        .is_empty());
    }

    #[test]
    fn cluster_crate_is_covered_too() {
        let files = [SourceFile::parse(
            PathBuf::from("f.rs"),
            "hbc-cluster",
            "fn f() {\n    let s = TcpStream::connect_timeout(&a, t).unwrap();\n}\n",
            false,
        )];
        let findings = check(&Model::build(&files));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("hbc-cluster"));
    }

    #[test]
    fn tests_and_other_crates_are_exempt() {
        let in_tests = [SourceFile::parse(
            PathBuf::from("tests/t.rs"),
            "hbc-serve",
            "fn t() { TcpStream::connect(a).unwrap(); }\n",
            true,
        )];
        assert!(check(&Model::build(&in_tests)).is_empty());
        let other_crate = [SourceFile::parse(
            PathBuf::from("f.rs"),
            "hbc-bench",
            "fn f() { std::fs::write(p, b).unwrap(); }\n",
            false,
        )];
        assert!(check(&Model::build(&other_crate)).is_empty());
    }

    #[test]
    fn allow_annotation_is_honored() {
        assert!(run("fn f() {\n    // hbc-allow: serve-io-panic (test-only helper)\n    \
             listener.accept().unwrap();\n}\n",)
        .is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/serve_io_panic");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run(&bad).is_empty());
        assert!(run(&ok).is_empty());
    }
}
