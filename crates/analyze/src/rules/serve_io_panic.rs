//! Rule `serve-io-panic`: in `hbc-serve`, no bare `unwrap()` / `expect()`
//! on socket or filesystem operations.
//!
//! The service is a long-lived process handling untrusted input over real
//! sockets: a peer that resets a connection, a full disk, or a dropped
//! cache file are *expected* conditions, and an `unwrap` on any of them
//! kills a worker (or the whole server) instead of producing a `4xx`/`5xx`
//! response or a degraded cache. The crate's contract is typed errors
//! everywhere I/O can fail (`HttpError`, `io::Result`); this rule enforces
//! it mechanically.
//!
//! Unlike the `panic` rule (a shrinking per-crate budget over all panic
//! sites), this one has no grandfathered baseline: a hit on an I/O line is
//! always a finding. The scan is per line: an `unwrap`/`expect` call fires
//! when an I/O identifier (socket types, socket/file verbs, `fs`/`File`
//! operations) appears in the same statement line. Audited exceptions use
//! `// hbc-allow: serve-io-panic`.

use crate::source::{tokens, SourceFile};
use crate::Finding;

/// Identifier tokens that mark a line as touching socket or filesystem
/// I/O. Types and verbs both count: `TcpStream::connect(..).unwrap()` and
/// `stream.read(..).unwrap()` are equally fatal in a server.
const IO_TOKENS: &[&str] = &[
    // Socket types and operations.
    "TcpListener",
    "TcpStream",
    "SocketAddr",
    "accept",
    "bind",
    "connect",
    "connect_timeout",
    "incoming",
    "local_addr",
    "peer_addr",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "shutdown",
    // Stream verbs (Read/Write traits).
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "flush",
    // Filesystem.
    "fs",
    "File",
    "OpenOptions",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "metadata",
    "canonicalize",
];

/// Scans `hbc-serve` non-test lines for `unwrap`/`expect` calls sharing a
/// line with an I/O identifier.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.crate_name != "hbc-serve" {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_test || file.allowed(lineno, "serve-io-panic") {
                continue;
            }
            let toks: Vec<(usize, &str)> = tokens(&line.code).collect();
            let touches_io = toks.iter().any(|(_, t)| IO_TOKENS.contains(t));
            if !touches_io {
                continue;
            }
            for (pos, tok) in &toks {
                let bare_panic = matches!(*tok, "unwrap" | "expect")
                    && line.code[pos + tok.len()..].trim_start().starts_with('(');
                if bare_panic {
                    findings.push(Finding {
                        rule: "serve-io-panic",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "`{tok}` on a socket/filesystem operation in hbc-serve — return a \
                             typed error (`HttpError`, `io::Result`) so the server degrades \
                             instead of dying"
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn serve_file(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("f.rs"), "hbc-serve", text, false)
    }

    #[test]
    fn unwrap_on_socket_ops_fires() {
        let f = serve_file(
            "fn f() {\n    let l = TcpListener::bind(addr).unwrap();\n    \
             stream.read_exact(&mut buf).expect(\"io\");\n}\n",
        );
        let findings = check(std::slice::from_ref(&f));
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("typed error"));
    }

    #[test]
    fn unwrap_on_fs_ops_fires() {
        let f = serve_file("fn f() {\n    std::fs::rename(&tmp, &path).unwrap();\n}\n");
        assert_eq!(check(std::slice::from_ref(&f)).len(), 1);
    }

    #[test]
    fn non_io_unwrap_is_left_to_the_panic_rule() {
        let f = serve_file("fn f() {\n    let n = text.parse::<u64>().unwrap();\n}\n");
        assert!(check(std::slice::from_ref(&f)).is_empty());
    }

    #[test]
    fn typed_error_handling_passes() {
        let f = serve_file(
            "fn f() -> io::Result<()> {\n    let l = TcpListener::bind(addr)?;\n    \
             stream.write_all(b\"x\").map_err(HttpError::Io)?;\n    Ok(())\n}\n",
        );
        assert!(check(std::slice::from_ref(&f)).is_empty());
    }

    #[test]
    fn tests_and_other_crates_are_exempt() {
        let in_tests = SourceFile::parse(
            PathBuf::from("tests/t.rs"),
            "hbc-serve",
            "fn t() { TcpStream::connect(a).unwrap(); }\n",
            true,
        );
        assert!(check(std::slice::from_ref(&in_tests)).is_empty());
        let other_crate = SourceFile::parse(
            PathBuf::from("f.rs"),
            "hbc-bench",
            "fn f() { std::fs::write(p, b).unwrap(); }\n",
            false,
        );
        assert!(check(std::slice::from_ref(&other_crate)).is_empty());
    }

    #[test]
    fn allow_annotation_is_honored() {
        let f = serve_file(
            "fn f() {\n    // hbc-allow: serve-io-panic (test-only helper)\n    \
             listener.accept().unwrap();\n}\n",
        );
        assert!(check(std::slice::from_ref(&f)).is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/serve_io_panic");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!check(&[serve_file(&bad)]).is_empty());
        assert!(check(&[serve_file(&ok)]).is_empty());
    }
}
