//! The seven analysis rules.

pub mod config_validate;
pub mod determinism;
pub mod exec_merge;
pub mod panic_path;
pub mod probe_naming;
pub mod serve_io_panic;
pub mod units;
