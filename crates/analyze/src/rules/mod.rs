//! The twelve analysis rules. The authoritative name/summary/explanation
//! table is [`crate::RULES`]; each module here implements one entry.

pub mod cast_truncation;
pub mod config_validate;
pub mod determinism;
pub mod event_horizon;
pub mod exec_merge;
pub mod lock_discipline;
pub mod panic_path;
pub mod probe_coverage;
pub mod probe_naming;
pub mod serve_io_panic;
pub mod units;
pub mod wire_coverage;
