//! Rule `cast-truncation`: in simulation-state crates, no narrowing `as`
//! cast on a value whose name says it is a cycle count, address, or
//! statistic.
//!
//! The simulator's cycle counters and addresses are `u64` by design; a
//! `cycles as u32` is correct for two and a half hours of simulated time
//! at 1 GHz and then silently wraps, and an `addr as u32` truncates any
//! address above 4 GiB to an alias of a lower one — both produce wrong
//! numbers, not crashes. The rule flags `as {u8,u16,u32,i8,i16,i32}`
//! where an identifier earlier on the same line contains a suspect
//! substring (`cycle`, `addr`, `stamp`, `stat`, `hit`, `miss`, `tick`,
//! `inst`). `as usize` is deliberately exempt: it is the indexing
//! conversion and platform-width. Intentional narrowings (e.g. a bank
//! index already bounded by `% nbanks`) carry an audited
//! `// hbc-allow: cast-truncation` with the justification.

use crate::model::Model;
use crate::{Finding, SIM_CRATES};

/// Narrowing integer targets. `usize` is exempt (indexing conversion).
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Name fragments that mark a value as simulation state.
const SUSPECT: &[&str] = &["cycle", "addr", "stamp", "stat", "hit", "miss", "tick", "inst"];

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        if !SIM_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !tok.is_ident("as")
                || model.is_test_line(fi, tok.line)
                || model.allowed(fi, tok.line, "cast-truncation")
            {
                continue;
            }
            let Some(target) = fm.tokens.get(ti + 1) else { continue };
            if !target.is_ident_kind() || !NARROW.contains(&target.text.as_str()) {
                continue;
            }
            // Look back over the same line for a suspect value name.
            let suspect =
                fm.tokens[..ti].iter().rev().take_while(|t| t.line == tok.line).find(|t| {
                    t.is_ident_kind() && {
                        let lower = t.text.to_ascii_lowercase();
                        SUSPECT.iter().any(|s| lower.contains(s))
                    }
                });
            if let Some(value) = suspect {
                findings.push(Finding {
                    rule: "cast-truncation",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!(
                        "`{} as {}` narrows a simulation-state value in {} — keep u64 \
                         (or justify the bound with hbc-allow)",
                        value.text, target.text, src.crate_name
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(crate_name: &str, text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), crate_name, text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn narrowing_cycle_cast_fires() {
        let f = run("hbc-cpu", "fn f(cycles: u64) -> u32 {\n    cycles as u32\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("cycles as u32"));
    }

    #[test]
    fn addr_and_stat_names_fire() {
        assert_eq!(run("hbc-mem", "let x = addr as u16;\n").len(), 1);
        assert_eq!(run("hbc-mem", "let x = hit_count as u8;\n").len(), 1);
    }

    #[test]
    fn usize_and_widening_are_exempt() {
        assert!(run("hbc-mem", "let i = addr as usize;\n").is_empty());
        assert!(run("hbc-mem", "let w = addr as u128;\n").is_empty());
        assert!(run("hbc-mem", "let f = cycles as f64;\n").is_empty());
    }

    #[test]
    fn non_suspect_names_pass() {
        assert!(run("hbc-mem", "let b = flags as u8;\n").is_empty());
        assert!(run("hbc-mem", "let n = width as u32;\n").is_empty());
    }

    #[test]
    fn non_sim_crates_tests_and_allows_are_exempt() {
        assert!(run("hbc-serve", "let x = addr as u32;\n").is_empty());
        assert!(run("hbc-mem", "#[cfg(test)]\nmod t {\n fn f() { let x = addr as u32; }\n}\n")
            .is_empty());
        assert!(run(
            "hbc-mem",
            "// hbc-allow: cast-truncation (bounded by % nbanks)\nlet x = addr as u32;\n",
        )
        .is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/cast_truncation");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run("hbc-mem", &bad).is_empty());
        assert!(run("hbc-mem", &ok).is_empty());
    }
}
