//! Rule `determinism`: simulation-state crates must not use
//! nondeterministically ordered collections, wall clocks, or ambient RNGs.
//!
//! The simulator's contract is that a run is a pure function of
//! (configuration, seed). `HashMap`/`HashSet` iteration order varies run to
//! run (SipHash keys are randomized), `Instant`/`SystemTime` read the wall
//! clock, and `thread_rng`-style ambient RNGs are unseeded — any of these
//! in a [`crate::SIM_CRATES`] member can silently break reproducibility.
//!
//! Ported to the semantic model: the scan walks the lexer token stream, so
//! a forbidden identifier inside a string or comment can never fire and
//! multi-line constructs need no special casing.

use crate::lexer::TokKind;
use crate::model::Model;
use crate::{Finding, SIM_CRATES};

/// Identifier tokens forbidden in simulation crates, with the suggestion
/// reported alongside each.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized; use BTreeMap"),
    ("HashSet", "iteration order is randomized; use BTreeSet"),
    ("Instant", "reads the wall clock; derive time from simulated cycles"),
    ("SystemTime", "reads the wall clock; derive time from simulated cycles"),
    ("thread_rng", "unseeded ambient RNG; use the seeded workload RNG"),
    ("rand", "external RNG crate; use the seeded workload RNG"),
];

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fi, (src, fm)) in model.sources.iter().zip(&model.files).enumerate() {
        if !SIM_CRATES.contains(&src.crate_name.as_str()) {
            continue;
        }
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if tok.kind != TokKind::Ident
                || model.is_test_line(fi, tok.line)
                || model.allowed(fi, tok.line, "determinism")
            {
                continue;
            }
            if let Some((name, why)) = FORBIDDEN.iter().find(|(name, _)| *name == tok.text) {
                findings.push(Finding {
                    rule: "determinism",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!("`{name}` in {}: {why}", src.crate_name),
                });
            }
            // `std::time::<anything but Duration>` is wall-clock adjacent.
            if tok.is_ident("time")
                && ti >= 3
                && fm.tokens[ti - 1].is_punct(':')
                && fm.tokens[ti - 3].is_ident("std")
                && !fm.tokens.get(ti + 3).is_some_and(|t| t.is_ident("Duration"))
            {
                findings.push(Finding {
                    rule: "determinism",
                    path: src.path.clone(),
                    line: tok.line,
                    message: format!(
                        "`std::time` in {}: wall-clock time is nondeterministic",
                        src.crate_name
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(crate_name: &str, text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), crate_name, text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn flags_hashmap_in_sim_crate() {
        let f = run("hbc-mem", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn flags_std_time_but_not_duration() {
        assert_eq!(run("hbc-mem", "use std::time::UNIX_EPOCH;\n").len(), 1);
        assert!(run("hbc-mem", "use std::time::Duration;\n").is_empty());
    }

    #[test]
    fn ignores_non_sim_crates_and_tests() {
        assert!(run("hbc-bench", "use std::time::Instant;\n").is_empty());
        assert!(run("hbc-mem", "#[cfg(test)]\nmod t {\n use std::collections::HashSet;\n}\n")
            .is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let f = run("hbc-cpu", "use std::collections::HashMap; // hbc-allow: determinism\n");
        assert!(f.is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        assert!(run("hbc-isa", "let s = \"HashMap\";\n").is_empty());
        assert!(run("hbc-isa", "let s = \"multi\nline Instant\nstring\";\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/determinism");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run("hbc-mem", &bad).is_empty());
        assert!(run("hbc-mem", &ok).is_empty());
    }
}
