//! Rule `determinism`: simulation-state crates must not use
//! nondeterministically ordered collections, wall clocks, or ambient RNGs.
//!
//! The simulator's contract is that a run is a pure function of
//! (configuration, seed). `HashMap`/`HashSet` iteration order varies run to
//! run (SipHash keys are randomized), `Instant`/`SystemTime` read the wall
//! clock, and `thread_rng`-style ambient RNGs are unseeded — any of these
//! in a [`crate::SIM_CRATES`] member can silently break reproducibility.

use crate::source::{tokens, SourceFile};
use crate::{Finding, SIM_CRATES};

/// Identifier tokens forbidden in simulation crates, with the suggestion
/// reported alongside each.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized; use BTreeMap"),
    ("HashSet", "iteration order is randomized; use BTreeSet"),
    ("Instant", "reads the wall clock; derive time from simulated cycles"),
    ("SystemTime", "reads the wall clock; derive time from simulated cycles"),
    ("thread_rng", "unseeded ambient RNG; use the seeded workload RNG"),
    ("rand", "external RNG crate; use the seeded workload RNG"),
];

/// Runs the rule over all files.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !SIM_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_test || file.allowed(lineno, "determinism") {
                continue;
            }
            for (_, tok) in tokens(&line.code) {
                if let Some((name, why)) = FORBIDDEN.iter().find(|(name, _)| *name == tok) {
                    findings.push(Finding {
                        rule: "determinism",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!("`{name}` in {}: {why}", file.crate_name),
                    });
                }
            }
            if line.code.contains("std::time") && !line.code.contains("std::time::Duration") {
                findings.push(Finding {
                    rule: "determinism",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "`std::time` in {}: wall-clock time is nondeterministic",
                        file.crate_name
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(crate_name: &str, text: &str) -> Vec<Finding> {
        check(&[SourceFile::parse(PathBuf::from("f.rs"), crate_name, text, false)])
    }

    #[test]
    fn flags_hashmap_in_sim_crate() {
        let f = run("hbc-mem", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn ignores_non_sim_crates_and_tests() {
        assert!(run("hbc-bench", "use std::time::Instant;\n").is_empty());
        assert!(run("hbc-mem", "#[cfg(test)]\nmod t {\n use std::collections::HashSet;\n}\n")
            .is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let f = run("hbc-cpu", "use std::collections::HashMap; // hbc-allow: determinism\n");
        assert!(f.is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        assert!(run("hbc-isa", "let s = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/determinism");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        assert!(!run("hbc-mem", &bad).is_empty());
        assert!(run("hbc-mem", &ok).is_empty());
    }
}
