//! Rule `lock-discipline`: in the lock-bearing crates
//! ([`crate::LOCK_CRATES`]), no mutex guard may be held across blocking
//! I/O, and pairwise lock-acquisition order must be consistent.
//!
//! Both hazards are whole-server failure modes the type system does not
//! catch. A guard held across `accept`/`read`/`write` serializes every
//! peer behind the slowest socket (and can deadlock outright when the
//! blocked peer needs the same lock to make progress). Two threads taking
//! locks A and B in opposite orders deadlock the first time their
//! critical sections overlap; the bug is invisible until load makes the
//! interleaving happen.
//!
//! The analysis walks each function body in the lexer token stream and
//! tracks live guards:
//!
//! * **acquisition** — a call to the crate's poison-recovering `lock(&x)`
//!   helper (lock name = last field identifier of the argument) or an
//!   `x.lock()` method call (lock name = last identifier of the
//!   receiver);
//! * **death** — a `let`-bound guard dies when its enclosing block closes
//!   or at an explicit `drop(name)`; an unbound temporary dies at the end
//!   of its statement (`;`) or at the next `{` (conservative for
//!   `if let Some(v) = lock(&x).get(..) {` — the temporary is treated as
//!   dead inside the block, which matches the dominant idiom here of
//!   cloning out of the guard).
//!
//! While a guard is live, a blocking-I/O identifier (socket/stream verbs;
//! *not* `Condvar::wait`, which releases the lock) is a finding, and a
//! second acquisition records a lock-order edge. Both facts propagate
//! transitively through calls the model can resolve (unique plain calls
//! within the crate). A cycle in a crate's lock-order graph is a finding.

use crate::model::{FnId, Model};
use crate::{Finding, LOCK_CRATES};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Identifiers that block on the network or a peer while called. Condvar
/// waits are deliberately absent: they release the mutex while blocked.
const BLOCKING_IO: &[&str] = &[
    "accept",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "flush",
    "recv",
    "incoming",
    "connect",
    "connect_timeout",
];

/// A live guard during the body walk.
struct Guard {
    /// Binding name (`None` for an unbound temporary).
    name: Option<String>,
    /// Which lock it guards.
    lock: String,
    /// Brace depth of the acquisition token.
    born_depth: u32,
}

/// Per-function facts for the transitive pass.
#[derive(Default, Clone)]
struct Facts {
    /// Body contains a blocking-I/O call.
    io: bool,
    /// Locks the body acquires.
    locks: BTreeSet<String>,
    /// Resolved plain calls out of the body.
    calls: BTreeSet<FnId>,
}

/// Matches an acquisition at token `i`; returns the lock name.
fn acquisition(toks: &[crate::lexer::Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    if !t.is_ident("lock") || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    if i > 0 && toks[i - 1].is_punct('.') {
        // `x.state.lock()` — receiver's last identifier.
        return (i >= 2).then(|| toks[i - 2].text.clone()).filter(|_| toks[i - 2].is_ident_kind());
    }
    // `lock(&shared.queue)` — last identifier inside the argument parens.
    let mut name = None;
    let mut j = i + 2;
    let mut depth = 1usize;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
        } else if toks[j].is_ident_kind() {
            name = Some(toks[j].text.clone());
        }
        j += 1;
    }
    name
}

/// If the acquisition whose `lock` identifier sits at `i` is the entire
/// right-hand side of a simple `let name = …;` binding, returns the bound
/// name. A chained acquisition (`lock(&q).drain(..).collect()`) binds the
/// *chain's* result, not the guard — the guard is a temporary that dies at
/// the statement end, so it must not inherit the binding's lifetime.
fn binding_name(toks: &[crate::lexer::Tok], i: usize) -> Option<String> {
    // Walk to the `)` closing the acquisition call; the guard is bound
    // only when the statement ends right there.
    let mut j = i + 2;
    let mut parens = 1usize;
    while j < toks.len() && parens > 0 {
        if toks[j].is_punct('(') {
            parens += 1;
        } else if toks[j].is_punct(')') {
            parens -= 1;
        }
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct(';')) {
        return None;
    }
    let mut start = i;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    if !toks.get(start).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut k = start + 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = toks.get(k)?;
    let next = toks.get(k + 1)?;
    (name.is_ident_kind() && (next.is_punct('=') || next.is_punct(':'))).then(|| name.text.clone())
}

/// Computes per-function facts for the transitive pass.
fn facts(model: &Model<'_>, crate_name: &str) -> BTreeMap<FnId, Facts> {
    let mut out = BTreeMap::new();
    for (fi, func) in model.crate_functions(crate_name) {
        let gi = model.files[fi].functions.iter().position(|f| std::ptr::eq(f, func));
        let Some(gi) = gi else { continue };
        let id: FnId = (fi, gi);
        if func.name == "lock" {
            // The acquisition primitive itself is not a lock user.
            out.insert(id, Facts::default());
            continue;
        }
        let toks = &model.files[fi].tokens;
        let mut f = Facts::default();
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            if !model.is_test_line(fi, t.line) {
                if let Some(lock) = acquisition(toks, i) {
                    f.locks.insert(lock);
                } else if t.is_ident_kind()
                    && BLOCKING_IO.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    f.io = true;
                }
            }
            i += 1;
        }
        for call in model.plain_calls(fi, func) {
            if call.callee == "lock" || call.callee == "drop" {
                continue;
            }
            if let Some(target) = model.resolve(crate_name, &call.callee) {
                if target != id {
                    f.calls.insert(target);
                }
            }
        }
        out.insert(id, f);
    }
    // Fixpoint: propagate io and lock sets over the call graph.
    loop {
        let snapshot: BTreeMap<FnId, Facts> = out.clone();
        let mut changed = false;
        for f in out.values_mut() {
            for callee in f.calls.clone() {
                if let Some(cf) = snapshot.get(&callee) {
                    if cf.io && !f.io {
                        f.io = true;
                        changed = true;
                    }
                    for l in &cf.locks {
                        changed |= f.locks.insert(l.clone());
                    }
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Finds a cycle in the lock-order graph, returned as the node sequence
/// `a → … → a`.
fn find_cycle(edges: &BTreeMap<String, BTreeSet<String>>) -> Option<Vec<String>> {
    fn visit(
        node: &str,
        edges: &BTreeMap<String, BTreeSet<String>>,
        path: &mut Vec<String>,
        done: &mut BTreeSet<String>,
    ) -> Option<Vec<String>> {
        if let Some(pos) = path.iter().position(|n| n == node) {
            let mut cycle: Vec<String> = path[pos..].to_vec();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        if done.contains(node) {
            return None;
        }
        path.push(node.to_string());
        if let Some(nexts) = edges.get(node) {
            for next in nexts {
                if let Some(c) = visit(next, edges, path, done) {
                    return Some(c);
                }
            }
        }
        path.pop();
        done.insert(node.to_string());
        None
    }
    let mut done = BTreeSet::new();
    for node in edges.keys() {
        if let Some(c) = visit(node, edges, &mut Vec::new(), &mut done) {
            return Some(c);
        }
    }
    None
}

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_name in LOCK_CRATES {
        let facts = facts(model, crate_name);
        // Lock-order edges with one representative site each.
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut edge_sites: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();

        for (fi, func) in model.crate_functions(crate_name) {
            if func.name == "lock" {
                continue;
            }
            let toks = &model.files[fi].tokens;
            let mut guards: Vec<Guard> = Vec::new();
            let mut i = func.body.start;
            while i < func.body.end {
                let t = &toks[i];
                if t.is_punct('}') {
                    guards.retain(|g| g.born_depth <= t.depth);
                } else if t.is_punct(';') {
                    guards.retain(|g| g.name.is_some() || t.depth > g.born_depth);
                } else if t.is_punct('{') {
                    guards.retain(|g| g.name.is_some());
                } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    if let Some(arg) = toks.get(i + 2) {
                        guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                    }
                } else if let Some(lock) = acquisition(toks, i) {
                    if !model.is_test_line(fi, t.line) {
                        for g in &guards {
                            if g.lock != lock && !model.allowed(fi, t.line, "lock-discipline") {
                                edges.entry(g.lock.clone()).or_default().insert(lock.clone());
                                edge_sites
                                    .entry((g.lock.clone(), lock.clone()))
                                    .or_insert_with(|| (model.sources[fi].path.clone(), t.line));
                            }
                        }
                        guards.push(Guard {
                            name: binding_name(toks, i),
                            lock,
                            born_depth: t.depth,
                        });
                    }
                } else if !guards.is_empty() && !model.is_test_line(fi, t.line) {
                    let blocking = t.is_ident_kind()
                        && BLOCKING_IO.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                    let callee_io = !blocking
                        && t.is_ident_kind()
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && !(i > 0 && toks[i - 1].is_punct('.'))
                        && model
                            .resolve(crate_name, &t.text)
                            .and_then(|id| facts.get(&id))
                            .is_some_and(|f| f.io);
                    if (blocking || callee_io) && !model.allowed(fi, t.line, "lock-discipline") {
                        let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
                        findings.push(Finding {
                            rule: "lock-discipline",
                            path: model.sources[fi].path.clone(),
                            line: t.line,
                            message: format!(
                                "`{}` blocks while holding lock(s) [{}] in {} — drop the \
                                 guard (or clone out of it) before doing I/O",
                                t.text,
                                held.join(", "),
                                crate_name
                            ),
                        });
                    }
                    // Transitive lock-order edges through resolved calls.
                    if !blocking && t.is_ident_kind() {
                        if let Some(callee_facts) = (!(i > 0 && toks[i - 1].is_punct('.'))
                            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
                        .then(|| model.resolve(crate_name, &t.text))
                        .flatten()
                        .and_then(|id| facts.get(&id))
                        {
                            for inner in &callee_facts.locks {
                                for g in &guards {
                                    if g.lock != *inner
                                        && !model.allowed(fi, t.line, "lock-discipline")
                                    {
                                        edges
                                            .entry(g.lock.clone())
                                            .or_default()
                                            .insert(inner.clone());
                                        edge_sites
                                            .entry((g.lock.clone(), inner.clone()))
                                            .or_insert_with(|| {
                                                (model.sources[fi].path.clone(), t.line)
                                            });
                                    }
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }

        if let Some(cycle) = find_cycle(&edges) {
            let site = edge_sites
                .get(&(cycle[0].clone(), cycle[1].clone()))
                .cloned()
                .unwrap_or_else(|| (PathBuf::from(crate_name), 0));
            findings.push(Finding {
                rule: "lock-discipline",
                path: site.0,
                line: site.1,
                message: format!(
                    "inconsistent lock order in {}: cycle {} — pick one global order \
                     and take the locks in it everywhere",
                    crate_name,
                    cycle.join(" → ")
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-serve", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn guard_held_across_write_fires() {
        let f = run("fn f(s: &S, out: &mut TcpStream) {\n    let g = s.state.lock();\n    \
             out.write_all(b\"x\");\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("write_all"));
        assert!(f[0].message.contains("state"));
    }

    #[test]
    fn helper_fn_acquisition_fires_too() {
        let f = run("fn f(s: &S, out: &mut TcpStream) {\n    let q = lock(&s.queue);\n    \
             out.flush();\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("queue"));
    }

    #[test]
    fn dropped_guard_is_dead() {
        assert!(run(
            "fn f(s: &S, out: &mut TcpStream) {\n    let g = s.state.lock();\n    drop(g);\n    \
             out.write_all(b\"x\");\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn block_scoped_guard_dies_at_close() {
        assert!(run(
            "fn f(s: &S, out: &mut TcpStream) {\n    let v = {\n        let g = s.state.lock();\n        \
             g.len()\n    };\n    out.write_all(b\"x\");\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        assert!(run("fn f(s: &S, out: &mut TcpStream) {\n    s.counts.lock().insert(1);\n    \
             out.flush();\n}\n",)
        .is_empty());
    }

    #[test]
    fn io_through_a_called_function_fires() {
        let f = run(
            "fn respond(out: &mut TcpStream) {\n    out.write_all(b\"x\");\n}\n\
             fn f(s: &S, out: &mut TcpStream) {\n    let g = s.state.lock();\n    respond(out);\n}\n",
        );
        assert_eq!(f.len(), 1, "transitive I/O through `respond`");
        assert!(f[0].message.contains("respond"));
    }

    #[test]
    fn ab_ba_cycle_fires() {
        let f = run("fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n\
             fn ba(s: &S) {\n    let b = s.beta.lock();\n    let a = s.alpha.lock();\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("cycle"));
        assert!(f[0].message.contains("alpha") && f[0].message.contains("beta"));
    }

    #[test]
    fn consistent_nesting_passes() {
        assert!(run(
            "fn one(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n\
             fn two(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn condvar_wait_is_not_blocking_io() {
        assert!(run("fn f(s: &S) {\n    let mut g = s.state.lock();\n    \
             g = s.cv.wait_timeout(g, dur).0;\n}\n",)
        .is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        assert!(run("fn f(s: &S, out: &mut TcpStream) {\n    let g = s.state.lock();\n    \
             // hbc-allow: lock-discipline (single-threaded startup path)\n    \
             out.write_all(b\"x\");\n}\n",)
        .is_empty());
    }

    #[test]
    fn other_crates_are_exempt() {
        let files = [SourceFile::parse(
            PathBuf::from("f.rs"),
            "hbc-bench",
            "fn f(s: &S, o: &mut W) { let g = s.state.lock(); o.write_all(b\"x\"); }\n",
            false,
        )];
        assert!(check(&Model::build(&files)).is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/lock_discipline");
        let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
        let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
        let bad_findings = run(&bad);
        assert!(
            bad_findings.iter().any(|f| f.message.contains("cycle")),
            "violation fixture must demonstrate an AB/BA lock-order cycle"
        );
        assert!(
            bad_findings.iter().any(|f| f.message.contains("holding lock")),
            "violation fixture must demonstrate a guard held across I/O"
        );
        assert!(run(&ok).is_empty());
    }
}
