//! Rule `probe-coverage`: every probe registered on the `hbc-probe`
//! registry is actually used, and every probe read actually exists.
//!
//! The registry's lazy-registration API makes two silent failure modes
//! possible. A `reg.counter("x.y");` whose handle is discarded registers a
//! statistic that can never move — it exports as a permanent zero and
//! looks like a real measurement. And `get("x.y")` / `get_histogram(…)` /
//! `scoped("prefix")` look names up by string at runtime, so a typo reads
//! `None` (or an empty scope) instead of failing — report code quietly
//! drops the statistic it meant to show.
//!
//! The rule cross-references the whole workspace:
//!
//! * a registration (`counter("…")` / `histogram("…")` with a literal
//!   name) must be *used*: its handle chained into a call (`.set(…)`,
//!   `.add(…)`, …), bound (`let h = …;`), assigned through
//!   (`*reg.histogram(…) = …;`), or passed along as an argument — a bare
//!   discarded registration is a finding;
//! * an exact read (`get("…")` / `get_histogram("…")`) must name a
//!   registered probe of the matching kind;
//! * a `scoped("prefix")` view must match at least one registered name
//!   under `prefix.`.
//!
//! The same closed-world check covers span stages: a literal stage name
//! at an `enter("…")` / `record_at("…", …)` / `record_since("…", …)` /
//! `record_linked("…", …)` site
//! must appear in the `STAGE_NAMES` table (`hbc_probe::span`). A stage
//! missing from the table panics debug builds at the recording site and
//! ships unregistered stages in release traces; the lint catches the typo
//! before either happens. The table's contents are read straight from the
//! `STAGE_NAMES` initializer, so adding a stage there is all it takes.
//!
//! Only literals that are valid dotted probe names participate, so string
//! lookups on unrelated maps (e.g. JSON fields like `get("experiment")`)
//! never fire. Names built at runtime are outside the scanner's reach,
//! as with `probe-naming`.

use crate::lexer::TokKind;
use crate::model::Model;
use crate::rules::probe_naming::valid;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// What a name was registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Histogram,
}

/// A literal-name call site: `marker("name")`.
struct Site {
    fi: usize,
    line: usize,
    /// Token index of the marker identifier.
    tok: usize,
    name: String,
}

/// Collects non-test `marker("…")` sites across the workspace.
fn sites(model: &Model<'_>, marker: &str) -> Vec<Site> {
    let mut out = Vec::new();
    for (fi, fm) in model.files.iter().enumerate() {
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !tok.is_ident(marker) || model.is_test_line(fi, tok.line) {
                continue;
            }
            let (Some(open), Some(lit)) = (fm.tokens.get(ti + 1), fm.tokens.get(ti + 2)) else {
                continue;
            };
            if open.is_punct('(') && lit.kind == TokKind::Str {
                out.push(Site { fi, line: tok.line, tok: ti, name: lit.text.clone() });
            }
        }
    }
    out
}

/// True when the registration at token `site.tok` uses its handle: the
/// statement binds or assigns it, chains a method, or passes it along.
/// Only `reg.counter("x");` with nothing else is bare.
fn handle_used(model: &Model<'_>, site: &Site) -> bool {
    let toks = &model.files[site.fi].tokens;
    // Statement bounds around the marker token.
    let mut start = site.tok;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    // `let` binding or any assignment in the statement uses the handle.
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(';') || (j > site.tok && (t.is_punct('{') || t.is_punct('}'))) {
            break;
        }
        if t.is_ident("let") || t.is_punct('=') {
            return true;
        }
        j += 1;
    }
    // After `marker ( "name" )`, a `.` chains and a `)` passes it as an
    // argument; only `;` (or `,` into a discarding macro) leaves it bare.
    match toks.get(site.tok + 4) {
        Some(t) => !t.is_punct(';'),
        None => true,
    }
}

/// Collects the registered span stages: every string literal inside a
/// `STAGE_NAMES` initializer (from the identifier to the end of its
/// statement), across the model. References without literals
/// (`STAGE_NAMES.contains(…)`) contribute nothing.
fn stage_table(model: &Model<'_>) -> BTreeSet<String> {
    let mut stages = BTreeSet::new();
    for (fi, fm) in model.files.iter().enumerate() {
        for (ti, tok) in fm.tokens.iter().enumerate() {
            if !tok.is_ident("STAGE_NAMES") || model.is_test_line(fi, tok.line) {
                continue;
            }
            for t in &fm.tokens[ti + 1..] {
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                if t.kind == TokKind::Str {
                    stages.insert(t.text.clone());
                }
            }
        }
    }
    stages
}

/// Runs the rule over the workspace model.
pub fn check(model: &Model<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Registrations: name → kind (first registration wins; duplicates are
    // probe-naming's findings, not ours).
    let mut registered: BTreeMap<String, Kind> = BTreeMap::new();
    let mut reg_sites = Vec::new();
    for (marker, kind) in [("counter", Kind::Counter), ("histogram", Kind::Histogram)] {
        for site in sites(model, marker) {
            if !valid(&site.name) {
                continue; // not a probe literal; probe-naming owns bad names
            }
            registered.entry(site.name.clone()).or_insert(kind);
            reg_sites.push((site, kind));
        }
    }

    // A registration whose handle is discarded is a permanent zero.
    for (site, _) in &reg_sites {
        if !handle_used(model, site) && !model.allowed(site.fi, site.line, "probe-coverage") {
            findings.push(Finding {
                rule: "probe-coverage",
                path: model.sources[site.fi].path.clone(),
                line: site.line,
                message: format!(
                    "probe {:?} is registered but its handle is discarded — the statistic \
                     can never move; chain `.set(…)`/`.add(…)` or bind the handle",
                    site.name
                ),
            });
        }
    }

    // Exact reads must hit a registration of the right kind.
    for (marker, expect) in [("get", Kind::Counter), ("get_histogram", Kind::Histogram)] {
        for site in sites(model, marker) {
            if !valid(&site.name) || model.allowed(site.fi, site.line, "probe-coverage") {
                continue;
            }
            match registered.get(&site.name) {
                None => findings.push(Finding {
                    rule: "probe-coverage",
                    path: model.sources[site.fi].path.clone(),
                    line: site.line,
                    message: format!(
                        "`{marker}({:?})` reads a probe no code registers — the lookup \
                         returns nothing at runtime",
                        site.name
                    ),
                }),
                Some(kind) if *kind != expect => findings.push(Finding {
                    rule: "probe-coverage",
                    path: model.sources[site.fi].path.clone(),
                    line: site.line,
                    message: format!(
                        "`{marker}({:?})` reads a probe registered as a {} — wrong accessor",
                        site.name,
                        match kind {
                            Kind::Counter => "counter",
                            Kind::Histogram => "histogram",
                        }
                    ),
                }),
                Some(_) => {}
            }
        }
    }

    // Scoped views must cover at least one registered name.
    for site in sites(model, "scoped") {
        let prefix_ok = !site.name.is_empty()
            && site.name.split('.').all(|s| {
                !s.is_empty()
                    && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            });
        if !prefix_ok || model.allowed(site.fi, site.line, "probe-coverage") {
            continue;
        }
        let covers = registered.keys().any(|n| n.starts_with(&format!("{}.", site.name)));
        if !covers {
            findings.push(Finding {
                rule: "probe-coverage",
                path: model.sources[site.fi].path.clone(),
                line: site.line,
                message: format!(
                    "`scoped({:?})` matches no registered probe — the view is empty",
                    site.name
                ),
            });
        }
    }

    // Span stages: a literal stage at a recording site must be in the
    // `STAGE_NAMES` table. Skipped entirely when the model has no table
    // (a workspace without the span subsystem has nothing to check).
    let stages = stage_table(model);
    if !stages.is_empty() {
        for marker in ["enter", "record_at", "record_since", "record_linked"] {
            for site in sites(model, marker) {
                if !valid(&site.name) || model.allowed(site.fi, site.line, "probe-coverage") {
                    continue;
                }
                if !stages.contains(&site.name) {
                    findings.push(Finding {
                        rule: "probe-coverage",
                        path: model.sources[site.fi].path.clone(),
                        line: site.line,
                        message: format!(
                            "`{marker}({:?})` records a span stage missing from STAGE_NAMES — \
                             debug builds panic at this site and release traces carry an \
                             unregistered stage; add it to the table or fix the name",
                            site.name
                        ),
                    });
                }
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let files = [SourceFile::parse(PathBuf::from("f.rs"), "hbc-serve", text, false)];
        check(&Model::build(&files))
    }

    #[test]
    fn bare_registration_fires() {
        let f = run("fn f(reg: &mut R) {\n    reg.counter(\"serve.requests.total\");\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("discarded"));
    }

    #[test]
    fn chained_bound_and_assigned_handles_pass() {
        assert!(run("fn f(reg: &mut R) {\n    reg.counter(\"a.hits\").set(1);\n    \
             let h = reg.histogram(\"a.lat\");\n    \
             *reg.histogram(\"a.lat\") = h2;\n    \
             export(reg.counter(\"a.hits\"));\n}\n",)
        .is_empty());
    }

    #[test]
    fn read_of_unregistered_probe_fires() {
        let f = run("fn f(reg: &R) {\n    reg.get(\"mem.never.registered\");\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no code registers"));
    }

    #[test]
    fn registered_reads_pass_and_kind_mismatch_fires() {
        let ok = "fn f(reg: &mut R) {\n    reg.counter(\"a.hits\").set(1);\n    \
                  reg.get(\"a.hits\");\n}\n";
        assert!(run(ok).is_empty());
        let bad = "fn f(reg: &mut R) {\n    reg.counter(\"a.hits\").set(1);\n    \
                   reg.get_histogram(\"a.hits\");\n}\n";
        let f = run(bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wrong accessor"));
    }

    #[test]
    fn non_probe_literals_are_ignored() {
        // Single-segment names (JSON fields, map keys) are not probes.
        assert!(run(
            "fn f(m: &Map) {\n    m.get(\"experiment\");\n    m.get(\"Results.Raw\");\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn scoped_prefix_must_cover_something() {
        let ok = "fn f(reg: &mut R) {\n    reg.counter(\"serve.cache.hits\").set(1);\n    \
                  reg.scoped(\"serve\");\n}\n";
        assert!(run(ok).is_empty());
        let f = run("fn f(reg: &mut R) {\n    reg.scoped(\"nothing\");\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("matches no registered probe"));
    }

    #[test]
    fn tests_and_allows_are_exempt() {
        assert!(
            run("#[cfg(test)]\nmod t {\n fn f(r: &mut R) { r.counter(\"a.b\"); }\n}\n").is_empty()
        );
        assert!(run(
            "fn f(reg: &mut R) {\n    // hbc-allow: probe-coverage (registered for export shape)\n    \
             reg.counter(\"serve.reserved.slot\");\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn span_stage_literals_must_be_in_the_table() {
        let table = "pub const STAGE_NAMES: &[&str] = &[\"serve.parse\", \"exec.run\"];\n";
        let ok = format!(
            "{table}fn f(spans: &S) {{\n    let _g = enter(\"exec.run\");\n    \
             record_since(\"exec.run\", 0);\n    \
             spans.record_at(\"serve.parse\", 1, 0, 10, 250);\n    \
             spans.record_linked(\"exec.run\", 7, 1, 0, 10, 250);\n}}\n"
        );
        assert!(run(&ok).is_empty());
        let bad = format!("{table}fn f() {{\n    let _g = enter(\"serve.parze\");\n}}\n");
        let f = run(&bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing from STAGE_NAMES"));
        let bad_linked = format!(
            "{table}fn f(s: &S) {{\n    s.record_linked(\"exec.rum\", 7, 1, 0, 1, 2);\n}}\n"
        );
        let f = run(&bad_linked);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("record_linked"));
    }

    #[test]
    fn span_checks_are_silent_without_a_table_and_skip_non_dotted_names() {
        // No STAGE_NAMES in the model: nothing to check against.
        assert!(run("fn f() {\n    let _g = enter(\"not.in.any.table\");\n}\n").is_empty());
        // Non-dotted literals are not stage names (unrelated `enter` APIs).
        let table = "pub const STAGE_NAMES: &[&str] = &[\"serve.parse\"];\n";
        assert!(run(&format!("{table}fn f(m: &M) {{\n    m.enter(\"once\");\n}}\n")).is_empty());
    }

    #[test]
    fn fixtures_match_expectations() {
        for sub in ["probe_coverage", "span_coverage"] {
            let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(sub);
            let bad = std::fs::read_to_string(dir.join("violation.rs")).unwrap();
            let ok = std::fs::read_to_string(dir.join("allowed.rs")).unwrap();
            assert!(!run(&bad).is_empty(), "{sub}/violation.rs should fire");
            assert!(run(&ok).is_empty(), "{sub}/allowed.rs should be clean");
        }
    }
}
