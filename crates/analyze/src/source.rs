//! Source model: comment/string stripping, `hbc-allow` annotations, and
//! `#[cfg(test)]` block detection.

use std::path::PathBuf;

/// One line of a scanned file.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments and string/char-literal contents removed.
    /// Token scans run against this, so `"HashMap"` inside a string or a
    /// doc comment never fires a rule.
    pub code: String,
    /// The original, unstripped source text — for rules that must read
    /// string-literal contents (e.g. `probe-naming`). Gate matches on
    /// `code` first so comments still never fire.
    pub raw: String,
    /// Rules allowed on this line via `// hbc-allow: <rules>` (on the line
    /// itself or alone on the line above).
    pub allows: Vec<String>,
    /// True inside `#[cfg(test)]` blocks or files under `tests/`,
    /// `benches/`, `examples/`.
    pub is_test: bool,
}

/// One `hbc-allow` / `hbc-allow-file` annotation site, kept for audit
/// listings (`hbc-analyze allows`).
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the annotation comment sits on.
    pub line: usize,
    /// The rules it allows.
    pub rules: Vec<String>,
    /// True for `hbc-allow-file` (whole-file scope).
    pub file_level: bool,
    /// Free text following the rule list — the written justification.
    /// Empty when the author gave none.
    pub justification: String,
}

/// A scanned Rust source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as scanned (workspace-relative when produced by
    /// [`crate::workspace::scan`]).
    pub path: PathBuf,
    /// Cargo package name of the owning crate (e.g. `hbc-mem`).
    pub crate_name: String,
    /// Rules allowed for the whole file via `// hbc-allow-file: <rules>`.
    pub file_allows: Vec<String>,
    /// The stripped lines, in order.
    pub lines: Vec<Line>,
    /// Every annotation site in the file, in order.
    pub annotations: Vec<Annotation>,
}

impl SourceFile {
    /// Parses `text` into the line model. `all_test` marks every line as
    /// test code (used for `tests/` and `benches/` trees).
    pub fn parse(path: PathBuf, crate_name: &str, text: &str, all_test: bool) -> Self {
        let stripped = strip(text);
        let raws: Vec<&str> = text.lines().collect();
        let mut file_allows = Vec::new();
        let mut annotations = Vec::new();
        let mut lines: Vec<Line> = Vec::with_capacity(stripped.len());
        // Allow annotations: an annotation sharing a line with code guards
        // that line; an annotation alone on a line guards the next line.
        let mut pending: Vec<String> = Vec::new();
        for (idx, (code, comment)) in stripped.into_iter().enumerate() {
            let mut allows = std::mem::take(&mut pending);
            for (marker, file_level) in [("hbc-allow:", false), ("hbc-allow-file:", true)] {
                if let Some((rules, justification)) = parse_allow_full(&comment, marker) {
                    if file_level {
                        file_allows.extend(rules.iter().cloned());
                    } else {
                        allows.extend(rules.iter().cloned());
                    }
                    annotations.push(Annotation {
                        line: idx + 1,
                        rules,
                        file_level,
                        justification,
                    });
                }
            }
            if code.trim().is_empty() && !allows.is_empty() {
                pending = allows;
                allows = Vec::new();
            }
            let raw = raws.get(idx).copied().unwrap_or("").to_string();
            lines.push(Line { code, raw, allows, is_test: all_test });
        }
        if !all_test {
            mark_test_blocks(&mut lines);
        }
        SourceFile { path, crate_name: crate_name.to_string(), file_allows, lines, annotations }
    }

    /// True if `rule` is allowed on 1-based line `line` (per-line or
    /// file-level annotation).
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self.lines.get(line - 1).is_some_and(|l| l.allows.iter().any(|r| r == rule))
    }
}

/// Extracts the rule list following `marker` in a comment, plus the free
/// text after it — the written justification, e.g.
/// `hbc-allow: determinism, units (why…)` → `([determinism, units],
/// "(why…)")`. `None` when the marker is absent or names no rules.
///
/// The marker must open the comment (doc-comment `/`/`!` and whitespace
/// aside) — prose that merely *mentions* `hbc-allow:` mid-sentence is not
/// an annotation.
fn parse_allow_full(comment: &str, marker: &str) -> Option<(Vec<String>, String)> {
    let head = comment.trim_start_matches(['/', '!']).trim_start();
    let mut rest = head.strip_prefix(marker)?.trim_start();
    let mut rules = Vec::new();
    loop {
        let rule: String =
            rest.chars().take_while(|c| c.is_ascii_lowercase() || *c == '-').collect();
        if rule.is_empty() {
            break;
        }
        rest = rest[rule.len()..].trim_start();
        rules.push(rule);
        match rest.strip_prefix(',') {
            Some(after) => rest = after.trim_start(),
            None => break,
        }
    }
    if rules.is_empty() {
        return None;
    }
    Some((rules, rest.trim().to_string()))
}

/// Splits `text` into per-line `(code, comment)` pairs. The code part has
/// comments removed and string/char-literal contents blanked (delimiters
/// kept); the comment part holds comment text for annotation parsing.
fn strip(text: &str) -> Vec<(String, String)> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && raw_str_hashes(&chars, i + 1).is_some() {
                    let hashes = raw_str_hashes(&chars, i + 1).unwrap();
                    code.push_str("r\"");
                    state = State::RawStr(hashes);
                    i += 2 + hashes;
                } else if c == '\'' {
                    i += skip_char_literal(&chars, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — but a line-continuation
                    // escape (`\` before the newline) still ends a source
                    // line, or every line after it would be off by one.
                    if chars.get(i + 1) == Some(&'\n') {
                        out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

/// If `chars[from..]` starts a raw-string body (`#* "`), returns the hash
/// count; `r` itself sits at `from - 1`. Rejects identifiers like `raw`.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<usize> {
    let prev_is_ident =
        from >= 2 && chars.get(from - 2).is_some_and(|p| p.is_alphanumeric() || *p == '_');
    if prev_is_ident {
        return None;
    }
    let mut hashes = 0;
    while chars.get(from + hashes) == Some(&'#') {
        hashes += 1;
    }
    (chars.get(from + hashes) == Some(&'"')).then_some(hashes)
}

/// Distinguishes char literals from lifetimes at `chars[at] == '\''`.
/// Returns how many chars to consume; pushes a placeholder to `code`.
fn skip_char_literal(chars: &[char], at: usize, code: &mut String) -> usize {
    if chars.get(at + 1) == Some(&'\\') {
        // Escaped char literal: skip to the closing quote.
        let mut j = at + 2;
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        code.push_str("' '");
        j + 1 - at
    } else if chars.get(at + 2) == Some(&'\'') && chars.get(at + 1) != Some(&'\'') {
        code.push_str("' '");
        3
    } else {
        // A lifetime (or stray quote): keep it as-is.
        code.push('\'');
        1
    }
}

/// Marks lines covered by `#[cfg(test)]` items (including conjunctive
/// forms like `#[cfg(all(test, feature = "…"))]`) as test code by counting
/// braces from the attribute to the end of the item it introduces.
fn mark_test_blocks(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") && !lines[i].code.contains("#[cfg(all(test") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            lines[j].is_test = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Iterator over identifier tokens of a code line, with byte offsets.
pub fn tokens(code: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push((start, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "hbc-mem", text, false)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let x = \"HashMap\"; // HashMap here too\nuse std::fmt;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("std::fmt"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let f = parse("let s = r#\"Instant \" quote\"#; let c = '{'; let l: &'static str = \"\";");
        assert!(!f.lines[0].code.contains("Instant"));
        assert_eq!(f.lines[0].code.matches('{').count(), 0);
        assert!(f.lines[0].code.contains("'static"));
    }

    #[test]
    fn allow_same_line_and_line_above() {
        let f =
            parse("// hbc-allow: determinism (audited)\nuse foo;\nbar(); // hbc-allow: units\n");
        assert!(f.allowed(2, "determinism"));
        assert!(!f.allowed(2, "units"));
        assert!(f.allowed(3, "units"));
        assert!(!f.allowed(1, "determinism")); // annotation line guards the next line
    }

    #[test]
    fn allow_file_and_multiple_rules() {
        let f =
            parse("// hbc-allow-file: units\nfn a() {}\n// hbc-allow: determinism, panic\nb();");
        assert!(f.allowed(2, "units"));
        assert!(f.allowed(4, "determinism"));
        assert!(f.allowed(4, "panic"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = parse(text);
        assert!(!f.lines[0].is_test);
        assert!(f.lines[1].is_test);
        assert!(f.lines[3].is_test);
        assert!(!f.lines[5].is_test);
    }

    #[test]
    fn cfg_all_test_blocks_are_marked() {
        let text = "#[cfg(all(test, feature = \"probe\"))]\nmod probe_tests {\n    fn t() { x.unwrap(); }\n}\nfn live() {}\n";
        let f = parse(text);
        assert!(f.lines[0].is_test);
        assert!(f.lines[2].is_test);
        assert!(!f.lines[4].is_test);
    }

    #[test]
    fn raw_lines_are_retained() {
        let f = parse("let n = reg.counter(\"cpu.run.cycles\");\n");
        assert!(!f.lines[0].code.contains("cpu.run.cycles"));
        assert!(f.lines[0].raw.contains("cpu.run.cycles"));
    }

    #[test]
    fn token_iteration() {
        let toks: Vec<&str> = tokens("use std::collections::HashMap;").map(|(_, t)| t).collect();
        assert_eq!(toks, vec!["use", "std", "collections", "HashMap"]);
    }

    #[test]
    fn raw_string_containing_slashes_is_not_a_comment() {
        // `//` inside a raw string must not start a line comment: the code
        // after the literal is still live.
        let f = parse("let url = r\"https://example.com\"; use std::fmt;\n");
        assert!(f.lines[0].code.contains("use std::fmt"));
        assert!(!f.lines[0].code.contains("example.com"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = parse("/* outer /* inner */ still comment */ live();\nnext();\n");
        assert!(!f.lines[0].code.contains("still comment"));
        assert!(f.lines[0].code.contains("live()"));
        assert!(f.lines[1].code.contains("next()"));
    }

    #[test]
    fn allow_survives_blank_line_to_target() {
        let f = parse("// hbc-allow: determinism (audited)\n\nuse foo;\n");
        assert!(f.allowed(3, "determinism"), "annotation crosses the blank line");
        assert!(!f.allowed(2, "determinism"));
    }

    #[test]
    fn cfg_test_boundary_with_braces_on_one_line() {
        // The brace counter must see the item end even when open and close
        // share a line, and must not bleed into the next item.
        let text = "#[cfg(test)]\nmod t { fn f() { x.unwrap(); } }\nfn live() {}\n";
        let f = parse(text);
        assert!(f.lines[1].is_test);
        assert!(!f.lines[2].is_test, "test marking stops at the closing brace");
    }

    #[test]
    fn string_line_continuation_keeps_line_numbering() {
        // A `\`-continued string spans two source lines; the model must
        // still emit both, or every annotation below it shifts by one.
        let f = parse("let s = \"a \\\n   b\";\n// hbc-allow: panic (audited)\nx.unwrap();\n");
        assert_eq!(f.lines.len(), 4);
        assert!(f.allowed(4, "panic"));
    }

    #[test]
    fn annotations_record_rules_scope_and_justification() {
        let text = "// hbc-allow-file: units (legacy raw API)\n\
                    fn a() {}\n\
                    x(); // hbc-allow: determinism, panic (seeded fallback)\n\
                    y(); // hbc-allow: probe-naming\n";
        let f = parse(text);
        assert_eq!(f.annotations.len(), 3);
        assert!(f.annotations[0].file_level);
        assert_eq!(f.annotations[0].rules, ["units"]);
        assert_eq!(f.annotations[0].justification, "(legacy raw API)");
        assert_eq!(f.annotations[1].line, 3);
        assert_eq!(f.annotations[1].rules, ["determinism", "panic"]);
        assert_eq!(f.annotations[1].justification, "(seeded fallback)");
        assert!(f.annotations[2].justification.is_empty());
    }
}
