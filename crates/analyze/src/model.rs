//! The semantic model: items, call edges, and a workspace symbol table
//! built from the [`crate::lexer`] token stream.
//!
//! This is what turns the analyzer from a line scanner into a (small)
//! program analyzer. For every scanned file the model extracts:
//!
//! * **functions** — name, visibility, owning `impl` target, the token
//!   ranges of the signature and body;
//! * **impl blocks** — target type and trait (if any);
//! * **structs** — name and field list;
//! * **call edges** — within each function body, the plain (non-method)
//!   calls that can be resolved to a function defined in the same crate.
//!
//! Resolution is deliberately conservative: a call resolves only when the
//! callee name names *exactly one* function in the crate — ambiguous names
//! (`new`, `get`) resolve to nothing rather than to the wrong thing. That
//! keeps whole-program rules like `lock-discipline` free of false paths at
//! the cost of missing some true ones, the right trade for a gate that
//! must stay at zero unaudited findings.
//!
//! The line model ([`crate::source`]) remains the authority on
//! `hbc-allow` annotations and `#[cfg(test)]` boundaries; the model caries
//! a reference to it so rules can gate token-level findings on line-level
//! context.

use crate::lexer::{lex, Tok, TokKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::ops::Range;

/// A function (free or associated) found in a file.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// The `impl` target type this function is an associated item of,
    /// if any (`Flight` for `impl Flight { fn wait … }`).
    pub impl_target: Option<String>,
    /// Token index range of the signature (from `fn` to the body brace or
    /// terminating semicolon, exclusive).
    pub sig: Range<usize>,
    /// Token index range of the body, *including* the delimiting braces.
    /// Empty for bodyless declarations.
    pub body: Range<usize>,
}

/// A struct declaration and its named fields.
#[derive(Debug, Clone)]
pub struct Struct {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields as `(name, type-token texts)`; empty for tuple and
    /// unit structs.
    pub fields: Vec<(String, Vec<String>)>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct Impl {
    /// The self type the block implements on.
    pub target: String,
    /// The trait being implemented, for trait impls.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
}

/// One resolved or unresolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub callee: String,
    /// 1-based line of the call.
    pub line: usize,
    /// True for `.callee(…)` method-syntax calls (never resolved).
    pub is_method: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
}

/// Everything the model knows about one file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// The file's full token stream.
    pub tokens: Vec<Tok>,
    /// Functions in source order.
    pub functions: Vec<Function>,
    /// Structs in source order.
    pub structs: Vec<Struct>,
    /// Impl blocks in source order.
    pub impls: Vec<Impl>,
}

/// Identifies a function as (file index, function index).
pub type FnId = (usize, usize);

/// The workspace model: per-file token streams and items plus the
/// crate-level symbol table rules query.
#[derive(Debug)]
pub struct Model<'a> {
    /// The underlying line model, index-aligned with [`Model::files`].
    pub sources: &'a [SourceFile],
    /// Per-file models, index-aligned with `sources`.
    pub files: Vec<FileModel>,
    /// Crate name → function name → the `FnId`s bearing that name.
    by_crate: BTreeMap<String, BTreeMap<String, Vec<FnId>>>,
}

impl<'a> Model<'a> {
    /// Lexes and parses every source file into the model.
    pub fn build(sources: &'a [SourceFile]) -> Model<'a> {
        let files: Vec<FileModel> = sources
            .iter()
            .map(|src| {
                let text: String =
                    src.lines.iter().map(|l| l.raw.as_str()).collect::<Vec<_>>().join("\n");
                parse_file(&lex(&text))
            })
            .collect();
        let mut by_crate: BTreeMap<String, BTreeMap<String, Vec<FnId>>> = BTreeMap::new();
        for (fi, (src, fm)) in sources.iter().zip(&files).enumerate() {
            let table = by_crate.entry(src.crate_name.clone()).or_default();
            for (gi, f) in fm.functions.iter().enumerate() {
                table.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        Model { sources, files, by_crate }
    }

    /// Resolves a plain call by name within `crate_name`: `Some` exactly
    /// when one function in the crate bears that name.
    pub fn resolve(&self, crate_name: &str, callee: &str) -> Option<FnId> {
        let ids = self.by_crate.get(crate_name)?.get(callee)?;
        match ids.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// The function named by `id`.
    pub fn function(&self, id: FnId) -> &Function {
        &self.files[id.0].functions[id.1]
    }

    /// Iterates `(file index, function)` over every function in
    /// `crate_name`, in file order.
    pub fn crate_functions<'m>(
        &'m self,
        crate_name: &'m str,
    ) -> impl Iterator<Item = (usize, &'m Function)> + 'm {
        self.sources
            .iter()
            .zip(&self.files)
            .enumerate()
            .filter(move |(_, (src, _))| src.crate_name == crate_name)
            .flat_map(|(fi, (_, fm))| fm.functions.iter().map(move |f| (fi, f)))
    }

    /// True when 1-based `line` of file `fi` is test code.
    pub fn is_test_line(&self, fi: usize, line: usize) -> bool {
        self.sources[fi].lines.get(line.saturating_sub(1)).is_none_or(|l| l.is_test)
    }

    /// True when `rule` is allowed on 1-based `line` of file `fi`.
    pub fn allowed(&self, fi: usize, line: usize, rule: &str) -> bool {
        self.sources[fi].allowed(line, rule)
    }

    /// Plain-syntax calls inside `f`'s body (method calls excluded).
    pub fn plain_calls(&self, fi: usize, f: &Function) -> Vec<Call> {
        calls(&self.files[fi].tokens, f.body.clone()).into_iter().filter(|c| !c.is_method).collect()
    }
}

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "in", "as", "let", "mut", "ref",
    "move", "fn", "impl", "struct", "enum", "pub", "use", "mod", "where", "unsafe", "dyn", "box",
    "break", "continue", "crate", "super",
];

/// Extracts call sites (`ident(`) from `range` of `toks`.
pub fn calls(toks: &[Tok], range: Range<usize>) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 1 < range.end.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks[i + 1].is_punct('(')
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            out.push(Call { callee: t.text.clone(), line: t.line, is_method, tok: i });
        }
        i += 1;
    }
    out
}

/// Finds the token index of the `}` matching the `{` at `open` (which
/// must be a `{`). Falls back to the end of the stream on imbalance.
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let open_depth = toks[open].depth;
    for (j, t) in toks.iter().enumerate().skip(open + 1) {
        if t.is_punct('}') && t.depth == open_depth {
            return j;
        }
    }
    toks.len() - 1
}

/// Parses one file's token stream into its item model.
fn parse_file(toks: &[Tok]) -> FileModel {
    let mut functions = Vec::new();
    let mut structs = Vec::new();
    let mut impls = Vec::new();
    // Impl targets as (body token range, target) so functions can find
    // their owner by containment.
    let mut impl_ranges: Vec<(Range<usize>, String)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((imp, body)) = parse_impl(toks, i) {
                impl_ranges.push((body, imp.target.clone()));
                impls.push(imp);
            }
            i += 1;
        } else if t.is_ident("struct") {
            if let Some((s, next)) = parse_struct(toks, i) {
                structs.push(s);
                i = next;
            } else {
                i += 1;
            }
        } else if t.is_ident("fn") {
            if let Some(f) = parse_fn(toks, i, &impl_ranges) {
                i = if f.body.is_empty() { f.sig.end } else { f.body.end };
                functions.push(f);
            } else {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    FileModel { tokens: toks.to_vec(), functions, structs, impls }
}

/// Parses the `impl` whose keyword sits at `at`; returns the item and its
/// body token range.
fn parse_impl(toks: &[Tok], at: usize) -> Option<(Impl, Range<usize>)> {
    let line = toks[at].line;
    // Collect the header idents up to the opening brace; `impl<T> Tr for
    // Ty<T> { … }` has header idents [T, Tr, for, Ty, T].
    let open = (at + 1..toks.len()).find(|&j| toks[j].is_punct('{'))?;
    // Skip generic parameters directly after `impl` by tracking `<…>`.
    let mut angle = 0i32;
    let mut names: Vec<(&str, bool)> = Vec::new(); // (ident, inside generics)
    for t in &toks[at + 1..open] {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.kind == TokKind::Ident {
            names.push((t.text.as_str(), angle > 0));
        }
    }
    let for_pos = names.iter().position(|(n, ing)| *n == "for" && !ing);
    let target = match for_pos {
        Some(p) => names[p + 1..].iter().find(|(_, ing)| !ing).map(|(n, _)| *n)?,
        None => names.iter().find(|(_, ing)| !ing).map(|(n, _)| *n)?,
    };
    // For trait impls, the trait is the last path segment before `for`
    // (`impl std::fmt::Display for Cache` → `Display`).
    let trait_name = for_pos
        .and_then(|p| names[..p].iter().rev().find(|(_, ing)| !ing).map(|(n, _)| n.to_string()));
    let close = matching_brace(toks, open);
    Some((Impl { target: target.to_string(), trait_name, line }, open..close + 1))
}

/// Parses the `struct` whose keyword sits at `at`; returns the item and
/// the token index to continue from.
fn parse_struct(toks: &[Tok], at: usize) -> Option<(Struct, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let line = toks[at].line;
    let name = name_tok.text.clone();
    // Find what ends the declaration: `{` (named fields), `(` (tuple), or
    // `;` (unit) — whichever comes first at angle-depth zero.
    let mut angle = 0i32;
    let mut j = at + 2;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
            break;
        }
        j += 1;
    }
    let mut fields = Vec::new();
    let mut next = j + 1;
    if j < toks.len() && toks[j].is_punct('{') {
        let close = matching_brace(toks, j);
        let field_depth = toks[j].depth + 1;
        let mut k = j + 1;
        while k < close {
            // A field is `ident :` at the field depth (skipping `pub` and
            // attributes); collect type tokens until the `,` at that depth.
            if toks[k].kind == TokKind::Ident
                && toks[k].depth == field_depth
                && !toks[k].is_ident("pub")
                && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
            {
                let fname = toks[k].text.clone();
                let mut ty = Vec::new();
                let mut m = k + 2;
                while m < close && !(toks[m].is_punct(',') && toks[m].depth == field_depth) {
                    ty.push(toks[m].text.clone());
                    m += 1;
                }
                fields.push((fname, ty));
                k = m + 1;
            } else {
                k += 1;
            }
        }
        next = close + 1;
    }
    Some((Struct { name, line, fields }, next))
}

/// Parses the `fn` whose keyword sits at `at`.
fn parse_fn(toks: &[Tok], at: usize, impl_ranges: &[(Range<usize>, String)]) -> Option<Function> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn` in a type position (`fn(u32) -> u32`)
    }
    let line = toks[at].line;
    // Visibility: walk back over qualifier tokens (`pub`, `(crate)`,
    // `const`, `unsafe`, `async`, `extern`) without crossing an item
    // boundary, and see whether one of them is `pub`.
    let mut is_pub = false;
    let mut back = at;
    while back > 0 {
        let t = &toks[back - 1];
        let qualifier = t.is_ident("pub")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.is_punct('(')
            || t.is_punct(')')
            || t.kind == TokKind::Str; // `extern "C"`
        if !qualifier {
            break;
        }
        if t.is_ident("pub") {
            is_pub = true;
        }
        back -= 1;
    }
    // The signature runs to the body `{` or a `;`, at the fn's own depth
    // (default-value braces cannot appear in signatures).
    let fn_depth = toks[at].depth;
    let mut j = at + 1;
    let mut body = 0..0;
    let mut sig_end = toks.len();
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && t.depth == fn_depth {
            let close = matching_brace(toks, j);
            body = j..close + 1;
            sig_end = j;
            break;
        }
        if t.is_punct(';') && t.depth == fn_depth {
            sig_end = j;
            break;
        }
        j += 1;
    }
    let impl_target =
        impl_ranges.iter().find(|(range, _)| range.contains(&at)).map(|(_, target)| target.clone());
    Some(Function {
        name: name_tok.text.clone(),
        line,
        is_pub,
        impl_target,
        sig: at..sig_end,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn model_of(text: &str) -> FileModel {
        parse_file(&lex(text))
    }

    #[test]
    fn functions_with_bodies_and_signatures() {
        let m = model_of("pub fn alpha(x: u64) -> u64 { beta(x) }\nfn beta(x: u64) -> u64 { x }\n");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.functions[0].name, "alpha");
        assert!(m.functions[0].is_pub);
        assert!(!m.functions[1].is_pub);
        let body_calls = calls(&m.tokens, m.functions[0].body.clone());
        assert_eq!(body_calls.len(), 1);
        assert_eq!(body_calls[0].callee, "beta");
        assert!(!body_calls[0].is_method);
    }

    #[test]
    fn impl_targets_attach_to_functions() {
        let text = "struct Cache;\nimpl Cache {\n    pub fn get(&self) {}\n}\n\
                    impl std::fmt::Display for Cache {\n    fn fmt(&self, f: &mut F) -> R { todo!() }\n}\n";
        let m = model_of(text);
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].target, "Cache");
        assert_eq!(m.impls[1].target, "Cache");
        assert_eq!(m.impls[1].trait_name.as_deref(), Some("Display"));
        let get = m.functions.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.impl_target.as_deref(), Some("Cache"));
    }

    #[test]
    fn generic_impls_resolve_the_self_type() {
        let m = model_of("impl<T: Clone> Holder<T> {\n    fn take(&self) {}\n}\n");
        assert_eq!(m.impls[0].target, "Holder");
        assert_eq!(m.functions[0].impl_target.as_deref(), Some("Holder"));
    }

    #[test]
    fn struct_fields_are_extracted() {
        let text = "pub struct FooConfig {\n    pub banks: u32,\n    line_bytes: u64,\n}\n\
                    struct Unit;\nstruct Pair(u32, u32);\n";
        let m = model_of(text);
        assert_eq!(m.structs.len(), 3);
        let foo = &m.structs[0];
        assert_eq!(foo.name, "FooConfig");
        assert_eq!(foo.fields.len(), 2);
        assert_eq!(foo.fields[0].0, "banks");
        assert_eq!(foo.fields[1].1, ["u64"]);
        assert!(m.structs[1].fields.is_empty());
    }

    #[test]
    fn method_calls_are_marked() {
        let m = model_of("fn f(x: &X) { x.load(); store(x); }\n");
        let cs = calls(&m.tokens, m.functions[0].body.clone());
        assert_eq!(cs.len(), 2);
        assert!(cs[0].is_method);
        assert!(!cs[1].is_method);
    }

    #[test]
    fn resolution_requires_uniqueness() {
        let a = SourceFile::parse(
            PathBuf::from("a.rs"),
            "hbc-serve",
            "fn only_here() {}\nfn new() {}\n",
            false,
        );
        let b = SourceFile::parse(PathBuf::from("b.rs"), "hbc-serve", "fn new() {}\n", false);
        let sources = [a, b];
        let model = Model::build(&sources);
        assert!(model.resolve("hbc-serve", "only_here").is_some());
        assert!(model.resolve("hbc-serve", "new").is_none(), "ambiguous names never resolve");
        assert!(model.resolve("hbc-mem", "only_here").is_none(), "resolution is per-crate");
    }

    #[test]
    fn multi_line_signatures_span_lines() {
        let m = model_of("pub fn blend(\n    a: Fo4,\n    b: u64,\n) -> Fo4 {\n    a\n}\n");
        let f = &m.functions[0];
        let sig_texts: Vec<&str> =
            m.tokens[f.sig.clone()].iter().map(|t| t.text.as_str()).collect();
        assert!(sig_texts.contains(&"u64"));
        assert!(sig_texts.contains(&"Fo4"));
    }
}
