//! End-to-end cluster tests: determinism through routing, failover on a
//! killed worker, and graceful coordinator drain.
//!
//! The serving contract under test: a response fetched through the
//! coordinator is byte-identical to `RunRequest::execute` for the same
//! spec — no matter which worker answered, and no matter whether the
//! spec's primary worker died first.

use std::time::{Duration, Instant};

use hbc_cluster::coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle};
use hbc_cluster::ring;
use hbc_cluster::worker::{Worker, WorkerConfig};
use hbc_serve::client::HttpClient;
use hbc_serve::metrics::parse_prometheus;
use hbc_serve::spec::mixed_request;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn http() -> HttpClient {
    HttpClient::new(CLIENT_TIMEOUT)
}

fn test_worker() -> Worker {
    let config = WorkerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: None, // No on-disk shard: tests must not write results/cache.
        ..WorkerConfig::default()
    };
    Worker::bind(config).expect("worker binds")
}

fn test_coordinator(workers: &[&Worker]) -> Coordinator {
    let config = CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: workers.iter().map(|w| w.addr().to_string()).collect(),
        handlers: 2,
        request_timeout: Duration::from_secs(60),
        wire_timeout: Duration::from_secs(10),
        probe_interval: Duration::from_millis(100),
        ..CoordinatorConfig::default()
    };
    Coordinator::bind(config).expect("coordinator binds")
}

#[test]
fn responses_are_byte_identical_through_routing() {
    let w1 = test_worker();
    let w2 = test_worker();
    let coordinator = test_coordinator(&[&w1, &w2]);
    let addr = coordinator.addr();
    let names = vec![w1.addr().to_string(), w2.addr().to_string()];

    for index in 0..6u64 {
        let spec = mixed_request(7, index);
        let expected = spec.execute();
        let primary = names[ring::candidates(&spec.spec_hash(), &names)[0]].clone();

        let first =
            http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
        assert_eq!(first.status, 200, "spec {index}: {}", first.text());
        assert_eq!(
            first.body,
            expected.as_bytes(),
            "spec {index}: routed response must be byte-identical to direct execution"
        );
        assert_eq!(
            first.header("X-Worker"),
            Some(primary.as_str()),
            "spec {index} must land on its rendezvous primary"
        );

        // The repeat lands on the same shard and replays its cache.
        let second =
            http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
        assert_eq!(second.status, 200);
        assert_eq!(second.body, expected.as_bytes());
        assert_eq!(second.header("X-Worker"), Some(primary.as_str()));
        assert_eq!(
            second.header("X-Cache"),
            Some("hit-memory"),
            "spec {index}: the repeat must be a shard-local cache hit"
        );
    }

    // Both shards took traffic (the mixed stream spreads across workers).
    let metrics = http().get(addr, "/metrics").expect("metrics fetch");
    let samples = parse_prometheus(metrics.text().as_ref()).expect("metrics parse strictly");
    let forwarded: f64 =
        samples.iter().filter(|s| s.name == "cluster_forwarded_total").map(|s| s.value).sum();
    assert!(forwarded >= 12.0, "12 requests must all have been forwarded, saw {forwarded}");

    shutdown(&coordinator.handle(), addr);
    coordinator.join();
    for worker in [w1, w2] {
        worker.handle().drain();
        worker.join();
    }
}

#[test]
fn killed_primary_fails_over_byte_identically() {
    let w1 = test_worker();
    let w2 = test_worker();
    let coordinator = test_coordinator(&[&w1, &w2]);
    let addr = coordinator.addr();
    let names = vec![w1.addr().to_string(), w2.addr().to_string()];

    // Pick a spec and identify its rendezvous primary and survivor.
    let spec = mixed_request(11, 0);
    let expected = spec.execute();
    let order = ring::candidates(&spec.spec_hash(), &names);
    let (victim, survivor) = if order[0] == 0 { (&w1, &w2) } else { (&w2, &w1) };
    let survivor_name = survivor.addr().to_string();

    // Warm the routing path, then kill the primary mid-service: every
    // live connection is severed, the way a crashed process dies.
    let warm = http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Worker"), Some(names[order[0]].as_str()));
    victim.handle().kill();

    // The same spec now fails over to the survivor — same bytes.
    let after = http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
    assert_eq!(after.status, 200, "failover must succeed: {}", after.text());
    assert_eq!(
        after.body,
        expected.as_bytes(),
        "the failover response must be byte-identical to direct execution"
    );
    assert_eq!(after.header("X-Worker"), Some(survivor_name.as_str()));
    assert!(coordinator.handle().failovers() >= 1, "the failover must be counted");

    // The prober demotes the dead worker within a few probe periods.
    let deadline = Instant::now() + Duration::from_secs(5);
    let victim_name = victim.addr().to_string();
    loop {
        let health = coordinator.handle().worker_health();
        let victim_healthy = health
            .iter()
            .find(|(name, _)| *name == victim_name)
            .map(|(_, healthy)| *healthy)
            .expect("victim is a known worker");
        if !victim_healthy {
            break;
        }
        assert!(Instant::now() < deadline, "prober never demoted the killed worker");
        std::thread::sleep(Duration::from_millis(50));
    }

    // A fresh spec stream keeps answering correctly on one worker.
    for index in 1..4u64 {
        let spec = mixed_request(11, index);
        let response =
            http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, spec.execute().as_bytes());
        assert_eq!(response.header("X-Worker"), Some(survivor_name.as_str()));
    }

    let metrics = http().get(addr, "/metrics").expect("metrics fetch");
    let samples = parse_prometheus(metrics.text().as_ref()).expect("metrics parse strictly");
    let failovers = samples
        .iter()
        .find(|s| s.name == "cluster_failovers_total")
        .map(|s| s.value)
        .expect("failover counter is exported");
    assert!(failovers >= 1.0);

    shutdown(&coordinator.handle(), addr);
    coordinator.join();
    let _ = w1.handle();
    w1.handle().kill();
    w2.handle().drain();
    for worker in [w1, w2] {
        worker.join();
    }
}

#[test]
fn federated_trace_stitches_a_failover_into_one_tree() {
    let w1 = test_worker();
    let w2 = test_worker();
    let coordinator = test_coordinator(&[&w1, &w2]);
    let addr = coordinator.addr();
    let names = vec![w1.addr().to_string(), w2.addr().to_string()];

    // Kill the spec's rendezvous primary *before* the request: the
    // coordinator still plans it first (the prober hasn't demoted it
    // yet), so one request carries a failed forward and a failover
    // retry — two `cluster.forward` spans under one request ID.
    let spec = mixed_request(11, 0);
    let order = ring::candidates(&spec.spec_hash(), &names);
    let (victim, survivor) = if order[0] == 0 { (&w1, &w2) } else { (&w2, &w1) };
    let survivor_port = u64::from(survivor.addr().port());
    victim.handle().kill();

    let response = http().post(addr, "/run", spec.to_json().as_bytes()).expect("request completes");
    assert_eq!(response.status, 200, "failover must succeed: {}", response.text());
    assert_eq!(response.header("X-Worker"), Some(survivor.addr().to_string().as_str()));

    // Wait for the prober to demote the dead worker so the federation
    // pass deterministically polls only the survivor.
    let victim_name = victim.addr().to_string();
    let deadline = Instant::now() + Duration::from_secs(5);
    while coordinator
        .handle()
        .worker_health()
        .iter()
        .any(|(name, healthy)| *name == victim_name && *healthy)
    {
        assert!(Instant::now() < deadline, "prober never demoted the killed worker");
        std::thread::sleep(Duration::from_millis(50));
    }

    let fetched = http().get(addr, "/trace?federated=1").expect("federated trace fetch");
    assert_eq!(fetched.status, 200);
    let set =
        hbc_trace::TraceSet::parse_jsonl(fetched.text().as_ref()).expect("federated stream parses");
    let report = hbc_trace::analyze(&set);

    // Both processes contributed a source, and no ring dropped spans.
    assert!(
        report.sources.iter().any(|s| s.node == "coordinator"),
        "coordinator source missing: {:?}",
        report.sources
    );
    assert!(
        report.sources.iter().any(|s| s.node == survivor.addr().to_string()),
        "survivor source missing: {:?}",
        report.sources
    );
    assert!(report.anomalies.dropped_sources.is_empty());

    // The failover request is one stitched tree: two forward attempts,
    // worker-side spans under the coordinator's request ID, no orphans.
    assert!(
        report.anomalies.orphans.is_empty(),
        "every span must link into its tree: {:?}",
        report.anomalies.orphans
    );
    assert_eq!(report.anomalies.failover_requests.len(), 1, "{report:?}");
    let failover_request = report.anomalies.failover_requests[0];
    let summary = report
        .requests
        .iter()
        .find(|r| r.request == failover_request)
        .expect("failover request is summarized");
    assert!(summary.forwards >= 2, "both forward attempts must be spans: {summary:?}");
    assert_eq!(summary.orphans, 0);
    let worker_base = survivor_port << 32;
    let cross_process = set.spans.iter().any(|s| {
        s.request == failover_request && s.stage == "cluster.worker_execute" && s.span > worker_base
    });
    assert!(cross_process, "the survivor's execute span must carry the coordinator's request ID");
    // The worker did real work for this request, so the simulation (or
    // its cache path) dominates somewhere in the stitched tree.
    assert!(
        set.spans.iter().any(|s| s.request == failover_request && s.stage == "serve.simulate"),
        "worker-side child spans must ride along in the federation"
    );

    shutdown(&coordinator.handle(), addr);
    coordinator.join();
    survivor.handle().drain();
    for worker in [w1, w2] {
        worker.join();
    }
}

#[test]
fn coordinator_drain_finishes_in_flight_and_refuses_new() {
    let worker = test_worker();
    let coordinator = test_coordinator(&[&worker]);
    let addr = coordinator.addr();

    let spec = mixed_request(23, 1);
    let expected = spec.execute();
    let body = spec.to_json();

    // Put one request in flight, then drain while it runs.
    let in_flight = std::thread::spawn(move || http().post(addr, "/run", body.as_bytes()));
    std::thread::sleep(Duration::from_millis(30));
    shutdown(&coordinator.handle(), addr);

    // New connections are refused with an orderly 503, not a reset.
    let refused = http()
        .post(addr, "/run", spec.to_json().as_bytes())
        .expect("a draining coordinator answers, it does not vanish");
    assert_eq!(refused.status, 503);

    // The in-flight request still completes, byte-identically.
    let response = in_flight
        .join()
        .expect("client thread survives")
        .expect("in-flight request completes through drain");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected.as_bytes());

    // join() returns: the drain actually terminates the coordinator…
    coordinator.join();
    // …while the worker is still alive and serving.
    assert!(worker.handle().served() >= 1);
    let alive = std::net::TcpStream::connect_timeout(&worker.addr(), Duration::from_secs(1));
    assert!(alive.is_ok(), "drain of the coordinator must not touch workers");
    worker.handle().drain();
    worker.join();
}

/// `POST /shutdown` if the coordinator still answers; fall back to the
/// handle so a test never hangs on an already-draining front door.
fn shutdown(handle: &CoordinatorHandle, addr: std::net::SocketAddr) {
    match http().post(addr, "/shutdown", b"") {
        Ok(response) if response.status == 200 => {}
        _ => handle.shutdown(),
    }
}
