//! Property tests for the cluster wire codec (`hbc-ptest` driven).
//!
//! The codec's inputs are untrusted bytes off a socket, so the
//! properties are adversarial: every random message round-trips exactly;
//! every strict prefix is `Truncated`; every payload corruption is
//! `BadChecksum`; every version skew is `VersionMismatch`; and no input
//! — structured or garbage — ever panics the decoder.

use hbc_cluster::wire::{self, Msg, TraceCtx, WireError, HEADER_LEN, MIN_VERSION, VERSION};
use hbc_ptest::{check, Gen};

/// A random string mixing ASCII, JSON punctuation, and multibyte UTF-8.
fn random_string(g: &mut Gen, max_len: usize) -> String {
    let alphabet = ["a", "z", "0", "9", " ", "\"", "{", "}", ":", ",", "\n", "\\", "é", "試", "🦀"];
    let len = g.usize_in(0, max_len);
    let mut s = String::new();
    for _ in 0..len {
        let piece: &&str = g.pick(&alphabet[..]);
        s.push_str(piece);
    }
    s
}

/// A random trace context (absent half the time, like untraced peers).
fn random_trace(g: &mut Gen) -> Option<TraceCtx> {
    if g.bool() {
        Some(TraceCtx { request: g.next_u64(), parent: g.next_u64() })
    } else {
        None
    }
}

/// A random message covering every frame kind.
fn random_msg(g: &mut Gen) -> Msg {
    match g.u32_in(1, 11) {
        1 => Msg::Run { spec_json: random_string(g, 64), trace: random_trace(g) },
        2 => Msg::RunOk {
            cache: random_string(g, 12),
            spec_hash: random_string(g, 64),
            body: random_string(g, 256),
        },
        3 => Msg::RunErr { status: g.u32_in(100, 599) as u16, message: random_string(g, 64) },
        4 => Msg::Health,
        5 => Msg::HealthOk { worker_id: random_string(g, 24), draining: g.bool() },
        6 => Msg::Stats,
        7 => {
            let n = g.usize_in(0, 8);
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((random_string(g, 24), g.next_u64()));
            }
            Msg::StatsOk { pairs }
        }
        8 => Msg::Drain,
        9 => Msg::DrainOk { worker_id: random_string(g, 24) },
        10 => Msg::Trace,
        _ => Msg::TraceOk {
            worker_id: random_string(g, 24),
            dropped: g.next_u64(),
            jsonl: random_string(g, 256),
        },
    }
}

#[test]
fn every_message_round_trips_exactly() {
    check("wire.roundtrip", 500, |g| {
        let msg = random_msg(g);
        let frame = wire::encode(&msg);
        let decoded = wire::decode(&frame).expect("a freshly encoded frame decodes");
        assert_eq!(decoded, msg);
    });
}

#[test]
fn message_sequences_round_trip_over_a_stream() {
    check("wire.stream_roundtrip", 100, |g| {
        let count = g.usize_in(1, 6);
        let messages: Vec<Msg> = (0..count).map(|_| random_msg(g)).collect();
        let mut stream_bytes = Vec::new();
        for msg in &messages {
            wire::write_msg(&mut stream_bytes, msg).expect("in-memory write succeeds");
        }
        let mut stream = &stream_bytes[..];
        for msg in &messages {
            assert_eq!(&wire::read_msg(&mut stream).expect("frame reads back"), msg);
        }
        assert!(
            matches!(wire::read_msg(&mut stream), Err(WireError::Closed)),
            "a clean EOF at a frame boundary is Closed"
        );
    });
}

#[test]
fn every_strict_prefix_is_truncated() {
    check("wire.truncation", 500, |g| {
        let frame = wire::encode(&random_msg(g));
        let cut = g.usize_in(0, frame.len() - 1);
        assert!(
            matches!(wire::decode(&frame[..cut]), Err(WireError::Truncated)),
            "a {cut}-byte prefix of a {}-byte frame must be Truncated",
            frame.len()
        );
        // The stream reader agrees: mid-frame EOF is Truncated (or Closed
        // for the empty prefix — the peer never started a frame).
        let mut stream = &frame[..cut];
        let want_closed = cut == 0;
        match wire::read_msg(&mut stream) {
            Err(WireError::Closed) => assert!(want_closed),
            Err(WireError::Truncated) => assert!(!want_closed),
            other => panic!("prefix of {cut} bytes decoded to {other:?}"),
        }
    });
}

#[test]
fn payload_corruption_is_a_checksum_error() {
    check("wire.corruption", 500, |g| {
        let msg = random_msg(g);
        let mut frame = wire::encode(&msg);
        if frame.len() == HEADER_LEN {
            return; // Kinds without a payload have nothing to corrupt.
        }
        let offset = g.usize_in(HEADER_LEN, frame.len() - 1);
        let bit = 1u8 << g.u32_in(0, 7);
        frame[offset] ^= bit;
        assert!(
            matches!(wire::decode(&frame), Err(WireError::BadChecksum { .. })),
            "flipping bit {bit:#x} at payload offset {} must fail the checksum",
            offset - HEADER_LEN
        );
    });
}

#[test]
fn version_skew_is_a_typed_mismatch() {
    check("wire.version", 200, |g| {
        let mut frame = wire::encode(&random_msg(g));
        let mut skewed = VERSION;
        while (MIN_VERSION..=VERSION).contains(&skewed) {
            skewed = (g.next_u64() & 0xffff) as u16;
        }
        frame[4..6].copy_from_slice(&skewed.to_le_bytes());
        match wire::decode(&frame) {
            Err(WireError::VersionMismatch { got }) => assert_eq!(got, skewed),
            other => panic!("version {skewed} decoded to {other:?}"),
        }
    });
}

#[test]
fn version_1_peers_degrade_to_unlinked_run_frames() {
    check("wire.v1_degrade", 300, |g| {
        let spec_json = random_string(g, 64);
        let msg = Msg::Run { spec_json: spec_json.clone(), trace: random_trace(g) };
        // A new coordinator talking to an old worker encodes at the
        // peer's version: the trace context is dropped on the wire, and
        // decoding yields an unlinked Run — never an error.
        let frame = wire::encode_versioned(&msg, 1);
        assert_eq!(frame[4..6], 1u16.to_le_bytes(), "the header declares the old version");
        match wire::decode(&frame) {
            Ok(Msg::Run { spec_json: got, trace: None }) => assert_eq!(got, spec_json),
            other => panic!("a v1 Run frame decoded to {other:?}"),
        }
    });
}

#[test]
fn arbitrary_garbage_never_panics_the_decoder() {
    check("wire.garbage", 1000, |g| {
        let len = g.usize_in(0, 96);
        let mut bytes: Vec<u8> = (0..len).map(|_| (g.next_u64() & 0xff) as u8).collect();
        // Half the time, steer garbage past the magic/version checks so
        // the payload decoders see it too.
        if g.bool() && bytes.len() >= 6 {
            bytes[..4].copy_from_slice(b"HBCW");
            bytes[4..6].copy_from_slice(&VERSION.to_le_bytes());
        }
        // Any outcome but a panic is acceptable.
        let _ = wire::decode(&bytes);
        let mut stream = &bytes[..];
        let _ = wire::read_msg(&mut stream);
    });
}
