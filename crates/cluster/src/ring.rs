//! Rendezvous (highest-random-weight) routing over the canonical spec
//! hash.
//!
//! Every `(spec, worker)` pair gets a pseudo-random score —
//! `SHA-256(spec_hash ‖ '/' ‖ worker)` truncated to a `u64` — and a spec
//! routes to the worker with the highest score. Sorting all workers by
//! descending score yields the *failover candidate list*: when the
//! primary is down, the spec moves to the second-highest worker, and so
//! on.
//!
//! Rendezvous hashing was chosen over a token ring because it needs no
//! shared state: every coordinator computes the same order from the
//! worker list alone, and removing one worker remaps only the specs that
//! worker owned (minimal disruption), so each surviving worker's LRU and
//! `results/cache/` shard stays hot across membership changes.

use hbc_serve::hash::sha256;

/// The rendezvous score of `worker` for `spec_hash` (deterministic; no
/// process state).
pub fn score(spec_hash: &str, worker: &str) -> u64 {
    let mut input = Vec::with_capacity(spec_hash.len() + worker.len() + 1);
    input.extend_from_slice(spec_hash.as_bytes());
    input.push(b'/');
    input.extend_from_slice(worker.as_bytes());
    let digest = sha256(&input);
    u64::from_le_bytes([
        digest[0], digest[1], digest[2], digest[3], digest[4], digest[5], digest[6], digest[7],
    ])
}

/// Worker indices ordered by descending rendezvous score for `spec_hash`:
/// `[primary, first failover, …]`. Ties (practically impossible with
/// distinct worker names) break toward the lower index.
pub fn candidates(spec_hash: &str, workers: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(score(spec_hash, &workers[i])), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(names: &[&str]) -> Vec<String> {
        names.iter().map(|n| n.to_string()).collect()
    }

    #[test]
    fn order_is_deterministic_and_complete() {
        let pool = workers(&["w1", "w2", "w3"]);
        let a = candidates("deadbeef", &pool);
        let b = candidates("deadbeef", &pool);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2], "every worker appears exactly once");
    }

    #[test]
    fn order_is_independent_of_listing_order() {
        let forward = workers(&["w1", "w2", "w3"]);
        let reversed = workers(&["w3", "w2", "w1"]);
        for hash in ["00", "a3f9", "deadbeef", "cafe0042"] {
            let by_name_fwd: Vec<&str> =
                candidates(hash, &forward).into_iter().map(|i| forward[i].as_str()).collect();
            let by_name_rev: Vec<&str> =
                candidates(hash, &reversed).into_iter().map(|i| reversed[i].as_str()).collect();
            assert_eq!(by_name_fwd, by_name_rev, "hash {hash}");
        }
    }

    #[test]
    fn removing_a_worker_only_remaps_its_own_specs() {
        let full = workers(&["w1", "w2", "w3"]);
        let without_w3 = workers(&["w1", "w2"]);
        for i in 0..64u32 {
            let hash = format!("{:08x}", i.wrapping_mul(0x9e37_79b9));
            let primary_full = full[candidates(&hash, &full)[0]].clone();
            let primary_less = without_w3[candidates(&hash, &without_w3)[0]].clone();
            if primary_full != "w3" {
                assert_eq!(primary_full, primary_less, "spec {hash} moved needlessly");
            }
        }
    }

    #[test]
    fn load_spreads_across_workers() {
        let pool = workers(&["w1", "w2", "w3", "w4"]);
        let mut counts = [0usize; 4];
        for i in 0..256u32 {
            let hash = format!("{:08x}", i.wrapping_mul(0x85eb_ca6b));
            counts[candidates(&hash, &pool)[0]] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!((20..=120).contains(&count), "worker {i} owns {count}/256 specs");
        }
    }
}
