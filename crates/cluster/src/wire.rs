//! The coordinator↔worker wire protocol: length-prefixed binary frames
//! with magic, version, and checksum validation.
//!
//! One frame is a 16-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "HBCW"
//!      4     2  protocol version, little-endian (in [`MIN_VERSION`]..=[`VERSION`])
//!      6     1  message kind
//!      7     1  reserved (0)
//!      8     4  payload length, little-endian (≤ [`MAX_PAYLOAD`])
//!     12     4  checksum: first 4 bytes of SHA-256(payload), little-endian
//! ```
//!
//! Input is untrusted bytes off a socket, so every failure mode is a
//! typed [`WireError`] — truncation, a foreign magic, a version skew
//! between coordinator and worker builds, a corrupt payload, an unknown
//! kind — and decoding never panics (`tests/wire_props.rs` drives the
//! codec with mutated frames to prove it). Payload field encodings are
//! little-endian integers and length-prefixed UTF-8 strings; a decoder
//! must consume the payload exactly.
//!
//! # Versioning
//!
//! Version 2 extended the `Run` payload with an optional distributed
//! trace context ([`TraceCtx`]: the coordinator's request ID plus the
//! parent span ID of its forward span) and added the `Trace`/`TraceOk`
//! frame pair for span-ring federation. The decoder accepts every
//! version in `MIN_VERSION..=VERSION`: a version-1 `Run` payload (no
//! trace suffix) decodes to `trace: None`, so worker-side spans simply
//! degrade to an unlinked local root — a skewed peer is never an error.
//! Rolling upgrades therefore go workers first (a v2 worker accepts v1
//! coordinators), coordinator last. [`encode_versioned`] exists so the
//! property suite can impersonate an old peer on both directions.

use std::fmt;
use std::io::{self, Read, Write};

use hbc_serve::hash::sha256;

/// Current protocol version; bumped on any frame or payload change.
pub const VERSION: u16 = 2;
/// Oldest protocol version this build still decodes. Frames between
/// `MIN_VERSION` and [`VERSION`] are accepted; anything outside is a
/// typed [`WireError::VersionMismatch`].
pub const MIN_VERSION: u16 = 1;
/// Frame magic, first on the wire.
pub const MAGIC: [u8; 4] = *b"HBCW";
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Payload size cap. Figure tables are a few KiB; anything near the cap
/// is a corrupt length field or abuse.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// The distributed trace context a coordinator threads through a `Run`
/// frame (protocol version 2+), so worker-side spans join the
/// coordinator's causal tree instead of starting a fresh local root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The coordinator-allocated root request ID every span of this
    /// request is recorded under, on both processes.
    pub request: u64,
    /// Span ID of the coordinator's `cluster.forward` span; worker-side
    /// root spans link to it as their parent.
    pub parent: u64,
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator → worker: run this spec (canonical-ish JSON as the
    /// HTTP API accepts it; the worker re-validates and clamps `jobs`).
    Run {
        /// The `RunRequest` spec as JSON text.
        spec_json: String,
        /// Distributed trace context (version 2+). `None` from a
        /// version-1 peer — worker spans then start a local root.
        trace: Option<TraceCtx>,
    },
    /// Worker → coordinator: the spec's figure payload.
    RunOk {
        /// Cache attribution: `miss`, `hit-memory`, or `hit-disk`.
        cache: String,
        /// The canonical spec's SHA-256 (the shard key).
        spec_hash: String,
        /// The figure payload, byte-identical to a direct `hbc-serve` hit.
        body: String,
    },
    /// Worker → coordinator: the spec failed (status mirrors the HTTP
    /// code a direct `hbc-serve` would have answered).
    RunErr {
        /// HTTP-equivalent status (`400` bad spec, `500` panic, …).
        status: u16,
        /// Human-readable reason.
        message: String,
    },
    /// Coordinator → worker: health probe.
    Health,
    /// Worker → coordinator: probe reply.
    HealthOk {
        /// The worker's self-reported identity (its bound address).
        worker_id: String,
        /// `true` once the worker is draining and must leave rotation.
        draining: bool,
    },
    /// Coordinator → worker: counter snapshot request.
    Stats,
    /// Worker → coordinator: flattened counter snapshot.
    StatsOk {
        /// `(name, value)` pairs, sorted by name.
        pairs: Vec<(String, u64)>,
    },
    /// Control → worker: finish in-flight frames, stop accepting, exit.
    Drain,
    /// Worker → control: drain acknowledged.
    DrainOk {
        /// The worker's self-reported identity.
        worker_id: String,
    },
    /// Coordinator → worker: export your span ring (version 2+), for
    /// `GET /trace?federated=1` federation.
    Trace,
    /// Worker → coordinator: the span ring snapshot (version 2+).
    TraceOk {
        /// The worker's self-reported identity (its bound address).
        worker_id: String,
        /// Spans evicted from the ring since the worker started — a
        /// non-zero count means the JSONL window is incomplete.
        dropped: u64,
        /// The retained span window as JSON lines, oldest first (the
        /// same bytes the worker's ring would export).
        jsonl: String,
    },
}

impl Msg {
    fn kind(&self) -> u8 {
        match self {
            Msg::Run { .. } => 1,
            Msg::RunOk { .. } => 2,
            Msg::RunErr { .. } => 3,
            Msg::Health => 4,
            Msg::HealthOk { .. } => 5,
            Msg::Stats => 6,
            Msg::StatsOk { .. } => 7,
            Msg::Drain => 8,
            Msg::DrainOk { .. } => 9,
            Msg::Trace => 10,
            Msg::TraceOk { .. } => 11,
        }
    }
}

/// Why reading or decoding a frame failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes read timeouts).
    Io(io::Error),
    /// Clean EOF at a frame boundary (the peer is done).
    Closed,
    /// EOF in the middle of a header or payload.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version outside
    /// [`MIN_VERSION`]`..=`[`VERSION`].
    VersionMismatch {
        /// The version the frame declared.
        got: u16,
    },
    /// The header names a message kind this build does not know.
    UnknownKind(u8),
    /// The payload does not match the header's checksum.
    BadChecksum {
        /// Checksum computed over the received payload.
        got: u32,
        /// Checksum the header declared.
        want: u32,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The payload's field encoding is invalid for its kind.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::VersionMismatch { got } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks {got}, this build accepts \
                     {MIN_VERSION}..={VERSION}"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadChecksum { got, want } => {
                write!(f, "payload checksum {got:#010x} does not match header {want:#010x}")
            }
            WireError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds the frame cap"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// First 4 bytes of SHA-256 over the payload, as a little-endian `u32`.
fn checksum(payload: &[u8]) -> u32 {
    let digest = sha256(payload);
    u32::from_le_bytes([digest[0], digest[1], digest[2], digest[3]])
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a payload; every take is bounds-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed("length overflow"))?;
        if end > self.bytes.len() {
            return Err(WireError::Malformed("field extends past payload"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload fields"))
        }
    }
}

fn encode_payload(msg: &Msg, version: u16) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Msg::Run { spec_json, trace } => {
            put_str(&mut out, spec_json);
            // A version-1 payload is the bare spec: the trace context is
            // dropped, exactly what an old coordinator would have sent.
            if version >= 2 {
                match trace {
                    Some(ctx) => {
                        out.push(1);
                        out.extend_from_slice(&ctx.request.to_le_bytes());
                        out.extend_from_slice(&ctx.parent.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
        }
        Msg::RunOk { cache, spec_hash, body } => {
            put_str(&mut out, cache);
            put_str(&mut out, spec_hash);
            put_str(&mut out, body);
        }
        Msg::RunErr { status, message } => {
            out.extend_from_slice(&status.to_le_bytes());
            put_str(&mut out, message);
        }
        Msg::Health | Msg::Stats | Msg::Drain => {}
        Msg::HealthOk { worker_id, draining } => {
            put_str(&mut out, worker_id);
            out.push(u8::from(*draining));
        }
        Msg::StatsOk { pairs } => {
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (name, value) in pairs {
                put_str(&mut out, name);
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
        Msg::DrainOk { worker_id } => put_str(&mut out, worker_id),
        Msg::Trace => {}
        Msg::TraceOk { worker_id, dropped, jsonl } => {
            put_str(&mut out, worker_id);
            out.extend_from_slice(&dropped.to_le_bytes());
            put_str(&mut out, jsonl);
        }
    }
    out
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let msg = match kind {
        1 => {
            let spec_json = r.string()?;
            // Version 1 ends here; version 2 appends a presence flag and
            // the trace IDs. Decoding by remaining bytes (rather than the
            // header version) keeps one tolerant reader for both.
            let trace = if r.remaining() == 0 {
                None
            } else {
                match r.u8()? {
                    0 => None,
                    1 => Some(TraceCtx { request: r.u64()?, parent: r.u64()? }),
                    _ => return Err(WireError::Malformed("trace presence flag is not 0/1")),
                }
            };
            Msg::Run { spec_json, trace }
        }
        2 => Msg::RunOk { cache: r.string()?, spec_hash: r.string()?, body: r.string()? },
        3 => Msg::RunErr { status: r.u16()?, message: r.string()? },
        4 => Msg::Health,
        5 => Msg::HealthOk {
            worker_id: r.string()?,
            draining: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("draining flag is not 0/1")),
            },
        },
        6 => Msg::Stats,
        7 => {
            let count = r.u32()? as usize;
            if count > MAX_PAYLOAD / 13 {
                // 13 = the minimum encoded pair size; a count beyond this
                // cannot fit the payload and would only bloat allocation.
                return Err(WireError::Malformed("stats pair count exceeds payload"));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let name = r.string()?;
                let value = r.u64()?;
                pairs.push((name, value));
            }
            Msg::StatsOk { pairs }
        }
        8 => Msg::Drain,
        9 => Msg::DrainOk { worker_id: r.string()? },
        10 => Msg::Trace,
        11 => Msg::TraceOk { worker_id: r.string()?, dropped: r.u64()?, jsonl: r.string()? },
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes `msg` as one complete frame (header + payload) at [`VERSION`].
pub fn encode(msg: &Msg) -> Vec<u8> {
    encode_versioned(msg, VERSION)
}

/// Encodes `msg` as one frame declaring (and encoding the payload at)
/// `version`, clamped to `MIN_VERSION..=VERSION`. Kinds introduced after
/// `MIN_VERSION` (`Trace`/`TraceOk`) always encode at the version that
/// introduced them. This is how the property suite impersonates an old
/// peer: a version-1 `Run` frame carries no trace suffix and must decode
/// to `trace: None` on a current build.
pub fn encode_versioned(msg: &Msg, version: u16) -> Vec<u8> {
    let mut version = version.clamp(MIN_VERSION, VERSION);
    if matches!(msg, Msg::Trace | Msg::TraceOk { .. }) {
        version = version.max(2);
    }
    let payload = encode_payload(msg, version);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.push(msg.kind());
    frame.push(0);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Validates a header's fixed fields; returns `(kind, payload_len,
/// declared checksum)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize, u32), WireError> {
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::VersionMismatch { got: version });
    }
    let kind = header[6];
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len as usize > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let want = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    Ok((kind, len as usize, want))
}

/// Decodes exactly one frame from `bytes`. A short buffer is
/// [`WireError::Truncated`]; bytes past the frame are
/// [`WireError::Malformed`] (the stream reader never produces either —
/// this entry point exists for the property tests and offline tooling).
pub fn decode(bytes: &[u8]) -> Result<Msg, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (kind, len, want) = parse_header(&header)?;
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < len {
        return Err(WireError::Truncated);
    }
    if rest.len() > len {
        return Err(WireError::Malformed("bytes beyond the frame"));
    }
    let payload = &rest[..len];
    let got = checksum(payload);
    if got != want {
        return Err(WireError::BadChecksum { got, want });
    }
    decode_payload(kind, payload)
}

/// Writes one frame and flushes.
pub fn write_msg(stream: &mut impl Write, msg: &Msg) -> io::Result<()> {
    stream.write_all(&encode(msg))?;
    stream.flush()
}

/// Fills `buf` from the stream; EOF before the first byte is `Closed`,
/// EOF after is `Truncated`.
fn read_full(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from the stream and decodes it.
pub fn read_msg(stream: &mut impl Read) -> Result<Msg, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(stream, &mut header)?;
    let (kind, len, want) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    if !payload.is_empty() {
        match read_full(stream, &mut payload) {
            Ok(()) => {}
            // EOF between header and payload is a truncation either way.
            Err(WireError::Closed) => return Err(WireError::Truncated),
            Err(e) => return Err(e),
        }
    }
    let got = checksum(&payload);
    if got != want {
        return Err(WireError::BadChecksum { got, want });
    }
    decode_payload(kind, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_stream() {
        let messages = [
            Msg::Run { spec_json: r#"{"experiment":"fig4"}"#.to_string(), trace: None },
            Msg::Run {
                spec_json: r#"{"experiment":"fig4"}"#.to_string(),
                trace: Some(TraceCtx { request: 42, parent: 7 }),
            },
            Msg::RunOk {
                cache: "miss".to_string(),
                spec_hash: "ab".repeat(32),
                body: "Table\n1 2 3\n".to_string(),
            },
            Msg::RunErr { status: 400, message: "unknown field".to_string() },
            Msg::Health,
            Msg::HealthOk { worker_id: "127.0.0.1:9101".to_string(), draining: false },
            Msg::Stats,
            Msg::StatsOk { pairs: vec![("worker.served".to_string(), 7)] },
            Msg::Drain,
            Msg::DrainOk { worker_id: "127.0.0.1:9101".to_string() },
            Msg::Trace,
            Msg::TraceOk {
                worker_id: "127.0.0.1:9101".to_string(),
                dropped: 3,
                jsonl: "{\"request\":1}\n".to_string(),
            },
        ];
        let mut wire = Vec::new();
        for msg in &messages {
            write_msg(&mut wire, msg).unwrap();
        }
        let mut stream = &wire[..];
        for msg in &messages {
            assert_eq!(&read_msg(&mut stream).unwrap(), msg);
        }
        assert!(matches!(read_msg(&mut stream), Err(WireError::Closed)));
    }

    #[test]
    fn corrupt_and_foreign_frames_are_typed_errors() {
        let good = encode(&Msg::Health);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode(&bad_magic), Err(WireError::BadMagic(_))));

        let mut future = good.clone();
        future[4] = 9;
        assert!(matches!(decode(&future), Err(WireError::VersionMismatch { got: 9 })));

        let mut unknown = good.clone();
        unknown[6] = 200;
        assert!(matches!(decode(&unknown), Err(WireError::UnknownKind(200))));

        let body = encode(&Msg::Run { spec_json: "{}".to_string(), trace: None });
        let mut flipped = body.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(decode(&flipped), Err(WireError::BadChecksum { .. })));

        assert!(matches!(decode(&body[..body.len() - 1]), Err(WireError::Truncated)));
        assert!(matches!(decode(&body[..HEADER_LEN - 2]), Err(WireError::Truncated)));
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let mut frame = encode(&Msg::Health);
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(WireError::TooLarge(_))));
        let mut stream = &frame[..];
        assert!(matches!(read_msg(&mut stream), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn version_1_run_frames_degrade_to_an_unlinked_trace() {
        // An old coordinator (or a new one impersonating it) encodes the
        // bare spec. A current build must decode it — trace None, never
        // an error: that is the rolling-upgrade contract.
        let msg = Msg::Run {
            spec_json: r#"{"experiment":"fig4"}"#.to_string(),
            trace: Some(TraceCtx { request: 9, parent: 4 }),
        };
        let v1 = encode_versioned(&msg, 1);
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), 1, "header declares version 1");
        match decode(&v1).expect("a v1 frame decodes on a v2 build") {
            Msg::Run { spec_json, trace } => {
                assert_eq!(spec_json, r#"{"experiment":"fig4"}"#);
                assert_eq!(trace, None, "the trace context is dropped, not misparsed");
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn trace_frames_always_declare_version_2() {
        let frame = encode_versioned(&Msg::Trace, 1);
        assert_eq!(u16::from_le_bytes([frame[4], frame[5]]), 2);
        assert!(matches!(decode(&frame), Ok(Msg::Trace)));
    }

    #[test]
    fn corrupt_trace_presence_flag_is_malformed() {
        let msg = Msg::Run {
            spec_json: "{}".to_string(),
            trace: Some(TraceCtx { request: 1, parent: 2 }),
        };
        let payload_flag_offset = HEADER_LEN + 4 + 2; // str len + "{}"
        let mut frame = encode(&msg);
        frame[payload_flag_offset] = 7;
        // Fix the checksum so the flag itself is what the decoder sees.
        let digest = sha256(&frame[HEADER_LEN..]);
        frame[12..16].copy_from_slice(&digest[..4]);
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }
}
