//! `hbc-cluster`: a sharded coordinator/worker serving layer on top of
//! `hbc-serve`, with failover.
//!
//! One `hbc-serve` process is bounded by a single host. This crate
//! scales the same API horizontally while keeping the serving contract
//! — byte-identity with the figure binaries — intact through routing,
//! retries, and worker death:
//!
//! * [`wire`] — the length-prefixed binary protocol between coordinator
//!   and workers: magic, version, frame kind, payload length, and a
//!   SHA-256-derived checksum, so a truncated or corrupted frame is a
//!   typed error rather than a misparse;
//! * [`ring`] — rendezvous (highest-random-weight) hashing on the
//!   canonical spec hash: each spec has a deterministic worker order
//!   `[primary, first failover, …]` computed from the membership list
//!   alone, keeping every worker's result-cache shard hot;
//! * [`worker`] — a TCP server embedding the full `hbc-serve` result
//!   stack (spec validation, content-addressed cache, simulation
//!   drivers), serving wire frames; supports graceful drain and an
//!   abrupt kill for failover tests;
//! * [`coordinator`] — the HTTP front door speaking the exact
//!   `hbc-serve` API (`POST /run`, `GET /metrics`, `GET /trace`, …),
//!   with per-worker health probes, bounded in-flight windows,
//!   per-request deadlines, and retry-with-failover to the next
//!   rendezvous candidate.
//!
//! The correctness bar (proved by `tests/cluster_e2e.rs`): a response
//! fetched through the coordinator is byte-identical to what a direct
//! `hbc-serve` would answer for the same spec — no matter which worker
//! served it, and no matter whether the primary died mid-load.
//!
//! # Example
//!
//! ```no_run
//! use hbc_cluster::coordinator::{Coordinator, CoordinatorConfig};
//! use hbc_cluster::worker::{Worker, WorkerConfig};
//!
//! let worker = Worker::bind(WorkerConfig::default()).unwrap();
//! let config = CoordinatorConfig {
//!     workers: vec![worker.addr().to_string()],
//!     ..CoordinatorConfig::default()
//! };
//! let coordinator = Coordinator::bind(config).unwrap();
//! println!("listening on http://{}", coordinator.addr());
//! coordinator.join(); // serves until a client POSTs /shutdown
//! ```

#![warn(missing_docs)]

pub mod coordinator;
pub mod ring;
pub mod wire;
pub mod worker;

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Same rationale as `hbc-serve`: one poisoned lock must not wedge every
/// later request. Every critical section here (admission queue, in-flight
/// windows, connection registry, latency histograms) completes its writes
/// before leaving, so continuing with the inner value is sound.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
