//! `hbc-cluster`: run or operate the sharded serving layer.
//!
//! ```text
//! hbc-cluster worker      [--addr HOST:PORT] [--max-jobs N]
//!                         [--cache-dir PATH|none] [--cache-entries N]
//!                         [--span-capacity N] [--idle-timeout-ms N]
//! hbc-cluster coordinator --worker HOST:PORT [--worker HOST:PORT …]
//!                         [--addr HOST:PORT] [--handlers N] [--queue N]
//!                         [--timeout-ms N] [--wire-timeout-ms N]
//!                         [--window N] [--probe-interval-ms N]
//!                         [--span-capacity N]
//! hbc-cluster health      --addr HOST:PORT
//! hbc-cluster stats       --addr HOST:PORT
//! hbc-cluster drain       --addr HOST:PORT
//! ```
//!
//! `worker` serves the binary wire protocol and embeds the full
//! `hbc-serve` result stack (one cache shard per worker — point each
//! worker at its own `--cache-dir`). `coordinator` speaks the `hbc-serve`
//! HTTP API and routes to workers by rendezvous hashing with failover.
//! `health`, `stats`, and `drain` are one-shot wire clients for scripts
//! and CI.

use std::net::TcpStream;
use std::time::Duration;

use hbc_cluster::coordinator::{Coordinator, CoordinatorConfig};
use hbc_cluster::wire::{self, Msg};
use hbc_cluster::worker::{Worker, WorkerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage("a subcommand is required") };
    let rest: Vec<String> = args.collect();
    match command.as_str() {
        "worker" => run_worker(&rest),
        "coordinator" => run_coordinator(&rest),
        "health" => wire_op(&rest, "health"),
        "stats" => wire_op(&rest, "stats"),
        "drain" => wire_op(&rest, "drain"),
        other => usage(&format!("unknown subcommand `{other}`")),
    }
}

fn run_worker(args: &[String]) {
    let mut config = WorkerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--max-jobs" => config.max_jobs = parse(&value("--max-jobs"), "--max-jobs"),
            "--cache-dir" => {
                let dir = value("--cache-dir");
                config.cache_dir =
                    if dir == "none" { None } else { Some(std::path::PathBuf::from(dir)) };
            }
            "--cache-entries" => {
                config.cache_entries = parse(&value("--cache-entries"), "--cache-entries");
            }
            "--span-capacity" => {
                config.span_capacity = parse(&value("--span-capacity"), "--span-capacity");
            }
            "--idle-timeout-ms" => {
                config.idle_timeout =
                    Duration::from_millis(parse(&value("--idle-timeout-ms"), "--idle-timeout-ms"));
            }
            other => usage(&format!("unknown flag `{other}` for worker")),
        }
    }
    let worker = match Worker::bind(config) {
        Ok(worker) => worker,
        Err(e) => fail(&format!("cannot start worker: {e}")),
    };
    println!("hbc-cluster worker listening on {}", worker.addr());
    worker.join();
    println!("hbc-cluster worker: drained and stopped");
}

fn run_coordinator(args: &[String]) {
    let mut config = CoordinatorConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--worker" => config.workers.push(value("--worker")),
            "--handlers" => {
                config.handlers = parse(&value("--handlers"), "--handlers");
                if config.handlers == 0 {
                    usage("--handlers must be at least 1");
                }
            }
            "--queue" => config.queue_capacity = parse(&value("--queue"), "--queue"),
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"));
            }
            "--wire-timeout-ms" => {
                config.wire_timeout =
                    Duration::from_millis(parse(&value("--wire-timeout-ms"), "--wire-timeout-ms"));
            }
            "--window" => config.window = parse(&value("--window"), "--window"),
            "--probe-interval-ms" => {
                config.probe_interval = Duration::from_millis(parse(
                    &value("--probe-interval-ms"),
                    "--probe-interval-ms",
                ));
            }
            "--span-capacity" => {
                config.span_capacity = parse(&value("--span-capacity"), "--span-capacity");
            }
            other => usage(&format!("unknown flag `{other}` for coordinator")),
        }
    }
    if config.workers.is_empty() {
        usage("coordinator needs at least one --worker HOST:PORT");
    }
    let coordinator = match Coordinator::bind(config) {
        Ok(coordinator) => coordinator,
        Err(e) => fail(&format!("cannot start coordinator: {e}")),
    };
    println!("hbc-cluster coordinator listening on http://{}", coordinator.addr());
    coordinator.join();
    println!("hbc-cluster coordinator: drained and stopped");
}

/// `health` / `stats` / `drain`: one wire frame to one worker, result on
/// standard output, nonzero exit if the worker is unreachable or answers
/// the wrong kind.
fn wire_op(args: &[String], op: &str) {
    let mut addr = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned(),
            other => usage(&format!("unknown flag `{other}` for {op}")),
        }
    }
    let Some(addr) = addr else { usage(&format!("{op} needs --addr HOST:PORT")) };
    let msg = match op {
        "health" => Msg::Health,
        "stats" => Msg::Stats,
        _ => Msg::Drain,
    };
    let reply =
        exchange(&addr, &msg).unwrap_or_else(|e| fail(&format!("{op} against {addr} failed: {e}")));
    match reply {
        Msg::HealthOk { worker_id, draining } => {
            println!("worker {worker_id}: {}", if draining { "draining" } else { "healthy" });
            if draining {
                std::process::exit(1);
            }
        }
        Msg::StatsOk { pairs } => {
            for (name, value) in pairs {
                println!("{name} {value}");
            }
        }
        Msg::DrainOk { worker_id } => println!("worker {worker_id}: draining"),
        other => fail(&format!("{op} against {addr}: unexpected reply {other:?}")),
    }
}

fn exchange(addr: &str, msg: &Msg) -> Result<Msg, String> {
    let parsed: std::net::SocketAddr = addr.parse().map_err(|_| format!("bad address `{addr}`"))?;
    let budget = Duration::from_secs(5);
    let mut stream =
        TcpStream::connect_timeout(&parsed, budget).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(budget)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(budget)).map_err(|e| e.to_string())?;
    wire::write_msg(&mut stream, msg).map_err(|e| e.to_string())?;
    wire::read_msg(&mut stream).map_err(|e| e.to_string())
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| usage(&format!("{flag} needs an unsigned integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: hbc-cluster worker [--addr HOST:PORT] [--max-jobs N] [--cache-dir PATH|none] \
         [--cache-entries N] [--span-capacity N] [--idle-timeout-ms N]\n\
         \x20      hbc-cluster coordinator --worker HOST:PORT [--worker HOST:PORT ...] \
         [--addr HOST:PORT] [--handlers N] [--queue N] [--timeout-ms N] [--wire-timeout-ms N] \
         [--window N] [--probe-interval-ms N] [--span-capacity N]\n\
         \x20      hbc-cluster health|stats|drain --addr HOST:PORT"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
