//! The cluster worker: a TCP server speaking the binary wire protocol,
//! embedding the full `hbc-serve` result stack (spec validation, the
//! content-addressed cache, the simulation drivers).
//!
//! One thread per connection; each connection serves frames sequentially
//! until the peer closes (the coordinator opens one connection per
//! forwarded request, so the bounded in-flight window lives on the
//! coordinator side). A `Run` frame answers exactly the bytes a direct
//! `hbc-serve` hit would: cache lookup by canonical spec hash first,
//! then a real simulation guarded by `catch_unwind`, persisted into the
//! shard's cache directory.
//!
//! Graceful drain (a `Drain` frame or [`WorkerHandle::drain`]) stops the
//! acceptor, half-closes every connection's read side so idle handlers
//! wake, and lets in-flight frames finish and answer before their
//! handlers exit. [`WorkerHandle::kill`] is the abrupt variant for
//! failover tests: it severs every connection mid-flight, the way a
//! crashed process would.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hbc_serve::cache::{ResultCache, Tier};
use hbc_serve::spans::ServeSpans;
use hbc_serve::spec::RunRequest;

use crate::lock;
use crate::wire::{self, Msg, TraceCtx, WireError};

/// Worker construction parameters.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Upper bound on the per-request `jobs` field (clamped, as in
    /// `hbc-serve`).
    pub max_jobs: usize,
    /// This shard's result-cache directory; `None` disables persistence.
    pub cache_dir: Option<std::path::PathBuf>,
    /// In-memory result-cache entries.
    pub cache_entries: usize,
    /// Most recent spans retained (exported as quantiles via `Stats`).
    pub span_capacity: usize,
    /// Read timeout per connection: an idle or wedged peer releases its
    /// handler thread after this long.
    pub idle_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_jobs: 8,
            cache_dir: Some(std::path::PathBuf::from("results/cache")),
            cache_entries: 64,
            span_capacity: 4096,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Counters the worker reports through `Stats` frames.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    executed: AtomicU64,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    panics: AtomicU64,
}

struct WorkerShared {
    addr: SocketAddr,
    max_jobs: usize,
    cache: ResultCache,
    spans: ServeSpans,
    counters: Counters,
    draining: AtomicBool,
    /// Live connections by ID, for drain (read half-close) and kill.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    idle_timeout: Duration,
}

impl WorkerShared {
    fn worker_id(&self) -> String {
        self.addr.to_string()
    }

    /// Half-closes (drain) or severs (kill) every registered connection.
    fn close_conns(&self, how: Shutdown) {
        for stream in lock(&self.conns).values() {
            let _ = stream.shutdown(how);
        }
    }

    /// Wakes the acceptor out of its blocking `accept`.
    fn poke_acceptor(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A running worker. Lifecycle: [`Worker::bind`] → coordinator traffic →
/// `Drain` frame (or [`WorkerHandle::drain`]) → [`Worker::join`].
pub struct Worker {
    shared: Arc<WorkerShared>,
    acceptor: JoinHandle<()>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// A cloneable reference to a running worker, for drain/kill and stats.
#[derive(Clone)]
pub struct WorkerHandle {
    shared: Arc<WorkerShared>,
}

impl Worker {
    /// Binds the listener and spawns the acceptor thread.
    pub fn bind(config: WorkerConfig) -> io::Result<Worker> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::new(dir.clone(), config.cache_entries),
            None => ResultCache::in_memory(config.cache_entries),
        };
        // Span/request IDs are namespaced by the bound port so a
        // federated trace merge (coordinator ring + every worker ring)
        // never sees two processes allocate the same ID. Coordinator IDs
        // stay small (base 0); worker IDs live above port << 32.
        let span_id_base = u64::from(addr.port()) << 32;
        let shared = Arc::new(WorkerShared {
            addr,
            max_jobs: config.max_jobs,
            cache,
            spans: ServeSpans::with_id_base(config.span_capacity, span_id_base),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(1),
            idle_timeout: config.idle_timeout,
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("hbc-cluster-worker-acceptor".to_string())
                .spawn(move || accept_loop(&shared, &listener, &handlers))?
        };
        Ok(Worker { shared, acceptor, handlers })
    }

    /// The bound address (the real port even when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for drain/kill and stats inspection.
    pub fn handle(&self) -> WorkerHandle {
        WorkerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Blocks until drain (or kill), then joins the acceptor and every
    /// connection handler.
    pub fn join(self) {
        let _ = self.acceptor.join();
        // The acceptor has exited, so no new handlers appear; drain the
        // list outside the lock before joining.
        let handlers: Vec<JoinHandle<()>> = lock(&self.handlers).drain(..).collect();
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl WorkerHandle {
    /// Graceful drain: in-flight frames finish and answer, idle
    /// connections close, the acceptor exits.
    pub fn drain(&self) {
        initiate_drain(&self.shared);
    }

    /// Abrupt death for failover tests: severs every connection
    /// mid-flight and stops accepting, the way a crashed process would.
    pub fn kill(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.close_conns(Shutdown::Both);
        self.shared.poke_acceptor();
    }

    /// Requests served (all frame kinds answered).
    pub fn served(&self) -> u64 {
        self.shared.counters.served.load(Ordering::Relaxed)
    }

    /// Simulations actually executed (cache misses that ran).
    pub fn executed(&self) -> u64 {
        self.shared.counters.executed.load(Ordering::Relaxed)
    }
}

fn initiate_drain(shared: &WorkerShared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Half-close every connection's read side: idle handlers wake with a
    // clean EOF, while a handler mid-execution still owns an open write
    // half to answer on.
    shared.close_conns(Shutdown::Read);
    shared.poke_acceptor();
}

fn accept_loop(
    shared: &Arc<WorkerShared>,
    listener: &TcpListener,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hbc-cluster-worker-conn".to_string())
            .spawn(move || {
                serve_conn(&conn_shared, stream);
                lock(&conn_shared.conns).remove(&conn_id);
            });
        match spawned {
            Ok(handle) => lock(handlers).push(handle),
            Err(_) => {
                lock(&shared.conns).remove(&conn_id);
            }
        }
    }
}

/// Serves one connection: frames in sequence until the peer closes, an
/// unrecoverable wire error, or drain.
fn serve_conn(shared: &Arc<WorkerShared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.idle_timeout));
    loop {
        let msg = match wire::read_msg(&mut stream) {
            Ok(msg) => msg,
            // Closed, timed out, or severed mid-frame: nothing to answer.
            Err(WireError::Closed | WireError::Truncated | WireError::Io(_)) => return,
            // A well-framed peer speaking garbage gets one typed error.
            Err(e) => {
                let reply = Msg::RunErr { status: 400, message: e.to_string() };
                let _ = wire::write_msg(&mut stream, &reply);
                return;
            }
        };
        let reply = match msg {
            Msg::Run { spec_json, trace } => {
                let (reply, rt) = handle_run(shared, &spec_json, trace);
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                // Encode (the serialize span) and close out the request's
                // root span *before* the socket write, so a `Trace` frame
                // sent the instant the reply lands can never observe a
                // ring missing this request's spans.
                let serialize_start_us = shared.spans.now_us();
                let frame = wire::encode(&reply);
                let end_us = shared.spans.now_us();
                shared.spans.record_at(
                    "serve.serialize",
                    rt.request,
                    rt.exec_span,
                    serialize_start_us,
                    end_us,
                );
                shared.spans.record_linked(
                    "cluster.worker_execute",
                    rt.exec_span,
                    rt.request,
                    rt.parent,
                    rt.start_us,
                    end_us,
                );
                if stream.write_all(&frame).is_err() || shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Msg::Health => Msg::HealthOk {
                worker_id: shared.worker_id(),
                draining: shared.draining.load(Ordering::SeqCst),
            },
            Msg::Stats => Msg::StatsOk { pairs: stats_pairs(shared) },
            Msg::Trace => Msg::TraceOk {
                worker_id: shared.worker_id(),
                dropped: shared.spans.log().dropped(),
                jsonl: shared.spans.to_jsonl(),
            },
            Msg::Drain => {
                initiate_drain(shared);
                Msg::DrainOk { worker_id: shared.worker_id() }
            }
            // Reply kinds arriving at a worker are a protocol violation.
            Msg::RunOk { .. }
            | Msg::RunErr { .. }
            | Msg::HealthOk { .. }
            | Msg::StatsOk { .. }
            | Msg::DrainOk { .. }
            | Msg::TraceOk { .. } => {
                Msg::RunErr { status: 400, message: "unexpected reply kind".to_string() }
            }
        };
        shared.counters.served.fetch_add(1, Ordering::Relaxed);
        if wire::write_msg(&mut stream, &reply).is_err() {
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Where one `Run` frame's spans attach: the (possibly remote) request
/// ID, the parent span named by the coordinator's trace context (0 when
/// the frame carried none), and the pre-allocated root span covering the
/// whole handling, closed out by `serve_conn` after the reply encodes.
struct RunTrace {
    request: u64,
    parent: u64,
    exec_span: u64,
    start_us: u64,
}

/// Executes (or replays) one spec; the body answered is byte-identical
/// to a direct `hbc-serve` hit for the same spec. When the frame carried
/// a trace context, every span joins the coordinator's request ID and
/// hangs (via `exec_span`) under its `cluster.forward` span; otherwise
/// the worker allocates a fresh local root.
fn handle_run(
    shared: &Arc<WorkerShared>,
    spec_json: &str,
    trace: Option<TraceCtx>,
) -> (Msg, RunTrace) {
    let (request, parent) = match trace {
        Some(ctx) => (ctx.request, ctx.parent),
        None => (shared.spans.begin_request(), 0),
    };
    let rt = RunTrace {
        request,
        parent,
        exec_span: shared.spans.alloc_span(),
        start_us: shared.spans.now_us(),
    };
    let reply = handle_run_inner(shared, spec_json, &rt);
    (reply, rt)
}

fn handle_run_inner(shared: &Arc<WorkerShared>, spec_json: &str, rt: &RunTrace) -> Msg {
    let mut run = match RunRequest::from_json_text(spec_json) {
        Ok(run) => run,
        Err(err) => return Msg::RunErr { status: 400, message: err.to_string() },
    };
    if run.jobs > shared.max_jobs {
        run.jobs = shared.max_jobs;
    }
    let hash = run.spec_hash();
    let canonical = run.canonical();

    let lookup_start_us = shared.spans.now_us();
    let cached = shared.cache.get(&hash, &canonical);
    shared.spans.record_at(
        "serve.cache_lookup",
        rt.request,
        rt.exec_span,
        lookup_start_us,
        shared.spans.now_us(),
    );
    if let Some((body, tier)) = cached {
        let (label, counter) = match tier {
            Tier::Memory => ("hit-memory", &shared.counters.hits_memory),
            Tier::Disk => ("hit-disk", &shared.counters.hits_disk),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        return Msg::RunOk { cache: label.to_string(), spec_hash: hash, body };
    }

    shared.counters.misses.fetch_add(1, Ordering::Relaxed);
    shared.counters.executed.fetch_add(1, Ordering::Relaxed);
    let simulate_start_us = shared.spans.now_us();
    let result = catch_unwind(AssertUnwindSafe(|| run.execute()));
    shared.spans.record_at(
        "serve.simulate",
        rt.request,
        rt.exec_span,
        simulate_start_us,
        shared.spans.now_us(),
    );
    match result {
        Ok(body) => {
            if let Err(e) = shared.cache.put(&hash, &canonical, &body) {
                eprintln!("hbc-cluster worker: persisting cache entry {hash} failed: {e}");
            }
            Msg::RunOk { cache: "miss".to_string(), spec_hash: hash, body }
        }
        Err(_) => {
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            Msg::RunErr {
                status: 500,
                message: format!("simulation for spec {hash} panicked; see worker logs"),
            }
        }
    }
}

/// The flattened counter snapshot a `Stats` frame answers: counters plus
/// execute-stage latency quantiles, sorted by name.
fn stats_pairs(shared: &WorkerShared) -> Vec<(String, u64)> {
    let c = &shared.counters;
    let mut pairs = vec![
        ("worker.executed".to_string(), c.executed.load(Ordering::Relaxed)),
        ("worker.hits_disk".to_string(), c.hits_disk.load(Ordering::Relaxed)),
        ("worker.hits_memory".to_string(), c.hits_memory.load(Ordering::Relaxed)),
        ("worker.misses".to_string(), c.misses.load(Ordering::Relaxed)),
        ("worker.panics".to_string(), c.panics.load(Ordering::Relaxed)),
        ("worker.served".to_string(), c.served.load(Ordering::Relaxed)),
    ];
    // hbc-allow: probe-coverage (a span-stage histogram lookup, not a registry read; the stage is in STAGE_NAMES)
    if let Some(h) = shared.spans.stage_histograms().get("cluster.worker_execute") {
        pairs.push(("worker.execute_p50_us".to_string(), h.quantile(0.5)));
        pairs.push(("worker.execute_p95_us".to_string(), h.quantile(0.95)));
        pairs.push(("worker.execute_p99_us".to_string(), h.quantile(0.99)));
    }
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_worker() -> Worker {
        let config = WorkerConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            idle_timeout: Duration::from_secs(30),
            ..WorkerConfig::default()
        };
        Worker::bind(config).expect("bind")
    }

    fn roundtrip(addr: SocketAddr, msg: &Msg) -> Msg {
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_msg(&mut stream, msg).expect("write");
        wire::read_msg(&mut stream).expect("read")
    }

    #[test]
    fn health_and_stats_answer() {
        let worker = test_worker();
        let addr = worker.addr();
        match roundtrip(addr, &Msg::Health) {
            Msg::HealthOk { worker_id, draining } => {
                assert_eq!(worker_id, addr.to_string());
                assert!(!draining);
            }
            other => panic!("expected HealthOk, got {other:?}"),
        }
        match roundtrip(addr, &Msg::Stats) {
            Msg::StatsOk { pairs } => {
                assert!(pairs.iter().any(|(name, _)| name == "worker.served"));
            }
            other => panic!("expected StatsOk, got {other:?}"),
        }
        worker.handle().drain();
        worker.join();
    }

    #[test]
    fn run_frame_matches_direct_execution_and_caches() {
        let worker = test_worker();
        let addr = worker.addr();
        let spec = r#"{"experiment":"table2","preset":"fast","seed":3}"#;
        let expected = RunRequest::from_json_text(spec).expect("spec parses").execute();
        match roundtrip(addr, &Msg::Run { spec_json: spec.to_string(), trace: None }) {
            Msg::RunOk { cache, body, .. } => {
                assert_eq!(cache, "miss");
                assert_eq!(body, expected, "wire payload must be byte-identical");
            }
            other => panic!("expected RunOk, got {other:?}"),
        }
        match roundtrip(addr, &Msg::Run { spec_json: spec.to_string(), trace: None }) {
            Msg::RunOk { cache, body, .. } => {
                assert_eq!(cache, "hit-memory");
                assert_eq!(body, expected);
            }
            other => panic!("expected RunOk, got {other:?}"),
        }
        assert_eq!(worker.handle().executed(), 1, "the hit must not re-simulate");
        worker.handle().drain();
        worker.join();
    }

    #[test]
    fn bad_spec_is_a_400_not_a_dead_worker() {
        let worker = test_worker();
        let addr = worker.addr();
        match roundtrip(addr, &Msg::Run { spec_json: "not json".to_string(), trace: None }) {
            Msg::RunErr { status, .. } => assert_eq!(status, 400),
            other => panic!("expected RunErr, got {other:?}"),
        }
        // Still alive and serving.
        assert!(matches!(roundtrip(addr, &Msg::Health), Msg::HealthOk { .. }));
        worker.handle().drain();
        worker.join();
    }

    /// Pulls the worker's span ring and returns its JSONL body.
    fn fetch_trace(addr: SocketAddr) -> String {
        match roundtrip(addr, &Msg::Trace) {
            Msg::TraceOk { worker_id, jsonl, .. } => {
                assert_eq!(worker_id, addr.to_string());
                jsonl
            }
            other => panic!("expected TraceOk, got {other:?}"),
        }
    }

    #[test]
    fn trace_context_re_parents_worker_spans() {
        let worker = test_worker();
        let addr = worker.addr();
        let spec = r#"{"experiment":"table2","preset":"fast","seed":4}"#;
        let trace = Some(TraceCtx { request: 7, parent: 42 });
        let run = Msg::Run { spec_json: spec.to_string(), trace };
        assert!(matches!(roundtrip(addr, &run), Msg::RunOk { .. }));

        let jsonl = fetch_trace(addr);
        let root = jsonl
            .lines()
            .find(|l| l.contains("cluster.worker_execute"))
            .expect("a worker_execute root span");
        assert!(root.contains("\"request\":7"), "root must join the remote request: {root}");
        assert!(root.contains("\"parent\":42"), "root must hang under the forward span: {root}");
        for line in jsonl.lines() {
            assert!(line.contains("\"request\":7"), "unlinked span: {line}");
        }
        // The root's own ID is port-namespaced, and the child stages
        // (cache lookup, simulate, serialize) all parent on it.
        let exec_span: u64 = root
            .split("\"span\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|id| id.parse().ok())
            .expect("root span ID");
        assert!(exec_span > u64::from(addr.port()) << 32, "span IDs must be port-namespaced");
        for stage in ["serve.cache_lookup", "serve.simulate", "serve.serialize"] {
            let line = jsonl.lines().find(|l| l.contains(stage)).expect(stage);
            assert!(line.contains(&format!("\"parent\":{exec_span}")), "detached child: {line}");
        }
        worker.handle().drain();
        worker.join();
    }

    #[test]
    fn untraced_run_allocates_a_local_root() {
        let worker = test_worker();
        let addr = worker.addr();
        let spec = r#"{"experiment":"table2","preset":"fast","seed":5}"#;
        let run = Msg::Run { spec_json: spec.to_string(), trace: None };
        assert!(matches!(roundtrip(addr, &run), Msg::RunOk { .. }));

        let jsonl = fetch_trace(addr);
        let root = jsonl
            .lines()
            .find(|l| l.contains("cluster.worker_execute"))
            .expect("a worker_execute root span");
        let local_root = (u64::from(addr.port()) << 32) + 1;
        assert!(root.contains(&format!("\"request\":{local_root}")), "{root}");
        assert!(root.contains("\"parent\":0"), "an untraced run is its own root: {root}");
        worker.handle().drain();
        worker.join();
    }

    #[test]
    fn drain_frame_acknowledges_then_join_returns() {
        let worker = test_worker();
        let addr = worker.addr();
        match roundtrip(addr, &Msg::Drain) {
            Msg::DrainOk { worker_id } => assert_eq!(worker_id, addr.to_string()),
            other => panic!("expected DrainOk, got {other:?}"),
        }
        worker.join();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
            "a drained worker must not accept new connections"
        );
    }
}
