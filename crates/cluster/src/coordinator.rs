//! The cluster coordinator: an HTTP front door speaking the exact
//! `hbc-serve` API, fanning out to worker processes over the binary wire
//! protocol.
//!
//! ```text
//!            accept          bounded queue           handler pool
//!  clients ─────────▶ acceptor ─────────────▶ handlers ── route ──▶ worker (wire)
//!                        │ queue full / draining          │ transport failure
//!                        ▼                                ▼
//!                   429 / 503                    mark unhealthy, failover
//!                                                to the next candidate
//! ```
//!
//! Routing is rendezvous hashing ([`crate::ring`]) on the canonical spec
//! hash, so one spec always lands on the same worker while that worker is
//! up — its in-memory LRU and `results/cache/` shard stay hot. Each
//! forward opens a one-shot connection (no pooling: nothing idles on a
//! draining worker), bounded by a per-worker in-flight window.
//!
//! Failure policy, in one place:
//!
//! * **Transport failure** (connect refused, timeout, severed mid-frame)
//!   marks the worker unhealthy and fails over to the next rendezvous
//!   candidate. The background prober revives workers that answer
//!   `Health` again.
//! * **Worker-reported errors** (`RunErr`, e.g. a malformed spec or a
//!   simulation panic) are forwarded verbatim and never retried: the
//!   stack is deterministic, so a second worker would fail identically.
//! * **Exhausted candidates** answer `502`; a blown deadline answers
//!   `504`, mirroring `hbc-serve`.
//!
//! Graceful drain (`POST /shutdown` or [`CoordinatorHandle::shutdown`]):
//! queued and in-flight requests finish and answer; *new* connections get
//! an immediate `503` until [`Coordinator::join`] completes. Workers are
//! left running — they are separate processes with their own drain.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hbc_probe::Histogram;
use hbc_serve::http::{self, HttpError, Request};
use hbc_serve::json::Json;
use hbc_serve::metrics::AtomicCounter;
use hbc_serve::spans::ServeSpans;
use hbc_serve::spec::{ExperimentId, Preset, RunRequest};

use crate::lock;
use crate::ring;
use crate::wire::{self, Msg, TraceCtx, WireError};

/// Coordinator construction parameters.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker addresses (`host:port`), the rendezvous membership. Order
    /// does not matter — routing depends only on the set.
    pub workers: Vec<String>,
    /// Handler threads serving the admission queue.
    pub handlers: usize,
    /// Bounded admission-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from accept, spanning every
    /// failover attempt.
    pub request_timeout: Duration,
    /// Per-attempt budget for one worker forward (connect + request +
    /// response), clamped to the remaining request deadline.
    pub wire_timeout: Duration,
    /// Per-worker bound on concurrently forwarded requests.
    pub window: usize,
    /// Background health-probe period.
    pub probe_interval: Duration,
    /// Most recent spans retained for `GET /trace`.
    pub span_capacity: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            handlers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(600),
            wire_timeout: Duration::from_secs(120),
            window: 32,
            probe_interval: Duration::from_secs(2),
            span_capacity: 4096,
        }
    }
}

/// Coordinator-side view of one worker: health, the in-flight window,
/// and per-shard counters.
struct Target {
    addr: String,
    healthy: AtomicBool,
    in_flight: Mutex<usize>,
    window_cv: Condvar,
    forwarded: AtomicCounter,
    failures: AtomicCounter,
    hits_memory: AtomicCounter,
    hits_disk: AtomicCounter,
    misses: AtomicCounter,
    latency_micros: Mutex<Histogram>,
}

impl Target {
    fn new(addr: String) -> Self {
        Target {
            addr,
            healthy: AtomicBool::new(true),
            in_flight: Mutex::new(0),
            window_cv: Condvar::new(),
            forwarded: AtomicCounter::default(),
            failures: AtomicCounter::default(),
            hits_memory: AtomicCounter::default(),
            hits_disk: AtomicCounter::default(),
            misses: AtomicCounter::default(),
            latency_micros: Mutex::new(Histogram::default()),
        }
    }

    /// Claims one in-flight slot, waiting until `deadline` if the window
    /// is full. `false` means the deadline passed first.
    fn acquire(&self, window: usize, deadline: Instant) -> bool {
        let mut count = lock(&self.in_flight);
        while *count >= window {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            count = match self.window_cv.wait_timeout(count, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        *count += 1;
        true
    }

    fn release(&self) {
        let mut count = lock(&self.in_flight);
        *count = count.saturating_sub(1);
        drop(count);
        self.window_cv.notify_one();
    }
}

/// Coordinator-wide counters (the `GET /metrics` families without a
/// `worker` label).
#[derive(Debug, Default)]
struct ClusterMetrics {
    requests: AtomicCounter,
    responses_ok: AtomicCounter,
    responses_bad_request: AtomicCounter,
    responses_not_found: AtomicCounter,
    responses_rejected: AtomicCounter,
    responses_error: AtomicCounter,
    responses_bad_gateway: AtomicCounter,
    responses_unavailable: AtomicCounter,
    responses_timeout: AtomicCounter,
    failovers: AtomicCounter,
    retries_exhausted: AtomicCounter,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
}

impl ClusterMetrics {
    fn queue_push(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn queue_pop(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One accepted connection waiting for a handler.
struct QueuedConn {
    stream: TcpStream,
    accepted: Instant,
    request_id: u64,
    queued_us: u64,
}

/// State shared by the acceptor, the handlers, the prober, and handles.
struct Shared {
    addr: SocketAddr,
    targets: Vec<Target>,
    worker_names: Vec<String>,
    window: usize,
    request_timeout: Duration,
    wire_timeout: Duration,
    probe_interval: Duration,
    metrics: ClusterMetrics,
    spans: ServeSpans,
    queue: Mutex<VecDeque<QueuedConn>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    /// Draining: handlers finish the queue, the acceptor answers `503`.
    draining: AtomicBool,
    /// Fully stopped: the acceptor exits (set by `join`).
    stopped: AtomicBool,
    /// Prober pacing/wakeup (paired with `draining`).
    probe_mu: Mutex<()>,
    probe_cv: Condvar,
}

/// A running coordinator. Lifecycle: [`Coordinator::bind`] → clients →
/// `POST /shutdown` (or [`CoordinatorHandle::shutdown`]) →
/// [`Coordinator::join`].
pub struct Coordinator {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    prober: JoinHandle<()>,
}

/// A cloneable reference to a running coordinator.
#[derive(Clone)]
pub struct CoordinatorHandle {
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listener and spawns the acceptor, handler pool, and
    /// health prober. Fails fast on an empty worker list.
    pub fn bind(config: CoordinatorConfig) -> io::Result<Coordinator> {
        if config.workers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a coordinator needs at least one worker address",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_names = config.workers.clone();
        let targets = config.workers.into_iter().map(Target::new).collect();
        let shared = Arc::new(Shared {
            addr,
            targets,
            worker_names,
            window: config.window.max(1),
            request_timeout: config.request_timeout,
            wire_timeout: config.wire_timeout,
            probe_interval: config.probe_interval,
            metrics: ClusterMetrics::default(),
            spans: ServeSpans::new(config.span_capacity),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: config.queue_capacity,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            probe_mu: Mutex::new(()),
            probe_cv: Condvar::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hbc-cluster-acceptor".to_string())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let mut handlers = Vec::with_capacity(config.handlers);
        for i in 0..config.handlers {
            let shared = Arc::clone(&shared);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("hbc-cluster-handler-{i}"))
                    .spawn(move || handler_loop(&shared))?,
            );
        }
        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hbc-cluster-prober".to_string())
                .spawn(move || probe_loop(&shared))?
        };
        Ok(Coordinator { shared, acceptor, handlers, prober })
    }

    /// The bound address (the real port even when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for shutdown and inspection.
    pub fn handle(&self) -> CoordinatorHandle {
        CoordinatorHandle { shared: Arc::clone(&self.shared) }
    }

    /// Blocks until drain completes: handlers finish queued and in-flight
    /// requests, then the acceptor (which answered `503` meanwhile) exits.
    pub fn join(self) {
        for handler in self.handlers {
            let _ = handler.join();
        }
        // Handlers are gone; flip the acceptor from 503-mode to exit.
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
        let _ = self.acceptor.join();
        let _ = self.prober.join();
        // With zero handlers configured, connections may still be queued.
        let leftovers: Vec<QueuedConn> = lock(&self.shared.queue).drain(..).collect();
        for conn in leftovers {
            self.shared.metrics.queue_pop();
            self.shared.metrics.responses_unavailable.inc();
            respond_without_reading(conn.stream, 503, "coordinator is shutting down");
        }
    }
}

impl CoordinatorHandle {
    /// Requests graceful drain: in-flight and queued requests finish, new
    /// connections get `503`.
    pub fn shutdown(&self) {
        initiate_drain(&self.shared);
    }

    /// Health flags by worker address, in configured order.
    pub fn worker_health(&self) -> Vec<(String, bool)> {
        self.shared
            .targets
            .iter()
            .map(|t| (t.addr.clone(), t.healthy.load(Ordering::SeqCst)))
            .collect()
    }

    /// Total requests forwarded to workers (all attempts that got an
    /// answer).
    pub fn forwarded(&self) -> u64 {
        self.shared.targets.iter().map(|t| t.forwarded.get()).sum()
    }

    /// Failovers: attempts abandoned on one worker and retried on the
    /// next rendezvous candidate.
    pub fn failovers(&self) -> u64 {
        self.shared.metrics.failovers.get()
    }
}

fn initiate_drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    shared.probe_cv.notify_all();
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.draining.load(Ordering::SeqCst) {
            shared.metrics.responses_unavailable.inc();
            respond_without_reading(stream, 503, "coordinator is draining");
            continue;
        }
        let accept_start_us = shared.spans.now_us();
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.queue_capacity {
            drop(queue);
            shared.metrics.responses_rejected.inc();
            respond_without_reading(stream, 429, "admission queue is full, retry later");
            continue;
        }
        let request_id = shared.spans.begin_request();
        let queued_us = shared.spans.now_us();
        queue.push_back(QueuedConn { stream, accepted: Instant::now(), request_id, queued_us });
        shared.metrics.queue_push();
        drop(queue);
        shared.spans.record_at("serve.accept", request_id, 0, accept_start_us, queued_us);
        shared.queue_cv.notify_one();
    }
}

/// Writes an error response to a connection whose request was never read
/// (admission rejection, drain), then sinks the unread request bytes so
/// closing the socket does not RST the response away.
fn respond_without_reading(mut stream: TcpStream, status: u16, message: &str) {
    let short = Duration::from_millis(500);
    let _ = stream.set_write_timeout(Some(short));
    let _ = stream.set_read_timeout(Some(short));
    let body = error_body(status, message);
    if http::write_response(&mut stream, status, "application/json", &[], body.as_bytes()).is_ok() {
        use std::io::Read as _;
        let mut sink = [0u8; 512];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn handler_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(conn) = queue.pop_front() {
                    shared.metrics.queue_pop();
                    break Some(conn);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shared.queue_cv.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        match conn {
            Some(conn) => handle_conn(shared, conn),
            None => return,
        }
    }
}

/// Background health prober: one `Health` frame per worker per period.
/// A worker that answers (and is not itself draining) is revived; one
/// that refuses or stalls is demoted.
fn probe_loop(shared: &Arc<Shared>) {
    let timeout = shared.wire_timeout.min(Duration::from_secs(2));
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        for target in &shared.targets {
            let alive = matches!(
                forward(&target.addr, &Msg::Health, timeout),
                Ok(Msg::HealthOk { draining: false, .. })
            );
            target.healthy.store(alive, Ordering::SeqCst);
        }
        let guard = lock(&shared.probe_mu);
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        drop(match shared.probe_cv.wait_timeout(guard, shared.probe_interval) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        });
    }
}

/// One one-shot wire exchange: connect, send `msg`, read the reply. The
/// whole exchange shares one `budget`.
fn forward(addr: &str, msg: &Msg, budget: Duration) -> Result<Msg, WireError> {
    let parsed: SocketAddr = addr
        .parse()
        .map_err(|_| WireError::Io(io::Error::new(io::ErrorKind::InvalidInput, "bad address")))?;
    let mut stream = TcpStream::connect_timeout(&parsed, budget)?;
    stream.set_read_timeout(Some(budget))?;
    stream.set_write_timeout(Some(budget))?;
    wire::write_msg(&mut stream, msg)?;
    wire::read_msg(&mut stream)
}

/// JSON error envelope: `{"error":…,"status":…}` — same shape as
/// `hbc-serve`.
fn error_body(status: u16, message: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), Json::Str(message.to_string()));
    obj.insert("status".to_string(), Json::U64(u64::from(status)));
    Json::Obj(obj).render()
}

/// Per-request context threaded from accept to response. Unlike the
/// single-node server, end-to-end latency lives per worker (recorded
/// around each forward), so only the span-trace request ID rides along.
#[derive(Clone, Copy)]
struct ReqCtx {
    request_id: u64,
}

/// One response, with metrics accounting by status and spans for the
/// serialize and write stages.
fn respond(
    shared: &Shared,
    stream: &mut TcpStream,
    ctx: ReqCtx,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) {
    let m = &shared.metrics;
    match status {
        200 => m.responses_ok.inc(),
        400 | 405 => m.responses_bad_request.inc(),
        404 => m.responses_not_found.inc(),
        429 => m.responses_rejected.inc(),
        502 => m.responses_bad_gateway.inc(),
        503 => m.responses_unavailable.inc(),
        504 => m.responses_timeout.inc(),
        _ => m.responses_error.inc(),
    }
    let serialize_start_us = shared.spans.now_us();
    let bytes = http::render_response(status, content_type, extra_headers, body);
    let write_start_us = shared.spans.now_us();
    shared.spans.record_at(
        "serve.serialize",
        ctx.request_id,
        0,
        serialize_start_us,
        write_start_us,
    );
    use std::io::Write as _;
    let _ = stream.write_all(&bytes).and_then(|()| stream.flush());
    shared.spans.record_at("serve.write", ctx.request_id, 0, write_start_us, shared.spans.now_us());
}

fn respond_error(shared: &Shared, stream: &mut TcpStream, ctx: ReqCtx, status: u16, message: &str) {
    let body = error_body(status, message);
    respond(shared, stream, ctx, status, "application/json", &[], body.as_bytes());
}

fn handle_conn(shared: &Arc<Shared>, conn: QueuedConn) {
    let QueuedConn { mut stream, accepted, request_id, queued_us } = conn;
    let ctx = ReqCtx { request_id };
    shared.spans.record_at("serve.queue_wait", request_id, 0, queued_us, shared.spans.now_us());
    let deadline = accepted + shared.request_timeout;
    let now = Instant::now();
    if now >= deadline {
        shared.metrics.requests.inc();
        respond_error(shared, &mut stream, ctx, 504, "request timed out in queue");
        return;
    }
    let io_budget = (deadline - now).min(Duration::from_secs(10));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let parse_start_us = shared.spans.now_us();
    let parsed = http::read_request(&mut stream);
    shared.spans.record_at("serve.parse", request_id, 0, parse_start_us, shared.spans.now_us());
    let request = match parsed {
        Ok(request) => request,
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(err @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
            shared.metrics.requests.inc();
            respond_error(shared, &mut stream, ctx, 400, &err.to_string());
            return;
        }
    };
    shared.metrics.requests.inc();

    // `Request.path` carries the query string verbatim; split it off so
    // `/trace?federated=1` routes to the trace endpoint. Every response
    // for a bare path is byte-identical to before.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("POST", "/run") => handle_run(shared, &mut stream, ctx, deadline, &request),
        ("GET", "/metrics") => {
            let body = render_prometheus(shared);
            let ct = "text/plain; version=0.0.4";
            respond(shared, &mut stream, ctx, 200, ct, &[], body.as_bytes());
        }
        ("GET", "/cluster") => {
            let body = cluster_body(shared);
            respond(shared, &mut stream, ctx, 200, "application/json", &[], body.as_bytes());
        }
        ("GET", "/trace") => {
            let body = if query.split('&').any(|pair| pair == "federated=1") {
                federated_trace_body(shared)
            } else {
                shared.spans.to_jsonl()
            };
            respond(shared, &mut stream, ctx, 200, "application/x-ndjson", &[], body.as_bytes());
        }
        ("GET", "/healthz") => {
            respond(shared, &mut stream, ctx, 200, "text/plain", &[], b"ok\n");
        }
        ("GET", "/experiments") => {
            let body = experiments_body();
            respond(shared, &mut stream, ctx, 200, "application/json", &[], body.as_bytes());
        }
        ("POST", "/shutdown") => {
            respond(shared, &mut stream, ctx, 200, "text/plain", &[], b"draining\n");
            initiate_drain(shared);
        }
        (
            _,
            "/run" | "/metrics" | "/cluster" | "/trace" | "/healthz" | "/experiments" | "/shutdown",
        ) => {
            respond_error(shared, &mut stream, ctx, 405, "method not allowed");
        }
        _ => respond_error(shared, &mut stream, ctx, 404, "no such endpoint"),
    }
}

/// `GET /experiments`: same body as `hbc-serve` — the coordinator is a
/// drop-in front door.
fn experiments_body() -> String {
    let experiments = ExperimentId::ALL.map(|id| Json::Str(id.name().to_string())).to_vec();
    let presets = [Preset::Fast, Preset::Standard, Preset::Full]
        .map(|p| Json::Str(p.name().to_string()))
        .to_vec();
    let mut obj = BTreeMap::new();
    obj.insert("experiments".to_string(), Json::Arr(experiments));
    obj.insert("presets".to_string(), Json::Arr(presets));
    Json::Obj(obj).render()
}

/// `GET /cluster`: topology and live per-worker stats (best-effort wire
/// `Stats` probes with a short budget).
fn cluster_body(shared: &Shared) -> String {
    let stats_budget = shared.wire_timeout.min(Duration::from_secs(2));
    let mut workers = Vec::new();
    for target in &shared.targets {
        let mut obj = BTreeMap::new();
        obj.insert("addr".to_string(), Json::Str(target.addr.clone()));
        obj.insert("healthy".to_string(), Json::Bool(target.healthy.load(Ordering::SeqCst)));
        obj.insert("forwarded".to_string(), Json::U64(target.forwarded.get()));
        obj.insert("failures".to_string(), Json::U64(target.failures.get()));
        if let Ok(Msg::StatsOk { pairs }) = forward(&target.addr, &Msg::Stats, stats_budget) {
            let mut stats = BTreeMap::new();
            for (name, value) in pairs {
                stats.insert(name, Json::U64(value));
            }
            obj.insert("stats".to_string(), Json::Obj(stats));
        }
        workers.push(Json::Obj(obj));
    }
    let mut obj = BTreeMap::new();
    obj.insert("draining".to_string(), Json::Bool(shared.draining.load(Ordering::SeqCst)));
    obj.insert("failovers".to_string(), Json::U64(shared.metrics.failovers.get()));
    obj.insert("workers".to_string(), Json::Arr(workers));
    Json::Obj(obj).render()
}

/// `GET /trace?federated=1`: the coordinator's own span ring plus every
/// healthy worker's, pulled over `Trace` frames and merged into one
/// JSONL stream. Each source opens with a meta line carrying its drop
/// accounting (`{"trace_meta":1,"node":…,"dropped":…,"retained":…}`), so
/// a truncated ring is visible in the merge instead of silently reading
/// as a complete trace. The bare `GET /trace` body is unchanged.
fn federated_trace_body(shared: &Shared) -> String {
    let trace_budget = shared.wire_timeout.min(Duration::from_secs(2));
    let mut out = String::new();
    push_trace_source(
        &mut out,
        "coordinator",
        shared.spans.log().dropped(),
        &shared.spans.to_jsonl(),
    );
    for target in &shared.targets {
        if !target.healthy.load(Ordering::SeqCst) {
            continue;
        }
        if let Ok(Msg::TraceOk { worker_id, dropped, jsonl }) =
            forward(&target.addr, &Msg::Trace, trace_budget)
        {
            push_trace_source(&mut out, &worker_id, dropped, &jsonl);
        }
    }
    out
}

fn push_trace_source(out: &mut String, node: &str, dropped: u64, jsonl: &str) {
    use std::fmt::Write as _;
    let retained = jsonl.lines().count();
    let _ = writeln!(
        out,
        "{{\"trace_meta\":1,\"node\":\"{node}\",\"dropped\":{dropped},\"retained\":{retained}}}"
    );
    out.push_str(jsonl);
}

/// Routes and forwards one `POST /run`, with failover.
fn handle_run(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    ctx: ReqCtx,
    deadline: Instant,
    request: &Request,
) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            respond_error(shared, stream, ctx, 400, "request body is not UTF-8");
            return;
        }
    };
    // Validate locally so garbage never costs a forward, and compute the
    // routing hash. The *original* spec text is what gets forwarded — the
    // worker derives the identical canonical form and cache key.
    let run = match RunRequest::from_json_text(text) {
        Ok(run) => run,
        Err(err) => {
            respond_error(shared, stream, ctx, 400, &err.to_string());
            return;
        }
    };
    let hash = run.spec_hash();

    let route_start_us = shared.spans.now_us();
    let order = ring::candidates(&hash, &shared.worker_names);
    // Healthy candidates first (rendezvous order preserved), then the
    // unhealthy rest as a last resort — the prober's view may be stale,
    // and trying a dead worker only costs one fast connect failure.
    let mut plan: Vec<usize> = Vec::with_capacity(order.len());
    plan.extend(order.iter().filter(|&&i| shared.targets[i].healthy.load(Ordering::SeqCst)));
    plan.extend(order.iter().filter(|&&i| !shared.targets[i].healthy.load(Ordering::SeqCst)));
    shared.spans.record_at(
        "cluster.route",
        ctx.request_id,
        0,
        route_start_us,
        shared.spans.now_us(),
    );

    for (attempt, &index) in plan.iter().enumerate() {
        let target = &shared.targets[index];
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if !target.acquire(shared.window, deadline) {
            break; // Window never opened before the deadline.
        }
        if attempt > 0 {
            shared.metrics.failovers.inc();
        }
        let budget = shared.wire_timeout.min(deadline.saturating_duration_since(Instant::now()));
        // The forward span's ID is allocated before the exchange so it
        // can ride in the wire trace context: the worker records its
        // spans under this request ID, parented on this span, and the
        // federated trace stitches into one tree. Each failover attempt
        // gets its own forward span.
        let forward_span = shared.spans.alloc_span();
        let trace = Some(TraceCtx { request: ctx.request_id, parent: forward_span });
        let forward_start_us = shared.spans.now_us();
        let forward_start = Instant::now();
        let run_msg = Msg::Run { spec_json: text.to_string(), trace };
        let outcome = forward(&target.addr, &run_msg, budget);
        let micros = u64::try_from(forward_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared.spans.record_linked(
            "cluster.forward",
            forward_span,
            ctx.request_id,
            0,
            forward_start_us,
            shared.spans.now_us(),
        );
        target.release();
        match outcome {
            Ok(Msg::RunOk { cache, spec_hash, body }) => {
                target.forwarded.inc();
                lock(&target.latency_micros).record(micros);
                match cache.as_str() {
                    "hit-memory" => target.hits_memory.inc(),
                    "hit-disk" => target.hits_disk.inc(),
                    _ => target.misses.inc(),
                }
                let headers = [
                    ("X-Cache", cache.as_str()),
                    ("X-Spec-Hash", spec_hash.as_str()),
                    ("X-Worker", target.addr.as_str()),
                ];
                respond(shared, stream, ctx, 200, "text/plain", &headers, body.as_bytes());
                return;
            }
            Ok(Msg::RunErr { status, message }) => {
                // The worker answered: the stack is deterministic, so a
                // retry elsewhere would fail identically. Forward as-is.
                target.forwarded.inc();
                lock(&target.latency_micros).record(micros);
                let status = if (400..=599).contains(&status) { status } else { 500 };
                respond_error(shared, stream, ctx, status, &message);
                return;
            }
            Ok(_) => {
                // A well-framed but nonsensical reply: treat the worker
                // as broken and fail over.
                target.failures.inc();
                target.healthy.store(false, Ordering::SeqCst);
            }
            Err(_) => {
                target.failures.inc();
                target.healthy.store(false, Ordering::SeqCst);
            }
        }
    }

    if Instant::now() >= deadline {
        respond_error(
            shared,
            stream,
            ctx,
            504,
            "request deadline passed before any worker answered",
        );
    } else {
        shared.metrics.retries_exhausted.inc();
        respond_error(
            shared,
            stream,
            ctx,
            502,
            "no worker answered this request; every rendezvous candidate failed",
        );
    }
}

/// Renders `GET /metrics` in the Prometheus text exposition format —
/// accepted by `hbc_serve::metrics::parse_prometheus`, same conventions
/// as the single-node server.
fn render_prometheus(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let family = |out: &mut String, name: &str, kind: &str, help: &str| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    };
    let m = &shared.metrics;

    family(
        &mut out,
        "cluster_requests_total",
        "counter",
        "HTTP requests that reached a coordinator handler.",
    );
    let _ = writeln!(out, "cluster_requests_total {}", m.requests.get());

    family(&mut out, "cluster_responses_total", "counter", "Responses by HTTP status code.");
    for (status, counter) in [
        ("200", &m.responses_ok),
        ("400", &m.responses_bad_request),
        ("404", &m.responses_not_found),
        ("429", &m.responses_rejected),
        ("500", &m.responses_error),
        ("502", &m.responses_bad_gateway),
        ("503", &m.responses_unavailable),
        ("504", &m.responses_timeout),
    ] {
        let _ = writeln!(out, "cluster_responses_total{{status=\"{status}\"}} {}", counter.get());
    }

    family(
        &mut out,
        "cluster_forwarded_total",
        "counter",
        "Requests answered by each worker (RunOk or RunErr).",
    );
    for t in &shared.targets {
        let _ =
            writeln!(out, "cluster_forwarded_total{{worker=\"{}\"}} {}", t.addr, t.forwarded.get());
    }

    family(
        &mut out,
        "cluster_worker_failures_total",
        "counter",
        "Transport failures per worker (connect refused, timeout, severed frame).",
    );
    for t in &shared.targets {
        let _ = writeln!(
            out,
            "cluster_worker_failures_total{{worker=\"{}\"}} {}",
            t.addr,
            t.failures.get()
        );
    }

    family(
        &mut out,
        "cluster_failovers_total",
        "counter",
        "Attempts abandoned on one worker and retried on the next rendezvous candidate.",
    );
    let _ = writeln!(out, "cluster_failovers_total {}", m.failovers.get());

    family(
        &mut out,
        "cluster_retries_exhausted_total",
        "counter",
        "Requests answered 502 after every rendezvous candidate failed.",
    );
    let _ = writeln!(out, "cluster_retries_exhausted_total {}", m.retries_exhausted.get());

    family(
        &mut out,
        "cluster_worker_healthy",
        "gauge",
        "1 if the worker's last health probe (or forward) succeeded.",
    );
    for t in &shared.targets {
        let healthy = u64::from(t.healthy.load(Ordering::SeqCst));
        let _ = writeln!(out, "cluster_worker_healthy{{worker=\"{}\"}} {healthy}", t.addr);
    }

    family(
        &mut out,
        "cluster_shard_hits_total",
        "counter",
        "Worker-reported cache hits by shard and serving tier.",
    );
    for t in &shared.targets {
        let _ = writeln!(
            out,
            "cluster_shard_hits_total{{worker=\"{}\",tier=\"memory\"}} {}",
            t.addr,
            t.hits_memory.get()
        );
        let _ = writeln!(
            out,
            "cluster_shard_hits_total{{worker=\"{}\",tier=\"disk\"}} {}",
            t.addr,
            t.hits_disk.get()
        );
    }
    family(
        &mut out,
        "cluster_shard_misses_total",
        "counter",
        "Worker-reported cache misses (a simulation ran on that shard).",
    );
    for t in &shared.targets {
        let _ =
            writeln!(out, "cluster_shard_misses_total{{worker=\"{}\"}} {}", t.addr, t.misses.get());
    }

    family(&mut out, "cluster_queue_depth", "gauge", "Current admission-queue depth.");
    let _ = writeln!(out, "cluster_queue_depth {}", m.queue_depth.load(Ordering::Relaxed));
    family(&mut out, "cluster_queue_peak", "gauge", "High-water mark of the admission queue.");
    let _ = writeln!(out, "cluster_queue_peak {}", m.queue_peak.load(Ordering::Relaxed));

    family(
        &mut out,
        "hbc_span_dropped_total",
        "counter",
        "Spans evicted from the bounded ring before export (a nonzero value means GET /trace is truncated).",
    );
    let _ = writeln!(out, "hbc_span_dropped_total {}", shared.spans.log().dropped());

    let summary = |out: &mut String, name: &str, labels: &str, h: &Histogram| {
        let lead = if labels.is_empty() { String::new() } else { format!("{labels},") };
        for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(out, "{name}{{{lead}quantile=\"{tag}\"}} {}", h.quantile(q));
        }
        let braced = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        let _ = writeln!(out, "{name}_sum{braced} {}", h.sum());
        let _ = writeln!(out, "{name}_count{braced} {}", h.count());
    };
    family(
        &mut out,
        "cluster_worker_latency_microseconds",
        "summary",
        "Forward round-trip latency per worker (connect to reply read).",
    );
    for t in &shared.targets {
        summary(
            &mut out,
            "cluster_worker_latency_microseconds",
            &format!("worker=\"{}\"", t.addr),
            &lock(&t.latency_micros).clone(),
        );
    }

    family(
        &mut out,
        "cluster_stage_duration_microseconds",
        "summary",
        "Span duration per coordinator lifecycle stage.",
    );
    for (stage, h) in &shared.spans.stage_histograms() {
        summary(&mut out, "cluster_stage_duration_microseconds", &format!("stage=\"{stage}\""), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_serve::metrics::parse_prometheus;

    #[test]
    fn empty_worker_list_is_rejected_at_bind() {
        let err = Coordinator::bind(CoordinatorConfig::default())
            .err()
            .expect("bind must fail without workers");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body(502, "no worker answered");
        let v = Json::parse(&body).expect("envelope parses");
        assert_eq!(v.as_obj().unwrap()["status"].as_u64(), Some(502));
    }

    #[test]
    fn prometheus_rendering_is_strictly_parseable() {
        let shared = Shared {
            addr: "127.0.0.1:0".parse().expect("addr"),
            targets: vec![
                Target::new("127.0.0.1:9101".to_string()),
                Target::new("127.0.0.1:9102".to_string()),
            ],
            worker_names: vec!["127.0.0.1:9101".to_string(), "127.0.0.1:9102".to_string()],
            window: 4,
            request_timeout: Duration::from_secs(1),
            wire_timeout: Duration::from_secs(1),
            probe_interval: Duration::from_secs(1),
            metrics: ClusterMetrics::default(),
            spans: ServeSpans::new(8),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: 4,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            probe_mu: Mutex::new(()),
            probe_cv: Condvar::new(),
        };
        shared.metrics.requests.inc();
        shared.targets[0].forwarded.inc();
        shared.targets[1].healthy.store(false, Ordering::SeqCst);
        shared.spans.record_at("cluster.route", 1, 0, 0, 5);
        let text = render_prometheus(&shared);
        let samples = parse_prometheus(&text).expect("strict parse succeeds");
        let healthy: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "cluster_worker_healthy")
            .map(|s| s.value)
            .collect();
        assert_eq!(healthy, [1.0, 0.0]);
        assert!(samples.iter().any(|s| s.name == "cluster_forwarded_total"
            && s.label("worker") == Some("127.0.0.1:9101")
            && s.value == 1.0));
        assert!(
            samples.iter().any(|s| s.name == "hbc_span_dropped_total" && s.value == 0.0),
            "span drop accounting must be exported"
        );
    }

    #[test]
    fn federated_trace_meta_lines_carry_drop_accounting() {
        let mut out = String::new();
        push_trace_source(&mut out, "coordinator", 0, "{\"request\":1}\n{\"request\":1}\n");
        push_trace_source(&mut out, "127.0.0.1:9101", 7, "");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"trace_meta\":1,\"node\":\"coordinator\",\"dropped\":0,\"retained\":2}"
        );
        assert_eq!(
            lines[3],
            "{\"trace_meta\":1,\"node\":\"127.0.0.1:9101\",\"dropped\":7,\"retained\":0}"
        );
        for line in &lines {
            Json::parse(line).expect("every merged line is valid JSON");
        }
    }

    #[test]
    fn window_acquire_honours_the_deadline() {
        let target = Target::new("127.0.0.1:1".to_string());
        assert!(target.acquire(1, Instant::now() + Duration::from_secs(1)));
        // Window of 1 is now full; a second acquire must time out.
        let start = Instant::now();
        assert!(!target.acquire(1, Instant::now() + Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
        target.release();
        assert!(target.acquire(1, Instant::now() + Duration::from_secs(1)));
    }
}
