//! Calibrated Figure 1 access-time curves.

use std::error::Error;
use std::fmt;

use crate::{CacheSize, Fo4};

/// The port structure of a primary data cache, as far as access time is
/// concerned (paper Section 2.1).
///
/// * Duplicate caches pay no access-time penalty over a single-ported cache
///   of the same size (the extra load/store-buffer write port is assumed to
///   be absorbed by circuit design effort).
/// * Eight-way banked caches pay a wiring penalty below 16 KB; from 16 KB up
///   the best single-ported organization is already at least eight-way
///   internally banked, so the curves coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortStructure {
    /// One cache port.
    SinglePorted,
    /// Two ports by full duplication (DEC Alpha 21164 style).
    Duplicate,
    /// Eight independently addressed external banks (MIPS R10000 style,
    /// taken to eight banks).
    Banked8,
}

impl fmt::Display for PortStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortStructure::SinglePorted => write!(f, "single-ported"),
            PortStructure::Duplicate => write!(f, "duplicate"),
            PortStructure::Banked8 => write!(f, "8-way banked"),
        }
    }
}

/// Error returned when a size is outside the modeled 4 KB..=1 MB range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeOutOfRangeError {
    size: CacheSize,
}

impl SizeOutOfRangeError {
    /// The offending size.
    pub fn size(&self) -> CacheSize {
        self.size
    }
}

impl fmt::Display for SizeOutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache size {} outside the modeled 4K..=1M SRAM range", self.size)
    }
}

impl Error for SizeOutOfRangeError {}

/// One row of the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Row {
    /// Cache capacity.
    pub size: CacheSize,
    /// Access time of the single-ported (and duplicate) cache.
    pub single_ported: Fo4,
    /// Access time of the eight-way banked cache.
    pub banked8: Fo4,
}

/// SRAM access times in FO4 as a function of capacity — the paper's
/// **Figure 1**, produced by its modified CACTI and digitized here from the
/// anchor values stated in the text:
///
/// * 8 KB single-ported, single-cycle cache = 25 FO4 [Horo96],
/// * a 29 FO4 cycle accommodates a one-cycle 64 KB cache (Section 4.4),
/// * 512 KB = 1.67 cycles and 1 MB = 2.20 cycles at 25 FO4 (Section 2.2),
/// * below a 24 FO4 cycle not even a 4 KB cache fits in one cycle
///   (Section 5),
/// * eight-way banking costs extra wiring below 16 KB and is free at and
///   above 16 KB (Section 2.1).
///
/// Sizes between table points are interpolated linearly in `log2(bytes)`.
///
/// # Example
///
/// ```
/// use hbc_timing::{AccessTimeModel, CacheSize, PortStructure};
///
/// let m = AccessTimeModel::default();
/// let t512 = m.access_time(CacheSize::from_kib(512), PortStructure::SinglePorted)?;
/// let cycles = t512.get() / 25.0;
/// assert!((cycles - 1.67).abs() < 0.01); // the paper's 1.67-cycle 512 KB cache
/// # Ok::<(), hbc_timing::SizeOutOfRangeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccessTimeModel {
    /// (log2 bytes, single-ported FO4, 8-way banked FO4), ascending.
    points: Vec<(u32, f64, f64)>,
}

impl AccessTimeModel {
    /// Builds a model from explicit `(size, single_ported, banked8)` control
    /// points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, if sizes are not strictly
    /// ascending powers of two, or if any banked time is below its
    /// single-ported time.
    pub fn from_points(points: &[(CacheSize, Fo4, Fo4)]) -> Self {
        assert!(points.len() >= 2, "need at least two control points");
        let mut table = Vec::with_capacity(points.len());
        let mut prev_log = 0;
        for (i, (size, single, banked)) in points.iter().enumerate() {
            let log = size.log2();
            if i > 0 {
                assert!(log > prev_log, "control point sizes must be strictly ascending");
            }
            assert!(
                banked.get() >= single.get() - 1e-9,
                "banked access time below single-ported at {size}"
            );
            table.push((log, single.get(), banked.get()));
            prev_log = log;
        }
        AccessTimeModel { points: table }
    }

    /// Smallest modeled capacity.
    pub fn min_size(&self) -> CacheSize {
        CacheSize::from_bytes(1 << self.points[0].0)
    }

    /// Largest modeled capacity.
    pub fn max_size(&self) -> CacheSize {
        CacheSize::from_bytes(1 << self.points[self.points.len() - 1].0)
    }

    /// Access time of a cache of `size` with the given port structure.
    ///
    /// # Errors
    ///
    /// Returns [`SizeOutOfRangeError`] if `size` lies outside the modeled
    /// range (4 KB..=1 MB for the default model).
    pub fn access_time(
        &self,
        size: CacheSize,
        ports: PortStructure,
    ) -> Result<Fo4, SizeOutOfRangeError> {
        let x = (size.bytes() as f64).log2();
        let first = &self.points[0];
        let last = &self.points[self.points.len() - 1];
        if x < f64::from(first.0) - 1e-9 || x > f64::from(last.0) + 1e-9 {
            return Err(SizeOutOfRangeError { size });
        }
        let column = |p: &(u32, f64, f64)| match ports {
            PortStructure::SinglePorted | PortStructure::Duplicate => p.1,
            PortStructure::Banked8 => p.2,
        };
        for pair in self.points.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if x <= f64::from(hi.0) + 1e-9 {
                let t = (x - f64::from(lo.0)) / f64::from(hi.0 - lo.0);
                return Ok(Fo4::new(column(lo) + t * (column(hi) - column(lo))));
            }
        }
        Ok(Fo4::new(column(last)))
    }

    /// The full Figure 1 table at the paper's nine sweep sizes.
    pub fn figure1(&self) -> Vec<Fig1Row> {
        CacheSize::sram_sweep()
            .into_iter()
            .map(|size| Fig1Row {
                size,
                single_ported: self
                    .access_time(size, PortStructure::SinglePorted)
                    .expect("sweep sizes are in range"),
                banked8: self
                    .access_time(size, PortStructure::Banked8)
                    .expect("sweep sizes are in range"),
            })
            .collect()
    }
}

impl Default for AccessTimeModel {
    fn default() -> Self {
        let k = CacheSize::from_kib;
        let pts: Vec<(CacheSize, Fo4, Fo4)> = vec![
            (k(4), Fo4::new(24.0), Fo4::new(28.2)),
            (k(8), Fo4::new(25.0), Fo4::new(27.4)),
            (k(16), Fo4::new(26.3), Fo4::new(26.3)),
            (k(32), Fo4::new(27.6), Fo4::new(27.6)),
            (k(64), Fo4::new(29.0), Fo4::new(29.0)),
            (k(128), Fo4::new(31.5), Fo4::new(31.5)),
            (k(256), Fo4::new(35.2), Fo4::new(35.2)),
            (k(512), Fo4::new(41.75), Fo4::new(41.75)),
            (k(1024), Fo4::new(55.0), Fo4::new(55.0)),
        ];
        AccessTimeModel::from_points(&pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccessTimeModel {
        AccessTimeModel::default()
    }

    #[test]
    fn paper_anchor_points() {
        let m = model();
        let single =
            |kib| m.access_time(CacheSize::from_kib(kib), PortStructure::SinglePorted).unwrap();
        assert_eq!(single(8).get(), 25.0);
        assert_eq!(single(64).get(), 29.0);
        // 512 KB = 1.67 cycles at 25 FO4; 1 MB = 2.20 cycles.
        assert!((single(512).get() / 25.0 - 1.67).abs() < 0.01);
        assert!((single(1024).get() / 25.0 - 2.20).abs() < 0.01);
        assert_eq!(single(4).get(), 24.0);
    }

    #[test]
    fn duplicate_times_equal_single_ported() {
        let m = model();
        for s in CacheSize::sram_sweep() {
            assert_eq!(
                m.access_time(s, PortStructure::Duplicate).unwrap(),
                m.access_time(s, PortStructure::SinglePorted).unwrap()
            );
        }
    }

    #[test]
    fn banked_penalty_only_below_16k() {
        let m = model();
        for row in m.figure1() {
            if row.size < CacheSize::from_kib(16) {
                assert!(row.banked8 > row.single_ported, "banked must cost delay at {}", row.size);
            } else {
                assert_eq!(row.banked8, row.single_ported, "curves coincide at {}", row.size);
            }
        }
    }

    #[test]
    fn single_ported_curve_is_monotone() {
        let rows = model().figure1();
        for pair in rows.windows(2) {
            assert!(pair[1].single_ported >= pair[0].single_ported);
        }
    }

    #[test]
    fn interpolation_between_points() {
        let m = model();
        // 48 KB sits between 32 KB (27.6) and 64 KB (29.0) in log space.
        let t = m.access_time(CacheSize::from_kib(48), PortStructure::SinglePorted).unwrap();
        assert!(t.get() > 27.6 && t.get() < 29.0);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let m = model();
        let e = m.access_time(CacheSize::from_kib(2), PortStructure::SinglePorted).unwrap_err();
        assert_eq!(e.size(), CacheSize::from_kib(2));
        assert!(e.to_string().contains("2K"));
        assert!(m.access_time(CacheSize::from_mib(4), PortStructure::Banked8).is_err());
    }

    #[test]
    fn figure1_has_nine_rows() {
        assert_eq!(model().figure1().len(), 9);
    }

    #[test]
    fn range_accessors() {
        let m = model();
        assert_eq!(m.min_size(), CacheSize::from_kib(4));
        assert_eq!(m.max_size(), CacheSize::from_mib(1));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_points_rejects_unsorted() {
        let k = CacheSize::from_kib;
        let _ = AccessTimeModel::from_points(&[
            (k(8), Fo4::new(25.0), Fo4::new(25.0)),
            (k(4), Fo4::new(24.0), Fo4::new(24.0)),
        ]);
    }

    mod properties {
        use super::*;

        /// Interpolated access times are always bracketed by the
        /// neighbouring control points.
        #[test]
        fn interpolation_is_bracketed() {
            hbc_ptest::check_default("interpolation_is_bracketed", |g| {
                let bytes = g.u64_in(4096, 1 << 20);
                let m = AccessTimeModel::default();
                let t = m.access_time(CacheSize::from_bytes(bytes), PortStructure::SinglePorted);
                let t = t.unwrap().get();
                assert!((24.0..=55.0).contains(&t), "t = {t}");
                // The banked curve never undercuts single-ported.
                let b = m.access_time(CacheSize::from_bytes(bytes), PortStructure::Banked8);
                assert!(b.unwrap().get() >= t - 1e-9);
            });
        }
    }

    #[test]
    #[should_panic(expected = "banked access time below")]
    fn from_points_rejects_banked_below_single() {
        let k = CacheSize::from_kib;
        let _ = AccessTimeModel::from_points(&[
            (k(4), Fo4::new(24.0), Fo4::new(23.0)),
            (k(8), Fo4::new(25.0), Fo4::new(25.0)),
        ]);
    }
}
