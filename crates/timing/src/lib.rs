//! Cache timing models for the high-bandwidth on-chip cache study.
//!
//! This crate reproduces the timing side of Wilson & Olukotun, *"Designing
//! High Bandwidth On-Chip Caches"* (ISCA 1997):
//!
//! * technology-independent delays expressed in **fan-out-of-four** units
//!   ([`Fo4`]), anchored at a 25 FO4 processor cycle for a machine whose
//!   critical path is a single-cycle 8 KB primary data cache,
//! * a CACTI-style analytical component model ([`cacti`]) used to reason
//!   about cache organizations (sub-arrays, banking),
//! * the paper's **Figure 1** access-time curves for single-ported and
//!   eight-way banked SRAM caches from 4 KB to 1 MB ([`AccessTimeModel`]),
//! * the pipelining fit rules of Section 2.2: how many processor cycles a
//!   cache of a given size needs, and the largest cache that fits a given
//!   cycle time and pipeline depth (module [`pipeline`]).
//!
//! # Example
//!
//! ```
//! use hbc_timing::{AccessTimeModel, CacheSize, PortStructure};
//!
//! let model = AccessTimeModel::default();
//! let t = model.access_time(CacheSize::from_kib(8), PortStructure::SinglePorted)?;
//! assert_eq!(t.get(), 25.0); // the paper's calibration anchor
//! # Ok::<(), hbc_timing::SizeOutOfRangeError>(())
//! ```

#![warn(missing_docs)]

mod access;
pub mod cacti;
mod fo4;
pub mod pipeline;
mod size;
mod tech;

pub use access::{AccessTimeModel, Fig1Row, PortStructure, SizeOutOfRangeError};
pub use fo4::{Fo4, Nanoseconds};
pub use size::CacheSize;
pub use tech::Technology;
