//! Process-technology parameters.

use crate::Fo4;

/// Parameters of the modeled process technology.
///
/// The paper models a 0.5 um CMOS process via a modified CACTI and converts
/// everything to fan-out-of-four units, anchored by the observation that a
/// processor whose critical path is a single-ported single-cycle 8 KB data
/// cache has a 25 FO4 cycle [Horo96], which at the study's 200 MHz clock
/// makes one FO4 equal to 0.2 ns.
///
/// # Example
///
/// ```
/// use hbc_timing::Technology;
///
/// let tech = Technology::default();
/// assert_eq!(tech.fo4_ns(), 0.2);
/// assert_eq!(tech.baseline_cycle().get(), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    feature_um: f64,
    fo4_ns: f64,
    latch_overhead: Fo4,
    baseline_cycle: Fo4,
}

impl Technology {
    /// Creates a technology description.
    ///
    /// * `feature_um` — drawn feature size in micrometres (0.5 in the paper).
    /// * `fo4_ns` — duration of one FO4 delay in nanoseconds.
    /// * `latch_overhead` — delay added per pipeline latch (1.5 FO4 in the
    ///   paper, Section 2.2).
    /// * `baseline_cycle` — the reference processor cycle (25 FO4).
    ///
    /// # Panics
    ///
    /// Panics if `feature_um` or `fo4_ns` is not strictly positive.
    pub fn new(feature_um: f64, fo4_ns: f64, latch_overhead: Fo4, baseline_cycle: Fo4) -> Self {
        assert!(feature_um > 0.0, "feature size must be positive");
        assert!(fo4_ns > 0.0, "FO4 duration must be positive");
        Technology { feature_um, fo4_ns, latch_overhead, baseline_cycle }
    }

    /// Drawn feature size in micrometres.
    // hbc-allow: units (raw accessor at the newtype boundary, like `get`)
    pub fn feature_um(&self) -> f64 {
        self.feature_um
    }

    /// Duration of one FO4 delay in nanoseconds.
    // hbc-allow: units (raw accessor at the newtype boundary, like `get`)
    pub fn fo4_ns(&self) -> f64 {
        self.fo4_ns
    }

    /// Delay added by one pipeline latch.
    pub fn latch_overhead(&self) -> Fo4 {
        self.latch_overhead
    }

    /// The reference processor cycle time (25 FO4 in the paper).
    pub fn baseline_cycle(&self) -> Fo4 {
        self.baseline_cycle
    }

    /// Nanoseconds per processor cycle for a cycle time of `cycle_fo4`.
    pub fn cycle_ns(&self, cycle_fo4: Fo4) -> crate::Nanoseconds {
        cycle_fo4.to_nanoseconds(self)
    }
}

impl Default for Technology {
    /// The paper's technology: 0.5 um, FO4 = 0.2 ns, 1.5 FO4 latches,
    /// 25 FO4 baseline cycle.
    fn default() -> Self {
        Technology::new(0.5, 0.2, Fo4::new(1.5), Fo4::new(25.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let t = Technology::default();
        assert_eq!(t.feature_um(), 0.5);
        assert_eq!(t.fo4_ns(), 0.2);
        assert_eq!(t.latch_overhead().get(), 1.5);
        assert_eq!(t.baseline_cycle().get(), 25.0);
    }

    #[test]
    fn cycle_ns_scales_linearly() {
        let t = Technology::default();
        assert!((t.cycle_ns(Fo4::new(10.0)).get() - 2.0).abs() < 1e-12);
        assert!((t.cycle_ns(Fo4::new(30.0)).get() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_fo4_duration() {
        let _ = Technology::new(0.5, 0.0, Fo4::ZERO, Fo4::new(25.0));
    }
}
