//! A CACTI-style analytical cache-organization model.
//!
//! The paper uses a modified CACTI [Wilt96] (sub-array limit raised from 8 to
//! 32) to derive SRAM access times from 4 KB to 1 MB. This module implements
//! a simplified analytical model in the same spirit: a cache is split into
//! `ndwl * ndbl` sub-arrays, each component of the access path (decoder,
//! wordline, bitline, sense amplifier, tag comparison, output multiplexing,
//! and inter-sub-array routing) contributes a delay, and the best
//! organization is the one that minimizes the total.
//!
//! The model is used to *explain* the Figure 1 curves — in particular why
//! forcing eight-way banking hurts small caches but is free for caches of
//! 16 KB and more, whose best organization is already at least eight-way
//! banked internally — while the calibrated curves in
//! [`crate::AccessTimeModel`] are the authoritative reproduction of the
//! figure itself.
//!
//! Delays here are in *relative units* by design — the model compares
//! organizations against each other and is calibrated to FO4 only through
//! [`CactiModel::calibrate_fo4`], so its public surface is raw `f64`.
// hbc-allow-file: units (relative-delay model; FO4 enters via calibrate_fo4)
//!
//! # Example
//!
//! ```
//! use hbc_timing::cacti::CactiModel;
//! use hbc_timing::CacheSize;
//!
//! let model = CactiModel::default();
//! let single = model.single_ported_delay(CacheSize::from_kib(4));
//! let banked = model.effective_banked_delay(CacheSize::from_kib(4), 8);
//! // Externally banking a 4 KB cache eight ways costs delay.
//! assert!(banked > single);
//! ```

use crate::CacheSize;

/// The sub-array organization of a cache: how many times the wordlines
/// (`ndwl`) and bitlines (`ndbl`) are divided, and how many sets are mapped
/// to a single wordline (`nspd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Organization {
    /// Number of wordline divisions (columns of sub-arrays).
    pub ndwl: u32,
    /// Number of bitline divisions (rows of sub-arrays).
    pub ndbl: u32,
    /// Sets mapped per wordline.
    pub nspd: u32,
}

impl Organization {
    /// Total number of sub-arrays, `ndwl * ndbl`.
    pub fn subarrays(&self) -> u32 {
        self.ndwl * self.ndbl
    }
}

/// Per-component delays of one cache access, in relative delay units.
///
/// The absolute scale is arbitrary; [`CactiModel::calibrate_fo4`] maps it to
/// FO4 against the paper's anchors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentDelays {
    /// Address decoder.
    pub decoder: f64,
    /// Wordline drive across one sub-array.
    pub wordline: f64,
    /// Bitline discharge down one sub-array.
    pub bitline: f64,
    /// Sense amplifier.
    pub sense_amp: f64,
    /// Tag comparison (set-associative hit determination).
    pub comparator: f64,
    /// Output multiplexing across sub-arrays.
    pub mux_driver: f64,
    /// Routing to and from the sub-arrays (H-tree wires).
    pub routing: f64,
}

impl ComponentDelays {
    /// Total access delay in relative units.
    pub fn total(&self) -> f64 {
        self.decoder
            + self.wordline
            + self.bitline
            + self.sense_amp
            + self.comparator
            + self.mux_driver
            + self.routing
    }
}

/// Result of an organization search: the winning organization and its
/// component delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestOrganization {
    /// The minimizing organization.
    pub organization: Organization,
    /// Its component delays.
    pub delays: ComponentDelays,
}

/// The organization search space, mirroring the paper's modification of
/// CACTI: sub-array counts up to 32 (instead of CACTI's stock 8), with an
/// optional lower bound used to force external banking.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    min_subarrays: u32,
    max_subarrays: u32,
    max_nspd: u32,
}

impl SearchSpace {
    /// A search space forcing at least `min` sub-arrays (the paper forces 8
    /// to model eight-way banked caches).
    pub fn min_subarrays(min: u32) -> Self {
        SearchSpace { min_subarrays: min, ..SearchSpace::default() }
    }

    /// Lower bound on sub-array count.
    pub fn min(&self) -> u32 {
        self.min_subarrays
    }

    /// Upper bound on sub-array count.
    pub fn max(&self) -> u32 {
        self.max_subarrays
    }
}

impl Default for SearchSpace {
    /// Unconstrained organizations with up to 32 sub-arrays, as in the
    /// paper's modified CACTI.
    fn default() -> Self {
        SearchSpace { min_subarrays: 1, max_subarrays: 32, max_nspd: 8 }
    }
}

/// Analytical delay model coefficients.
///
/// All coefficients are in relative delay units; the defaults were chosen so
/// the best-organization delay curve has the shape of the paper's Figure 1
/// (roughly flat electronics plus a wire-delay term growing with the square
/// root of capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct CactiModel {
    line_bytes: u32,
    assoc: u32,
    decoder_base: f64,
    decoder_per_bit: f64,
    wordline_base: f64,
    wordline_per_col: f64,
    bitline_base: f64,
    bitline_per_row: f64,
    sense_amp: f64,
    comparator: f64,
    mux_base: f64,
    mux_per_level: f64,
    routing_per_edge: f64,
    routing_per_level: f64,
    bank_wire_fixed: f64,
    bank_wire_per_edge: f64,
}

impl CactiModel {
    /// Creates a model for caches with the given line size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` or `assoc` is not a power of two.
    pub fn new(line_bytes: u32, assoc: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc.is_power_of_two(), "associativity must be a power of two");
        CactiModel {
            line_bytes,
            assoc,
            decoder_base: 2.0,
            decoder_per_bit: 0.55,
            wordline_base: 0.5,
            wordline_per_col: 0.004,
            bitline_base: 0.8,
            bitline_per_row: 0.012,
            sense_amp: 1.2,
            comparator: 1.6,
            mux_base: 1.0,
            mux_per_level: 0.9,
            routing_per_edge: 0.0115,
            routing_per_level: 0.15,
            bank_wire_fixed: 0.9,
            bank_wire_per_edge: 0.004,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Component delays of `size` organized as `org`.
    ///
    /// Returns `None` if the organization is degenerate for this size (fewer
    /// than one set row or fewer than eight columns per sub-array).
    pub fn delays(&self, size: CacheSize, org: Organization) -> Option<ComponentDelays> {
        let set_bytes = u64::from(self.line_bytes * self.assoc);
        if !size.bytes().is_multiple_of(set_bytes) {
            return None;
        }
        let sets = size.bytes() / set_bytes;
        if sets == 0
            || !(sets * u64::from(org.nspd)).is_multiple_of(u64::from(org.ndbl))
            || !u64::from(8 * self.line_bytes * self.assoc * org.nspd)
                .is_multiple_of(u64::from(org.ndwl))
        {
            return None;
        }
        // Rows of cells in one sub-array.
        let rows = sets * u64::from(org.nspd) / u64::from(org.ndbl);
        // Bit columns in one sub-array.
        let cols = u64::from(8 * self.line_bytes * self.assoc * org.nspd) / u64::from(org.ndwl);
        if rows < 1 || cols < 8 {
            return None;
        }
        let index_bits = (64 - (rows.max(2) - 1).leading_zeros()) as f64;
        let nsub = f64::from(org.subarrays());
        // Total bit area grows with capacity; the routed edge grows with its
        // square root. Extra sub-arrays lengthen the H-tree slightly.
        let bits = (size.bytes() * 8) as f64;
        let routing =
            self.routing_per_edge * bits.sqrt() * (1.0 + self.routing_per_level * nsub.log2());
        Some(ComponentDelays {
            decoder: self.decoder_base + self.decoder_per_bit * index_bits,
            wordline: self.wordline_base + self.wordline_per_col * cols as f64,
            bitline: self.bitline_base + self.bitline_per_row * rows as f64,
            sense_amp: self.sense_amp,
            comparator: self.comparator,
            mux_driver: self.mux_base + self.mux_per_level * nsub.log2(),
            routing,
        })
    }

    /// Searches `space` for the organization of `size` with the smallest
    /// total delay.
    ///
    /// # Panics
    ///
    /// Panics if no legal organization exists in `space` (only possible for
    /// degenerate sizes far below the paper's 4 KB floor).
    pub fn best_organization(&self, size: CacheSize, space: &SearchSpace) -> BestOrganization {
        let mut best: Option<BestOrganization> = None;
        let mut ndwl = 1;
        while ndwl <= space.max_subarrays {
            let mut ndbl = 1;
            while ndbl <= space.max_subarrays {
                let mut nspd = 1;
                while nspd <= space.max_nspd {
                    let org = Organization { ndwl, ndbl, nspd };
                    let subs = org.subarrays();
                    if subs >= space.min_subarrays && subs <= space.max_subarrays {
                        if let Some(delays) = self.delays(size, org) {
                            let better = best
                                .as_ref()
                                .map(|b| delays.total() < b.delays.total())
                                .unwrap_or(true);
                            if better {
                                best = Some(BestOrganization { organization: org, delays });
                            }
                        }
                    }
                    nspd *= 2;
                }
                ndbl *= 2;
            }
            ndwl *= 2;
        }
        best.unwrap_or_else(|| panic!("no legal organization for {size} in {space:?}"))
    }

    /// Total delay of the best unconstrained (single-ported) organization of
    /// `size`, in relative units.
    pub fn single_ported_delay(&self, size: CacheSize) -> f64 {
        self.best_organization(size, &SearchSpace::default()).delays.total()
    }

    /// Delay of `size` split into `nbanks` independently addressed external
    /// banks: the best organization of one bank plus the inter-bank wiring
    /// overhead (paper Section 2.1: "an increase in the number of wires
    /// required to interconnect the banks").
    ///
    /// # Panics
    ///
    /// Panics if `nbanks` is not a power of two or does not divide `size`.
    pub fn external_banked_delay(&self, size: CacheSize, nbanks: u32) -> f64 {
        assert!(nbanks.is_power_of_two(), "bank count must be a power of two");
        assert!(size.bytes().is_multiple_of(u64::from(nbanks)), "banks must divide capacity");
        let bank = CacheSize::from_bytes(size.bytes() / u64::from(nbanks));
        let per_bank = self.single_ported_delay(bank);
        let levels = f64::from(nbanks).log2();
        let edge = ((size.bytes() * 8) as f64).sqrt();
        per_bank + self.bank_wire_fixed * levels + self.bank_wire_per_edge * edge * levels
    }

    /// The effective access delay of an externally banked cache, applying the
    /// paper's assumption that converting an *internally* banked organization
    /// to external banks carries no timing penalty: if the best free
    /// organization already uses at least `nbanks` sub-arrays, external
    /// banking is free; otherwise the cache pays the external-banking wiring
    /// overhead (and never beats the single-ported cache).
    pub fn effective_banked_delay(&self, size: CacheSize, nbanks: u32) -> f64 {
        let free = self.best_organization(size, &SearchSpace::default());
        let single = free.delays.total();
        if free.organization.subarrays() >= nbanks {
            single
        } else {
            single.max(self.external_banked_delay(size, nbanks))
        }
    }

    /// Returns an affine map from relative delay units to FO4, calibrated so
    /// the unconstrained best organizations of `anchor_a` and `anchor_b` hit
    /// `fo4_a` and `fo4_b` exactly.
    pub fn calibrate_fo4(
        &self,
        anchor_a: (CacheSize, f64),
        anchor_b: (CacheSize, f64),
    ) -> impl Fn(f64) -> f64 + use<> {
        let da = self.best_organization(anchor_a.0, &SearchSpace::default()).delays.total();
        let db = self.best_organization(anchor_b.0, &SearchSpace::default()).delays.total();
        let scale = (anchor_b.1 - anchor_a.1) / (db - da);
        let offset = anchor_a.1 - scale * da;
        move |relative| offset + scale * relative
    }
}

impl Default for CactiModel {
    /// The paper's primary-cache geometry: 32-byte lines, two-way set
    /// associative.
    fn default() -> Self {
        CactiModel::new(32, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Vec<CacheSize> {
        CacheSize::sram_sweep()
    }

    #[test]
    fn best_delay_is_monotone_in_size() {
        let m = CactiModel::default();
        let mut prev = 0.0;
        for s in sizes() {
            let t = m.best_organization(s, &SearchSpace::default()).delays.total();
            assert!(t >= prev, "delay decreased at {s}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn external_banking_hurts_small_caches_only() {
        let m = CactiModel::default();
        for s in sizes() {
            let single = m.single_ported_delay(s);
            let banked = m.effective_banked_delay(s, 8);
            assert!(banked >= single - 1e-9, "banked beat single at {s}");
            if s >= CacheSize::from_kib(64) {
                // Large caches are internally banked already (paper Sec 2.1).
                assert!(
                    (banked - single).abs() < 1e-9,
                    "banked should equal single at {s}: {banked} vs {single}"
                );
            }
        }
        let s4 = CacheSize::from_kib(4);
        assert!(
            m.effective_banked_delay(s4, 8) > m.single_ported_delay(s4),
            "banking must cost delay at 4K"
        );
    }

    #[test]
    fn large_caches_prefer_many_subarrays() {
        let m = CactiModel::default();
        let best = m.best_organization(CacheSize::from_mib(1), &SearchSpace::default());
        assert!(best.organization.subarrays() >= 8, "1 MB best org should be >= 8 sub-arrays");
    }

    #[test]
    fn calibration_hits_anchors() {
        let m = CactiModel::default();
        let to_fo4 =
            m.calibrate_fo4((CacheSize::from_kib(8), 25.0), (CacheSize::from_mib(1), 55.0));
        let d8 =
            m.best_organization(CacheSize::from_kib(8), &SearchSpace::default()).delays.total();
        let d1m =
            m.best_organization(CacheSize::from_mib(1), &SearchSpace::default()).delays.total();
        assert!((to_fo4(d8) - 25.0).abs() < 1e-9);
        assert!((to_fo4(d1m) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_curve_stays_in_figure_one_envelope() {
        // The analytical curve need not match the digitized Figure 1 exactly,
        // but it should stay within a loose envelope of it.
        let m = CactiModel::default();
        let to_fo4 =
            m.calibrate_fo4((CacheSize::from_kib(8), 25.0), (CacheSize::from_mib(1), 55.0));
        for s in sizes() {
            let t = to_fo4(m.best_organization(s, &SearchSpace::default()).delays.total());
            assert!(t > 15.0 && t < 60.0, "calibrated {s} = {t} FO4 outside envelope");
        }
    }

    #[test]
    fn delays_rejects_degenerate_orgs() {
        let m = CactiModel::default();
        // More bitline divisions than the 4 KB cache has sets.
        let org = Organization { ndwl: 1, ndbl: 128, nspd: 1 };
        assert!(m.delays(CacheSize::from_kib(4), org).is_none());
        // Bank count must divide sets evenly.
        let odd = Organization { ndwl: 1, ndbl: 3, nspd: 1 };
        assert!(m.delays(CacheSize::from_kib(4), odd).is_none());
    }

    #[test]
    fn component_total_sums_fields() {
        let d = ComponentDelays {
            decoder: 1.0,
            wordline: 2.0,
            bitline: 3.0,
            sense_amp: 4.0,
            comparator: 5.0,
            mux_driver: 6.0,
            routing: 7.0,
        };
        assert_eq!(d.total(), 28.0);
    }
}
