//! Technology-independent delay units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A delay expressed in fan-out-of-four (FO4) inverter delays.
///
/// One FO4 is the delay of an inverter driving four copies of itself
/// [Horo92]. The paper anchors absolute time with a 200 MHz processor whose
/// cycle is 25 FO4, i.e. one FO4 is 0.2 ns in the modeled 0.5 um process
/// (see [`crate::Technology`]).
///
/// # Example
///
/// ```
/// use hbc_timing::Fo4;
///
/// let cycle = Fo4::new(25.0);
/// let latch = Fo4::new(1.5);
/// assert_eq!((cycle + latch).get(), 26.5);
/// assert!(cycle > latch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fo4(f64);

impl Fo4 {
    /// A zero delay.
    pub const ZERO: Fo4 = Fo4(0.0);

    /// Creates a delay of `fo4` fan-out-of-four units.
    ///
    /// # Panics
    ///
    /// Panics if `fo4` is negative or not finite; delays are magnitudes.
    pub fn new(fo4: f64) -> Self {
        assert!(fo4.is_finite() && fo4 >= 0.0, "FO4 delay must be finite and non-negative");
        Fo4(fo4)
    }

    /// Returns the delay as a bare `f64` number of FO4 units.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts this delay to nanoseconds in technology `tech`.
    ///
    /// ```
    /// use hbc_timing::{Fo4, Technology};
    ///
    /// let tech = Technology::default();
    /// // The 25 FO4 processor cycle of the paper is 5 ns (200 MHz).
    /// assert_eq!(Fo4::new(25.0).to_nanoseconds(&tech).get(), 5.0);
    /// ```
    pub fn to_nanoseconds(self, tech: &crate::Technology) -> Nanoseconds {
        Nanoseconds::new(self.0 * tech.fo4_ns())
    }

    /// Returns the larger of two delays.
    pub fn max(self, other: Fo4) -> Fo4 {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Fo4 {
    type Output = Fo4;
    fn add(self, rhs: Fo4) -> Fo4 {
        Fo4(self.0 + rhs.0)
    }
}

impl AddAssign for Fo4 {
    fn add_assign(&mut self, rhs: Fo4) {
        self.0 += rhs.0;
    }
}

impl Sub for Fo4 {
    type Output = Fo4;
    /// Saturating at zero: a delay difference is never negative.
    fn sub(self, rhs: Fo4) -> Fo4 {
        Fo4((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Fo4 {
    type Output = Fo4;
    fn mul(self, rhs: f64) -> Fo4 {
        Fo4::new(self.0 * rhs)
    }
}

impl Div<Fo4> for Fo4 {
    type Output = f64;
    fn div(self, rhs: Fo4) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Fo4 {
    fn sum<I: Iterator<Item = Fo4>>(iter: I) -> Fo4 {
        iter.fold(Fo4::ZERO, Add::add)
    }
}

impl fmt::Display for Fo4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} FO4", self.0)
    }
}

/// A wall-clock duration in nanoseconds.
///
/// Used for the execution-time study (paper Section 4.4), where second-level
/// cache (50 ns) and main-memory (300 ns) latencies are fixed in real time
/// and rescaled into processor cycles as the cycle time varies.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanoseconds(f64);

impl Nanoseconds {
    /// Creates a duration of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn new(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be finite and non-negative");
        Nanoseconds(ns)
    }

    /// Returns the duration as a bare `f64` number of nanoseconds.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Number of whole processor cycles needed to cover this duration when
    /// one cycle lasts `cycle` nanoseconds (rounded up).
    ///
    /// ```
    /// use hbc_timing::Nanoseconds;
    ///
    /// let l2 = Nanoseconds::new(50.0);
    /// // 5 ns cycle (200 MHz): the paper's 10-cycle L2 hit.
    /// assert_eq!(l2.to_cycles(Nanoseconds::new(5.0)), 10);
    /// // 2 ns cycle (10 FO4): the same L2 is now 25 cycles away.
    /// assert_eq!(l2.to_cycles(Nanoseconds::new(2.0)), 25);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    // hbc-allow: units (whole cycle counts are the simulator's native u64)
    pub fn to_cycles(self, cycle: Nanoseconds) -> u64 {
        assert!(cycle.0 > 0.0, "cycle time must be positive");
        (self.0 / cycle.0).ceil() as u64
    }
}

impl Add for Nanoseconds {
    type Output = Nanoseconds;
    fn add(self, rhs: Nanoseconds) -> Nanoseconds {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl Mul<f64> for Nanoseconds {
    type Output = Nanoseconds;
    fn mul(self, rhs: f64) -> Nanoseconds {
        Nanoseconds::new(self.0 * rhs)
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    #[test]
    fn fo4_arithmetic() {
        let a = Fo4::new(10.0);
        let b = Fo4::new(4.0);
        assert_eq!((a + b).get(), 14.0);
        assert_eq!((a - b).get(), 6.0);
        assert_eq!((b - a).get(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.5).get(), 25.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn fo4_sum_and_max() {
        let total: Fo4 = [1.0, 2.0, 3.5].into_iter().map(Fo4::new).sum();
        assert_eq!(total.get(), 6.5);
        assert_eq!(Fo4::new(2.0).max(Fo4::new(3.0)).get(), 3.0);
        assert_eq!(Fo4::new(4.0).max(Fo4::new(3.0)).get(), 4.0);
    }

    #[test]
    fn fo4_display_is_nonempty() {
        assert_eq!(Fo4::new(25.0).to_string(), "25.00 FO4");
        assert_eq!(Fo4::ZERO.to_string(), "0.00 FO4");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn fo4_rejects_negative() {
        let _ = Fo4::new(-1.0);
    }

    #[test]
    fn nanoseconds_conversion_matches_paper_anchor() {
        let tech = Technology::default();
        // 25 FO4 == 5 ns == 200 MHz.
        assert!((Fo4::new(25.0).to_nanoseconds(&tech).get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn to_cycles_rounds_up() {
        let mem = Nanoseconds::new(300.0);
        assert_eq!(mem.to_cycles(Nanoseconds::new(5.0)), 60); // the paper's 60-cycle memory
        assert_eq!(mem.to_cycles(Nanoseconds::new(7.0)), 43); // 42.86 -> 43
    }

    #[test]
    fn nanoseconds_display() {
        assert_eq!(Nanoseconds::new(5.0).to_string(), "5.000 ns");
    }
}
