//! Pipelined cache fit rules (paper Section 2.2).
//!
//! Pipelining a cache into `d` stages inserts `d - 1` latches of 1.5 FO4
//! each, so a cache with access time `a` fits a hit time of `d` cycles at
//! cycle time `T` when `a + (d - 1) * latch <= d * T`.
//!
//! These are exactly the fits the paper states: at a 25 FO4 cycle the
//! 41.75 FO4 (512 KB) cache fits two cycles (41.75 + 1.5 = 43.25 ≤ 50) while
//! the 55 FO4 (1 MB) cache needs three (55 + 3 = 58 > 50).

use crate::{AccessTimeModel, CacheSize, Fo4, PortStructure, Technology};

/// Returns the smallest hit time, in whole processor cycles, at which a
/// cache with access time `access` can be pipelined given cycle time
/// `cycle`, searching up to `max_depth` stages.
///
/// Returns `None` if even `max_depth` stages do not fit (the per-stage latch
/// overhead eventually eats the whole cycle).
///
/// # Example
///
/// ```
/// use hbc_timing::pipeline::cycles_needed;
/// use hbc_timing::{Fo4, Technology};
///
/// let tech = Technology::default();
/// let cycle = Fo4::new(25.0);
/// assert_eq!(cycles_needed(Fo4::new(25.0), cycle, &tech, 3), Some(1)); // 8 KB
/// assert_eq!(cycles_needed(Fo4::new(41.75), cycle, &tech, 3), Some(2)); // 512 KB
/// assert_eq!(cycles_needed(Fo4::new(55.0), cycle, &tech, 3), Some(3)); // 1 MB
/// ```
pub fn cycles_needed(access: Fo4, cycle: Fo4, tech: &Technology, max_depth: u32) -> Option<u32> {
    (1..=max_depth).find(|&d| fits(access, cycle, tech, d))
}

/// `true` if a cache with access time `access` can be pipelined into a
/// `depth`-cycle hit at cycle time `cycle`.
pub fn fits(access: Fo4, cycle: Fo4, tech: &Technology, depth: u32) -> bool {
    assert!(depth >= 1, "pipeline depth must be at least one");
    let latches = tech.latch_overhead() * f64::from(depth - 1);
    (access + latches).get() <= (cycle * f64::from(depth)).get() + 1e-9
}

/// The largest power-of-two cache in `model`'s range whose `ports` access
/// time fits a `depth`-cycle hit at cycle time `cycle`, or `None` if not
/// even the smallest modeled cache fits.
///
/// This is the selection Figure 9 performs for every processor cycle time:
/// "the maximum size duplicate SRAM cache that can be built with hit times
/// of one, two, and three processor cycles".
///
/// # Example
///
/// ```
/// use hbc_timing::pipeline::max_cache_size;
/// use hbc_timing::{AccessTimeModel, CacheSize, Fo4, PortStructure, Technology};
///
/// let model = AccessTimeModel::default();
/// let tech = Technology::default();
/// // A 29 FO4 cycle accommodates a one-cycle 64 KB duplicate cache (Sec 4.4).
/// let best = max_cache_size(&model, PortStructure::Duplicate, Fo4::new(29.0), &tech, 1);
/// assert_eq!(best, Some(CacheSize::from_kib(64)));
/// ```
pub fn max_cache_size(
    model: &AccessTimeModel,
    ports: PortStructure,
    cycle: Fo4,
    tech: &Technology,
    depth: u32,
) -> Option<CacheSize> {
    CacheSize::sram_sweep()
        .into_iter()
        .filter(|&s| {
            model.access_time(s, ports).map(|a| fits(a, cycle, tech, depth)).unwrap_or(false)
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AccessTimeModel, Technology) {
        (AccessTimeModel::default(), Technology::default())
    }

    #[test]
    fn paper_fit_statements_hold() {
        let (model, tech) = setup();
        let cycle25 = Fo4::new(25.0);
        let at =
            |kib| model.access_time(CacheSize::from_kib(kib), PortStructure::SinglePorted).unwrap();
        // 512 KB fits two cycles at 25 FO4 with one 1.5 FO4 latch.
        assert_eq!(cycles_needed(at(512), cycle25, &tech, 3), Some(2));
        // 1 MB needs three cycles at 25 FO4.
        assert_eq!(cycles_needed(at(1024), cycle25, &tech, 3), Some(3));
        // 8 KB is single cycle at 25 FO4, 4 KB at 24 FO4 but not below.
        assert_eq!(cycles_needed(at(8), cycle25, &tech, 3), Some(1));
        assert!(fits(at(4), Fo4::new(24.0), &tech, 1));
        assert!(!fits(at(4), Fo4::new(23.9), &tech, 1));
    }

    #[test]
    fn max_cache_matches_conclusions() {
        let (model, tech) = setup();
        let max = |cycle: f64, depth| {
            max_cache_size(&model, PortStructure::Duplicate, Fo4::new(cycle), &tech, depth)
        };
        // 29 FO4 -> 64 KB one-cycle cache.
        assert_eq!(max(29.0, 1), Some(CacheSize::from_kib(64)));
        // 25 FO4 -> 8 KB one-cycle, 512 KB two-cycle, 1 MB three-cycle.
        assert_eq!(max(25.0, 1), Some(CacheSize::from_kib(8)));
        assert_eq!(max(25.0, 2), Some(CacheSize::from_kib(512)));
        assert_eq!(max(25.0, 3), Some(CacheSize::from_mib(1)));
        // Below 24 FO4 no single-cycle cache exists at all (Section 5).
        assert_eq!(max(23.5, 1), None);
        // At 10 FO4 two cycles are still not enough; pipelining required.
        assert_eq!(max(10.0, 2), None);
    }

    #[test]
    fn deeper_pipelines_never_shrink_the_cache() {
        let (model, tech) = setup();
        for cycle in [10.0_f64, 15.0, 20.0, 25.0, 30.0] {
            let mut prev = None;
            for depth in 1..=3 {
                let m =
                    max_cache_size(&model, PortStructure::Duplicate, Fo4::new(cycle), &tech, depth);
                if let (Some(p), Some(c)) = (prev, m) {
                    assert!(c >= p, "deeper pipeline shrank cache at {cycle} FO4");
                }
                if m.is_some() {
                    prev = m;
                }
            }
        }
    }

    #[test]
    fn banked_fits_are_never_larger_than_duplicate() {
        let (model, tech) = setup();
        for cycle in [24.0_f64, 26.0, 28.0, 30.0] {
            for depth in 1..=3 {
                let dup =
                    max_cache_size(&model, PortStructure::Duplicate, Fo4::new(cycle), &tech, depth);
                let banked =
                    max_cache_size(&model, PortStructure::Banked8, Fo4::new(cycle), &tech, depth);
                match (dup, banked) {
                    (Some(d), Some(b)) => assert!(b <= d),
                    (None, Some(_)) => panic!("banked fits where duplicate does not"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_depth_rejected() {
        let (_, tech) = setup();
        let _ = fits(Fo4::new(25.0), Fo4::new(25.0), &tech, 0);
    }
}
