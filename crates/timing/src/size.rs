//! Cache capacity newtype.

use std::fmt;

/// A cache capacity in bytes.
///
/// The study sweeps SRAM caches from 4 KB to 1 MB and a 4 MB on-chip DRAM
/// cache; this type carries the capacity and provides the sweep helpers the
/// experiments use.
///
/// # Example
///
/// ```
/// use hbc_timing::CacheSize;
///
/// let s = CacheSize::from_kib(32);
/// assert_eq!(s.bytes(), 32 * 1024);
/// assert_eq!(s.to_string(), "32K");
/// assert_eq!(CacheSize::from_mib(1).to_string(), "1M");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheSize(u64);

impl CacheSize {
    /// Creates a capacity of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn from_bytes(bytes: u64) -> Self {
        assert!(bytes > 0, "cache size must be non-zero");
        CacheSize(bytes)
    }

    /// Creates a capacity of `kib` kibibytes.
    pub fn from_kib(kib: u64) -> Self {
        Self::from_bytes(kib * 1024)
    }

    /// Creates a capacity of `mib` mebibytes.
    pub fn from_mib(mib: u64) -> Self {
        Self::from_bytes(mib * 1024 * 1024)
    }

    /// Capacity in bytes.
    // hbc-allow: units (raw accessor at the newtype boundary, like `get`)
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// Capacity in kibibytes, rounded down.
    // hbc-allow: units (raw accessor at the newtype boundary, like `get`)
    pub fn kib(self) -> u64 {
        self.0 / 1024
    }

    /// Base-2 logarithm of the byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power of two.
    pub fn log2(self) -> u32 {
        assert!(self.0.is_power_of_two(), "size {} is not a power of two", self.0);
        self.0.trailing_zeros()
    }

    /// `true` if the capacity is a power of two.
    pub fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }

    /// The paper's primary-cache sweep: 4 KB, 8 KB, ..., 1 MB.
    ///
    /// ```
    /// use hbc_timing::CacheSize;
    ///
    /// let sweep = CacheSize::sram_sweep();
    /// assert_eq!(sweep.len(), 9);
    /// assert_eq!(sweep[0], CacheSize::from_kib(4));
    /// assert_eq!(sweep[8], CacheSize::from_mib(1));
    /// ```
    pub fn sram_sweep() -> Vec<CacheSize> {
        (2..=10).map(|i| CacheSize::from_kib(1 << i)).collect()
    }
}

impl fmt::Display for CacheSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MIB: u64 = 1024 * 1024;
        if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{}M", self.0 / MIB)
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}K", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(CacheSize::from_kib(1024), CacheSize::from_mib(1));
        assert_eq!(CacheSize::from_bytes(4096), CacheSize::from_kib(4));
    }

    #[test]
    fn ordering_follows_capacity() {
        assert!(CacheSize::from_kib(4) < CacheSize::from_kib(8));
        assert!(CacheSize::from_mib(1) > CacheSize::from_kib(512));
    }

    #[test]
    fn log2_of_power_of_two() {
        assert_eq!(CacheSize::from_kib(8).log2(), 13);
        assert_eq!(CacheSize::from_mib(1).log2(), 20);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn log2_rejects_non_power_of_two() {
        let _ = CacheSize::from_bytes(3000).log2();
    }

    #[test]
    fn display_forms() {
        assert_eq!(CacheSize::from_bytes(512).to_string(), "512B");
        assert_eq!(CacheSize::from_kib(512).to_string(), "512K");
        assert_eq!(CacheSize::from_mib(4).to_string(), "4M");
    }

    #[test]
    fn sram_sweep_is_the_paper_range() {
        let sweep = CacheSize::sram_sweep();
        let kib: Vec<u64> = sweep.iter().map(|s| s.kib()).collect();
        assert_eq!(kib, vec![4, 8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = CacheSize::from_bytes(0);
    }
}
