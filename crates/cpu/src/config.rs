//! Processor configuration.

use std::fmt;

use hbc_isa::LatencyTable;

/// An invalid processor-configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpuConfigError {
    /// A fetch, issue, or commit width of zero.
    ZeroWidth,
    /// A reorder buffer with no entries.
    NoRobEntries,
    /// A load/store queue with no entries.
    NoLsqEntries,
    /// A load/store queue deeper than the instruction window.
    LsqExceedsRob,
}

impl fmt::Display for CpuConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuConfigError::ZeroWidth => f.write_str("pipeline widths must be non-zero"),
            CpuConfigError::NoRobEntries => f.write_str("reorder buffer needs at least one entry"),
            CpuConfigError::NoLsqEntries => {
                f.write_str("load/store queue needs at least one entry")
            }
            CpuConfigError::LsqExceedsRob => {
                f.write_str("load/store queue cannot exceed the instruction window")
            }
        }
    }
}

impl std::error::Error for CpuConfigError {}

/// Configuration of the dynamic superscalar processor (paper Figure 2).
///
/// The paper's machine: four-issue, 64-entry instruction window, 32-entry
/// load/store buffer, R10000 instruction latencies, no restriction on which
/// instruction types issue together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched and dispatched per cycle.
    pub fetch_width: u32,
    /// Instructions issued to execution per cycle.
    pub issue_width: u32,
    /// Instructions retired per cycle.
    pub commit_width: u32,
    /// Reorder-buffer (instruction window) entries.
    pub rob_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Functional-unit latencies.
    pub latencies: LatencyTable,
    /// Cycles between a mispredicted branch resolving and useful fetch
    /// resuming (redirect penalty).
    pub redirect_penalty: u64,
}

impl CpuConfig {
    /// The paper's four-issue dynamic superscalar processor.
    pub fn paper() -> Self {
        CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 64,
            lsq_entries: 32,
            latencies: LatencyTable::r10000(),
            redirect_penalty: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first zero-width or zero-capacity parameter.
    pub fn validate(&self) -> Result<(), CpuConfigError> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err(CpuConfigError::ZeroWidth);
        }
        if self.rob_entries == 0 {
            return Err(CpuConfigError::NoRobEntries);
        }
        if self.lsq_entries == 0 {
            return Err(CpuConfigError::NoLsqEntries);
        }
        if self.lsq_entries > self.rob_entries {
            return Err(CpuConfigError::LsqExceedsRob);
        }
        Ok(())
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = CpuConfig::paper();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn invalid_rejected() {
        let mut c = CpuConfig::paper();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::paper();
        c.lsq_entries = 128;
        assert!(c.validate().is_err());
    }
}
