//! The four-issue dynamic superscalar processor of Wilson & Olukotun,
//! *"Designing High Bandwidth On-Chip Caches"* (ISCA 1997).
//!
//! A cycle-level out-of-order core in the mold of the paper's MXS simulator:
//! four-wide fetch/issue/commit, a 64-entry instruction window, a 32-entry
//! load/store queue, R10000 functional-unit latencies, no issue-class
//! restrictions, non-blocking loads, buffered stores written at commit, a
//! perfect single-cycle instruction cache, and fetch squelching on
//! mispredicted branches until they resolve.
//!
//! The core is driven by any infinite [`hbc_isa::DynInst`] stream —
//! usually an [`hbc_workloads::WorkloadGen`] — and talks to an
//! [`hbc_mem::MemSystem`] for loads and stores.
//!
//! # Example
//!
//! ```
//! use hbc_cpu::{Core, CpuConfig};
//! use hbc_mem::{MemConfig, MemSystem, PortModel};
//! use hbc_workloads::{Benchmark, WorkloadGen};
//!
//! let mem = MemSystem::new(MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate))?;
//! let mut core = Core::new(CpuConfig::paper(), mem, WorkloadGen::new(Benchmark::Gcc, 1))?;
//! core.run(2_000); // warm up
//! let ipc = core.run(10_000).ipc();
//! assert!(ipc > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod config;
mod core;
mod predictor;
mod stats;

pub use crate::core::Core;
pub use config::{CpuConfig, CpuConfigError};
pub use predictor::Gshare;
pub use stats::RunStats;
