//! The four-issue dynamic superscalar pipeline.

use std::collections::VecDeque;

use hbc_isa::{DynInst, InstId};
use hbc_mem::{LoadResponse, MemSystem, RejectReason};
use hbc_probe::{saturating_count, Tracer};
#[cfg(feature = "probe")]
use hbc_probe::{StallCause, TraceEvent};

use crate::config::{CpuConfig, CpuConfigError};
use crate::stats::RunStats;

/// Lifecycle of one in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// In the window, waiting for source operands.
    Dispatched,
    /// In a functional unit (address calculation, for memory operations).
    Executing {
        /// Cycle the unit finishes.
        done: u64,
    },
    /// A load with its address ready, waiting for a cache port.
    WaitingPort,
    /// A load accepted by the memory system.
    MemPending {
        /// Cycle the data returns.
        done: u64,
        /// Whether the access left the primary cache (miss) — the stall
        /// attributor charges such waits to the levels below. Only read in
        /// `probe` builds.
        #[cfg_attr(not(feature = "probe"), allow(dead_code))]
        miss: bool,
    },
    /// Finished; eligible to retire in order.
    Done {
        /// Cycle the result became available.
        at: u64,
    },
}

#[derive(Debug, Clone)]
struct Slot {
    inst: DynInst,
    dispatched_at: u64,
    stage: Stage,
}

/// The dynamic superscalar processor core, generic over its instruction
/// stream.
///
/// Models the paper's MXS configuration: four-wide fetch/issue/commit, a
/// 64-entry instruction window, a 32-entry load/store queue, out-of-order
/// issue with no functional-unit class restrictions, non-blocking loads
/// against the [`MemSystem`], buffered stores written at commit, and fetch
/// squelching on branch mispredictions until the branch resolves.
///
/// # Example
///
/// ```
/// use hbc_cpu::{Core, CpuConfig};
/// use hbc_mem::{MemConfig, MemSystem, PortModel};
/// use hbc_workloads::{Benchmark, WorkloadGen};
///
/// let mem = MemSystem::new(MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate))?;
/// let gen = WorkloadGen::new(Benchmark::Gcc, 1);
/// let mut core = Core::new(CpuConfig::paper(), mem, gen)?;
/// let stats = core.run(5_000);
/// assert!(stats.ipc() > 0.3 && stats.ipc() < 4.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Core<I> {
    cfg: CpuConfig,
    mem: MemSystem,
    stream: I,
    rob: VecDeque<Slot>,
    /// Id of the oldest instruction still in the window; every older id has
    /// retired and is therefore a ready source.
    head: u64,
    now: u64,
    lsq_used: usize,
    /// Instruction fetched but not yet dispatched (window or LSQ full).
    staged: Option<DynInst>,
    /// Mispredicted control transfer fetch is waiting on, if any.
    waiting_branch: Option<InstId>,
    /// Cycle useful fetch resumes after a resolved misprediction.
    fetch_resume_at: u64,
    retired_total: u64,
    /// Slots in [`Stage::Dispatched`] — lets the issue scan stop as soon as
    /// every candidate has been considered.
    n_dispatched: usize,
    /// Slots in [`Stage::WaitingPort`] — lets the memory-access scan skip
    /// cycles with no address-ready loads.
    n_port_waiting: usize,
    /// Slots in [`Stage::Executing`] or [`Stage::MemPending`].
    n_busy: usize,
    /// Earliest `done` cycle among busy slots (`u64::MAX` when none): the
    /// stage-update scan is a no-op until then, so it is skipped. These
    /// occupancy fields only prune scans that could not match — they never
    /// change which transition happens on which cycle.
    next_done: u64,
    /// Ring-buffer cycle tracer, when a trace window was requested.
    /// Events are recorded only in `probe` builds.
    tracer: Option<Tracer>,
    /// Whether [`Core::run`] may fast-forward through provably empty
    /// cycles (the event-horizon engine); on by default.
    event_horizon: bool,
    /// Cycles fast-forwarded instead of ticked, and the jumps that covered
    /// them. Deliberately *not* part of [`RunStats`]: skipping must leave
    /// every exported statistic bit-identical to the tick loop.
    skipped_cycles: u64,
    skip_spans: u64,
}

impl<I: Iterator<Item = DynInst>> Core<I> {
    /// Builds a core over `mem` consuming instructions from `stream`.
    ///
    /// The stream must be infinite (the generator never ends) and produce
    /// sequential [`InstId`]s starting at zero.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint if `cfg` is inconsistent.
    pub fn new(cfg: CpuConfig, mem: MemSystem, stream: I) -> Result<Self, CpuConfigError> {
        cfg.validate()?;
        Ok(Core {
            cfg,
            mem,
            stream,
            rob: VecDeque::new(),
            head: 0,
            now: 0,
            lsq_used: 0,
            staged: None,
            waiting_branch: None,
            fetch_resume_at: 0,
            retired_total: 0,
            n_dispatched: 0,
            n_port_waiting: 0,
            n_busy: 0,
            next_done: u64::MAX,
            tracer: None,
            event_horizon: true,
            skipped_cycles: 0,
            skip_spans: 0,
        })
    }

    /// Enables or disables the event-horizon engine (on by default). With
    /// it off, [`Core::run`] ticks every cycle — the reference loop the
    /// equivalence property tests compare against.
    pub fn set_event_horizon(&mut self, enabled: bool) {
        self.event_horizon = enabled;
    }

    /// Cycles fast-forwarded by the event-horizon engine since
    /// construction.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Fast-forward jumps taken since construction.
    pub fn skip_spans(&self) -> u64 {
        self.skip_spans
    }

    /// Enables the cycle tracer, retaining the last `capacity` pipeline and
    /// cache events. Events are recorded only when the `probe` feature is
    /// compiled in; without it the tracer stays empty so release figure
    /// runs pay nothing.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// The retained trace window as JSON lines (`None` when tracing was
    /// never enabled).
    pub fn trace_jsonl(&self) -> Option<String> {
        self.tracer.as_ref().map(|t| t.to_jsonl())
    }

    /// Records `ev` when tracing is enabled (`probe` builds only).
    #[cfg(feature = "probe")]
    fn trace(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.push(ev);
        }
    }

    /// The memory system (for its statistics).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Total instructions retired since construction.
    pub fn retired(&self) -> u64 {
        self.retired_total
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until `instructions` more instructions retire and returns the
    /// statistics of that window. Call once to warm up and again to
    /// measure.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no instruction retires for 100 000
    /// cycles) or the instruction stream ends.
    pub fn run(&mut self, instructions: u64) -> RunStats {
        let mut stats = RunStats::default();
        let start_cycle = self.now;
        let target = self.retired_total + instructions;
        let mut last_retired = self.retired_total;
        let mut idle_cycles = 0u64;
        while self.retired_total < target {
            if self.event_horizon {
                if let Some(horizon) = self.skip_horizon() {
                    // Nothing can retire inside a skipped span, so the span
                    // counts against the deadlock watchdog exactly as the
                    // ticked cycles would have.
                    idle_cycles += self.fast_forward(horizon, &mut stats);
                    if idle_cycles >= 100_000 {
                        if let Some(t) = &self.tracer {
                            eprintln!(
                                "deadlock: last {} trace events before cycle {}:\n{}",
                                t.len(),
                                self.now,
                                t.to_jsonl()
                            );
                        }
                    }
                    assert!(idle_cycles < 100_000, "pipeline deadlock at cycle {}", self.now);
                }
            }
            self.step(&mut stats);
            if self.retired_total == last_retired {
                idle_cycles += 1;
                if idle_cycles >= 100_000 {
                    // About to declare a deadlock: dump the trace window (if
                    // one was kept) so the last cycles before the hang are
                    // not lost with the panic.
                    if let Some(t) = &self.tracer {
                        eprintln!(
                            "deadlock: last {} trace events before cycle {}:\n{}",
                            t.len(),
                            self.now,
                            t.to_jsonl()
                        );
                    }
                }
                assert!(idle_cycles < 100_000, "pipeline deadlock at cycle {}", self.now);
            } else {
                idle_cycles = 0;
                last_retired = self.retired_total;
            }
        }
        stats.instructions = self.retired_total - (target - instructions);
        stats.cycles = self.now - start_cycle;
        // Completeness: the per-cycle attribution charged every cycle of
        // the window to exactly one cause.
        #[cfg(all(feature = "probe", feature = "sanitize"))]
        assert!(
            stats.stall.total() == stats.cycles,
            "sanitize: stall attribution covers {} of {} cycles",
            stats.stall.total(),
            stats.cycles
        );
        stats
    }

    /// Advances the machine one cycle.
    fn step(&mut self, stats: &mut RunStats) {
        self.now += 1;
        let now = self.now;
        self.mem.begin_cycle(now);
        self.update_stages(now);
        let issued = self.issue(now);
        let reject = self.access_memory(now);
        let (retired, store_stalled) = self.retire(now, stats);
        self.fetch(now, stats);
        self.mem.end_cycle();
        #[cfg(feature = "probe")]
        {
            let w = (issued as usize).min(stats.issue_width.len() - 1);
            saturating_count(&mut stats.issue_width[w], 1);
            stats.stall.charge(self.classify_stall(retired, store_stalled, reject, now));
        }
        #[cfg(not(feature = "probe"))]
        let _ = (issued, reject, retired, store_stalled);
        #[cfg(feature = "sanitize")]
        self.assert_invariants();
    }

    /// The core's own event horizon: the earliest future cycle at which
    /// its timed state changes without new input — the next functional-unit
    /// or fill completion, or the end of a misprediction redirect. `None`
    /// when nothing is scheduled.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut horizon = if self.n_busy > 0 { self.next_done } else { u64::MAX };
        if self.waiting_branch.is_none() && self.fetch_resume_at > now {
            horizon = horizon.min(self.fetch_resume_at);
        }
        (horizon != u64::MAX).then_some(horizon)
    }

    /// Decides whether every cycle strictly between `now` and some future
    /// event is provably empty, and if so returns that event horizon.
    ///
    /// A post-cycle state is skippable when nothing can happen on the next
    /// cycle *or any cycle up to the horizon*:
    ///
    /// - no load is waiting for a cache port (such loads retry — and count
    ///   statistics — every cycle);
    /// - the window head is not complete (a `Done` head retires next
    ///   cycle);
    /// - fetch is blocked, and stays blocked: a squelch ends at
    ///   `fetch_resume_at` (a horizon candidate) or at branch resolution
    ///   (bounded by `next_done`); full windows drain only at retirement,
    ///   which needs the head to complete (bounded by `next_done`);
    /// - the oldest buffered store cannot drain before the horizon (blocked
    ///   drains wait on an MSHR, a horizon candidate);
    /// - no dispatched instruction has all sources ready. Completed
    ///   producers' results are already visible (`Done` timestamps never
    ///   exceed the current cycle), so readiness is static over the span.
    ///
    /// Every condition is stable until the returned horizon, which is
    /// always finite in a skippable state: a blocked front end implies a
    /// busy head (a dispatched head would be issue-ready) or a pending
    /// redirect, each of which schedules an event.
    fn skip_horizon(&self) -> Option<u64> {
        if self.n_port_waiting != 0 {
            return None;
        }
        if matches!(self.rob.front().map(|s| s.stage), Some(Stage::Done { .. })) {
            return None;
        }
        let t = self.now + 1;
        let squelched = self.waiting_branch.is_some() || t < self.fetch_resume_at;
        let rob_full = self.rob.len() == self.cfg.rob_entries;
        let lsq_blocked = self.staged.is_some() && self.lsq_used == self.cfg.lsq_entries;
        if !squelched && !rob_full && !lsq_blocked {
            return None;
        }
        let mut horizon = self.next_event(self.now).unwrap_or(u64::MAX);
        match self.mem.store_drain_at(t) {
            None => {}
            Some(c) if c <= t => return None, // a buffered store drains next cycle
            Some(c) => horizon = horizon.min(c),
        }
        if horizon <= t || horizon == u64::MAX {
            return None;
        }
        if self.any_issue_ready(t) {
            return None;
        }
        Some(horizon)
    }

    /// `true` when any dispatched instruction could issue at cycle `now`.
    fn any_issue_ready(&self, now: u64) -> bool {
        let mut remaining = self.n_dispatched;
        for slot in &self.rob {
            if remaining == 0 {
                break;
            }
            if slot.stage != Stage::Dispatched {
                continue;
            }
            remaining -= 1;
            if slot.inst.srcs().iter().flatten().all(|s| self.src_ready(*s, now)) {
                return true;
            }
        }
        false
    }

    /// Jumps the clock to `horizon - 1`, charging the skipped cycles in
    /// bulk exactly as the tick loop would have: one fetch-blocked counter
    /// per cycle, and in `probe` builds one zero-width issue slot and one
    /// (provably constant) stall cause per cycle, so `sum(stall causes) ==
    /// cycles` still holds. Returns the number of cycles skipped.
    ///
    /// In `sanitize` builds the span is executed tick-by-tick instead (the
    /// lockstep mode) and every per-cycle outcome is asserted against the
    /// bulk prediction before the prediction is applied.
    fn fast_forward(&mut self, horizon: u64, stats: &mut RunStats) -> u64 {
        let t = self.now + 1;
        let span = horizon - t;
        debug_assert!(span > 0);
        // Predict the span's charges from the (stable) pre-span state. The
        // fetch cascade charges exactly one counter per blocked cycle,
        // squelch first; the stall cascade is the probe-build attribution.
        let mut predicted = RunStats::default();
        if self.waiting_branch.is_some() || t < self.fetch_resume_at {
            predicted.fetch_stall_cycles = span;
        } else if self.rob.len() == self.cfg.rob_entries {
            predicted.rob_full_cycles = span;
        } else {
            predicted.lsq_full_cycles = span;
        }
        #[cfg(feature = "probe")]
        {
            predicted.issue_width[0] = span;
            predicted.stall.charge_n(self.classify_stall(0, false, None, t), span);
        }
        #[cfg(feature = "sanitize")]
        self.lockstep_check(span, &predicted);
        #[cfg(not(feature = "sanitize"))]
        {
            self.now = horizon - 1;
        }
        saturating_count(&mut stats.fetch_stall_cycles, predicted.fetch_stall_cycles);
        saturating_count(&mut stats.rob_full_cycles, predicted.rob_full_cycles);
        saturating_count(&mut stats.lsq_full_cycles, predicted.lsq_full_cycles);
        #[cfg(feature = "probe")]
        {
            saturating_count(&mut stats.issue_width[0], predicted.issue_width[0]);
            stats.stall.merge(&predicted.stall);
        }
        self.skipped_cycles += span;
        self.skip_spans += 1;
        span
    }

    /// Lockstep mode: executes a span the engine decided to skip cycle by
    /// cycle and asserts that the ticked machine stayed architecturally
    /// frozen and charged exactly the predicted bulk statistics. The ticked
    /// state *is* the reference state, so passing spans prove skipping and
    /// ticking bit-identical.
    #[cfg(feature = "sanitize")]
    fn lockstep_check(&mut self, span: u64, predicted: &RunStats) {
        let observe = |c: &Self| {
            (
                c.head,
                c.rob.len(),
                c.lsq_used,
                c.n_dispatched,
                c.n_port_waiting,
                c.n_busy,
                c.next_done,
                c.retired_total,
                c.waiting_branch,
                c.fetch_resume_at,
                c.staged.as_ref().map(|i| i.id()),
                c.mem.pending_stores(),
            )
        };
        let before = observe(self);
        let mut ticked = RunStats::default();
        for _ in 0..span {
            self.step(&mut ticked);
            assert!(
                self.retired_total == before.7,
                "sanitize: lockstep: a skipped cycle retired instructions at {}",
                self.now
            );
        }
        let after = observe(self);
        assert!(
            before == after,
            "sanitize: lockstep: skipped span changed core state at {}:\n{before:?}\n{after:?}",
            self.now
        );
        assert!(
            ticked == *predicted,
            "sanitize: lockstep: ticked charges disagree with the bulk prediction at \
             {}:\n{ticked:?}\n{predicted:?}",
            self.now
        );
    }

    /// Charges this cycle to exactly one [`StallCause`].
    ///
    /// The cascade is total and exclusive, oldest-instruction-first: any
    /// retirement is useful work (`Commit`); otherwise the window head
    /// explains the cycle (blocked commit, a load stuck at the ports or in
    /// the levels below the L1, execution latency); an empty or unready
    /// window is the front end's fault (`BranchRecovery` while squelched,
    /// `RobFull`/`LsqFull` when dispatch is blocked, `IssueEmpty` for
    /// dependence chains and functional-unit latency).
    ///
    /// A head load in `MemPending` on a *hit* is still occupying the cache
    /// pipeline, so those cycles are charged to `DcachePortConflict` — the
    /// paper's pipelined-hit-time cost — while misses charge `DramBusy`.
    #[cfg(feature = "probe")]
    fn classify_stall(
        &self,
        retired: u64,
        store_stalled: bool,
        reject: Option<RejectReason>,
        now: u64,
    ) -> StallCause {
        if retired > 0 {
            return StallCause::Commit;
        }
        if store_stalled {
            return StallCause::StoreBufferFull;
        }
        let squelched = self.waiting_branch.is_some() || now < self.fetch_resume_at;
        let Some(head) = self.rob.front() else {
            return if squelched { StallCause::BranchRecovery } else { StallCause::IssueEmpty };
        };
        match head.stage {
            Stage::WaitingPort => match reject {
                Some(RejectReason::MshrFull) => StallCause::MshrFull,
                _ => StallCause::DcachePortConflict,
            },
            Stage::MemPending { miss: true, .. } => StallCause::DramBusy,
            Stage::MemPending { miss: false, .. } => StallCause::DcachePortConflict,
            _ => {
                if self.rob.len() == self.cfg.rob_entries {
                    StallCause::RobFull
                } else if self.lsq_used == self.cfg.lsq_entries {
                    StallCause::LsqFull
                } else if squelched {
                    StallCause::BranchRecovery
                } else {
                    StallCause::IssueEmpty
                }
            }
        }
    }

    /// Sanitizer: checks window bookkeeping after every cycle. Violations
    /// are core bugs, so it panics.
    #[cfg(feature = "sanitize")]
    fn assert_invariants(&self) {
        assert!(
            self.rob.len() <= self.cfg.rob_entries,
            "sanitize: {} instructions in a {}-entry window",
            self.rob.len(),
            self.cfg.rob_entries
        );
        assert!(
            self.lsq_used <= self.cfg.lsq_entries,
            "sanitize: {} loads/stores in a {}-entry queue",
            self.lsq_used,
            self.cfg.lsq_entries
        );
        // The LSQ counter must agree with the window contents exactly, or
        // it will eventually deadlock fetch (leak) or oversubscribe the
        // queue (double free).
        let mem_in_window = self.rob.iter().filter(|s| s.inst.is_mem()).count();
        assert!(
            self.lsq_used == mem_in_window,
            "sanitize: LSQ counter {} disagrees with {} memory ops in the window",
            self.lsq_used,
            mem_in_window
        );
        // Window ids are contiguous from the head: slot i holds head + i.
        for (i, slot) in self.rob.iter().enumerate() {
            assert!(
                slot.inst.id().get() == self.head + i as u64,
                "sanitize: window slot {i} holds instruction {} but the head is {}",
                slot.inst.id().get(),
                self.head
            );
        }
        // The scan-pruning occupancy counters must agree with a recount, or
        // a scan will skip a slot whose transition is due.
        let count = |f: fn(&Stage) -> bool| self.rob.iter().filter(|s| f(&s.stage)).count();
        assert!(
            self.n_dispatched == count(|s| matches!(s, Stage::Dispatched)),
            "sanitize: dispatched counter {} disagrees with the window",
            self.n_dispatched
        );
        assert!(
            self.n_port_waiting == count(|s| matches!(s, Stage::WaitingPort)),
            "sanitize: waiting-port counter {} disagrees with the window",
            self.n_port_waiting
        );
        assert!(
            self.n_busy
                == count(|s| matches!(s, Stage::Executing { .. } | Stage::MemPending { .. })),
            "sanitize: busy counter {} disagrees with the window",
            self.n_busy
        );
        let earliest = self
            .rob
            .iter()
            .filter_map(|s| match s.stage {
                Stage::Executing { done } | Stage::MemPending { done, .. } => Some(done),
                _ => None,
            })
            .min();
        assert!(
            earliest.is_none_or(|e| self.next_done <= e),
            "sanitize: next-done watermark {} is later than a busy slot at {:?}",
            self.next_done,
            earliest
        );
    }

    /// Moves finished executions along and resolves waiting branches.
    fn update_stages(&mut self, now: u64) {
        if self.n_busy == 0 || self.next_done > now {
            return; // nothing can finish yet: the scan would be a no-op
        }
        let mut next_done = u64::MAX;
        let mut resolved: Option<(InstId, u64)> = None;
        for i in 0..self.rob.len() {
            match self.rob[i].stage {
                Stage::Executing { done } if done <= now => {
                    self.n_busy -= 1;
                    let inst = self.rob[i].inst;
                    if inst.op().is_load() {
                        self.rob[i].stage = Stage::WaitingPort;
                        self.n_port_waiting += 1;
                    } else {
                        if inst.op().is_control() && inst.mispredicted() {
                            resolved = Some((inst.id(), done));
                        }
                        self.rob[i].stage = Stage::Done { at: done };
                        #[cfg(feature = "probe")]
                        self.trace(TraceEvent::ExecDone { cycle: now, inst: inst.id().get() });
                    }
                }
                Stage::MemPending { done, .. } if done <= now => {
                    self.n_busy -= 1;
                    self.rob[i].stage = Stage::Done { at: done };
                    #[cfg(feature = "probe")]
                    {
                        let inst = self.rob[i].inst.id().get();
                        self.trace(TraceEvent::ExecDone { cycle: now, inst });
                    }
                }
                Stage::Executing { done } | Stage::MemPending { done, .. } => {
                    next_done = next_done.min(done);
                }
                _ => {}
            }
        }
        self.next_done = next_done;
        if let Some((id, done)) = resolved {
            if self.waiting_branch == Some(id) {
                self.waiting_branch = None;
                self.fetch_resume_at = done + self.cfg.redirect_penalty;
            }
        }
    }

    /// `true` when `src` has produced its value by `now`.
    fn src_ready(&self, src: InstId, now: u64) -> bool {
        if src.get() < self.head {
            return true; // producer already retired
        }
        let idx = (src.get() - self.head) as usize;
        match self.rob.get(idx) {
            Some(slot) => matches!(slot.stage, Stage::Done { at } if at <= now),
            None => true,
        }
    }

    /// Issues ready instructions up to the machine width; returns how many
    /// issued this cycle.
    fn issue(&mut self, now: u64) -> u32 {
        let mut issued = 0;
        // Scan only as far as the last dispatched slot: `remaining` counts
        // the candidates left ahead, so the tail of the window is skipped.
        let mut remaining = self.n_dispatched;
        for i in 0..self.rob.len() {
            if remaining == 0 || issued == self.cfg.issue_width {
                break;
            }
            if self.rob[i].stage != Stage::Dispatched {
                continue;
            }
            remaining -= 1;
            let inst = self.rob[i].inst;
            let ready = inst.srcs().iter().flatten().all(|s| self.src_ready(*s, now));
            if !ready {
                continue;
            }
            let latency = u64::from(self.cfg.latencies.latency(inst.op()));
            let done = now + latency;
            self.rob[i].stage = Stage::Executing { done };
            self.n_dispatched -= 1;
            self.n_busy += 1;
            self.next_done = self.next_done.min(done);
            issued += 1;
            #[cfg(feature = "probe")]
            self.trace(TraceEvent::Issue { cycle: now, inst: inst.id().get() });
        }
        issued
    }

    /// Presents address-ready loads to the memory system, oldest first.
    ///
    /// The load queue issues to the cache in age order: when a load is
    /// denied (port busy, bank conflict, MSHRs full), younger loads do not
    /// bypass it to the ports that cycle — the conflict replays from the
    /// oldest denied load, as in bank-conflict replay schemes.
    fn access_memory(&mut self, now: u64) -> Option<RejectReason> {
        let mut remaining = self.n_port_waiting;
        for i in 0..self.rob.len() {
            if remaining == 0 {
                break; // no address-ready loads left ahead
            }
            if self.rob[i].stage != Stage::WaitingPort {
                continue;
            }
            remaining -= 1;
            let addr = self.rob[i].inst.addr().expect("loads carry addresses");
            #[cfg(feature = "probe")]
            let inst = self.rob[i].inst.id().get();
            match self.mem.try_load(addr) {
                LoadResponse::LineBufferHit { complete_at } => {
                    self.pend(i, complete_at.max(now + 1), false);
                    #[cfg(feature = "probe")]
                    self.trace(TraceEvent::LineBufferHit { cycle: now, inst, addr });
                }
                LoadResponse::Hit { complete_at } => {
                    self.pend(i, complete_at.max(now + 1), false);
                    #[cfg(feature = "probe")]
                    {
                        let bank = self.bank_of(addr);
                        self.trace(TraceEvent::CacheHit { cycle: now, inst, addr, bank });
                    }
                }
                LoadResponse::Miss { complete_at } => {
                    self.pend(i, complete_at.max(now + 1), true);
                    #[cfg(feature = "probe")]
                    {
                        let bank = self.bank_of(addr);
                        self.trace(TraceEvent::CacheMiss { cycle: now, inst, addr, bank });
                    }
                }
                LoadResponse::Rejected(why) => {
                    #[cfg(feature = "probe")]
                    {
                        let bank = self.bank_of(addr);
                        let why = match why {
                            RejectReason::PortsBusy => "ports_busy",
                            RejectReason::BankConflict => "bank_conflict",
                            RejectReason::MshrFull => "mshr_full",
                        };
                        self.trace(TraceEvent::CacheReject { cycle: now, inst, addr, bank, why });
                    }
                    return Some(why);
                }
            }
        }
        None
    }

    /// Marks the waiting-port load in slot `i` as accepted by the memory
    /// system, maintaining the occupancy counters.
    fn pend(&mut self, i: usize, done: u64, miss: bool) {
        self.rob[i].stage = Stage::MemPending { done, miss };
        self.n_port_waiting -= 1;
        self.n_busy += 1;
        self.next_done = self.next_done.min(done);
    }

    /// The cache bank `addr` maps to (zero for unbanked port models).
    #[cfg(feature = "probe")]
    fn bank_of(&self, addr: u64) -> u32 {
        match self.mem.config().l1.ports {
            hbc_mem::PortModel::Banked(n) => {
                hbc_mem::addr::bank_of(addr, self.mem.config().l1.line_bytes, n)
            }
            _ => 0,
        }
    }

    /// Retires finished instructions in order; returns how many retired and
    /// whether commit stalled on a full store buffer.
    fn retire(&mut self, now: u64, stats: &mut RunStats) -> (u64, bool) {
        let mut retired = 0u64;
        for _ in 0..self.cfg.commit_width {
            let Some(slot) = self.rob.front() else { break };
            let Stage::Done { at } = slot.stage else { break };
            if at > now {
                break;
            }
            let inst = slot.inst;
            let dispatched_at = slot.dispatched_at;
            if inst.op().is_store() {
                let addr = inst.addr().expect("stores carry addresses");
                if !self.mem.commit_store(addr) {
                    saturating_count(&mut stats.store_stall_cycles, 1);
                    return (retired, true); // store buffer full: stall commit
                }
                saturating_count(&mut stats.stores, 1);
            }
            if inst.op().is_load() {
                saturating_count(&mut stats.loads, 1);
                saturating_count(&mut stats.load_latency_sum, at - dispatched_at);
            }
            if inst.op().is_control() && inst.mispredicted() {
                saturating_count(&mut stats.mispredicts, 1);
            }
            if inst.is_mem() {
                self.lsq_used -= 1;
            }
            self.rob.pop_front();
            self.head += 1;
            self.retired_total += 1;
            retired += 1;
            #[cfg(feature = "probe")]
            self.trace(TraceEvent::Commit { cycle: now, inst: inst.id().get() });
        }
        (retired, false)
    }

    fn fetch(&mut self, now: u64, stats: &mut RunStats) {
        if self.waiting_branch.is_some() || now < self.fetch_resume_at {
            saturating_count(&mut stats.fetch_stall_cycles, 1);
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() == self.cfg.rob_entries {
                saturating_count(&mut stats.rob_full_cycles, 1);
                break;
            }
            let inst = match self.staged.take() {
                Some(i) => i,
                None => self.stream.next().expect("instruction stream must be infinite"),
            };
            if self.retired_total == 0 && self.rob.is_empty() {
                // The stream may start mid-trace (e.g. after functional
                // cache warming consumed a prefix); anchor the window there.
                self.head = inst.id().get();
            }
            debug_assert_eq!(inst.id().get(), self.head + self.rob.len() as u64);
            if inst.is_mem() && self.lsq_used == self.cfg.lsq_entries {
                saturating_count(&mut stats.lsq_full_cycles, 1);
                self.staged = Some(inst);
                break;
            }
            if inst.is_mem() {
                self.lsq_used += 1;
            }
            let mispredict = inst.op().is_control() && inst.mispredicted();
            self.rob.push_back(Slot { inst, dispatched_at: now, stage: Stage::Dispatched });
            self.n_dispatched += 1;
            #[cfg(feature = "probe")]
            self.trace(TraceEvent::Fetch { cycle: now, inst: inst.id().get() });
            if mispredict {
                // Fetch down the wrong path is not modeled; the front end
                // simply produces nothing until the branch resolves.
                self.waiting_branch = Some(inst.id());
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_isa::{ExecMode, OpClass};
    use hbc_mem::{MemConfig, PortModel};

    fn mem(ports: PortModel, hit: u64) -> MemSystem {
        MemSystem::new(MemConfig::paper_sram(32 << 10, hit, ports)).unwrap()
    }

    /// An infinite stream built from a per-index closure.
    fn stream(f: impl Fn(u64) -> DynInst + 'static) -> impl Iterator<Item = DynInst> {
        (0u64..).map(f)
    }

    #[test]
    fn independent_alu_reaches_full_width() {
        let s = stream(|i| DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User));
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        core.run(1_000);
        let stats = core.run(10_000);
        assert!(stats.ipc() > 3.9, "independent ALU ops should saturate: {}", stats.ipc());
    }

    #[test]
    fn serial_chain_runs_at_one_ipc() {
        let s = stream(|i| {
            let inst = DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User);
            if i > 0 {
                inst.with_src(InstId::new(i - 1))
            } else {
                inst
            }
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        core.run(1_000);
        let stats = core.run(10_000);
        assert!(
            (stats.ipc() - 1.0).abs() < 0.05,
            "dependent single-cycle chain must run near 1 IPC: {}",
            stats.ipc()
        );
    }

    #[test]
    fn fp_divide_chain_is_slow() {
        let s = stream(|i| {
            let inst = DynInst::new(InstId::new(i), OpClass::FpDiv, ExecMode::User);
            if i > 0 {
                inst.with_src(InstId::new(i - 1))
            } else {
                inst
            }
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        let stats = core.run(500);
        // One divide per 19 cycles.
        assert!(stats.ipc() < 0.06, "ipc {}", stats.ipc());
    }

    #[test]
    fn mispredicted_branches_cost_fetch_cycles() {
        let every_8_mispredicts = |i: u64| {
            if i % 8 == 7 {
                DynInst::new(InstId::new(i), OpClass::Branch, ExecMode::User)
                    .with_branch(true, true)
            } else {
                DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User)
            }
        };
        let clean = |i: u64| {
            if i % 8 == 7 {
                DynInst::new(InstId::new(i), OpClass::Branch, ExecMode::User)
                    .with_branch(true, false)
            } else {
                DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User)
            }
        };
        let mut dirty_core = Core::new(
            CpuConfig::paper(),
            mem(PortModel::Duplicate, 1),
            stream(every_8_mispredicts),
        )
        .unwrap();
        let mut clean_core =
            Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), stream(clean)).unwrap();
        let dirty = dirty_core.run(10_000);
        let clean = clean_core.run(10_000);
        assert!(
            dirty.ipc() < 0.75 * clean.ipc(),
            "mispredicts must hurt: {} vs {}",
            dirty.ipc(),
            clean.ipc()
        );
        assert!(dirty.fetch_stall_cycles > 0);
        assert_eq!(dirty.mispredicts, 10_000 / 8);
    }

    #[test]
    fn loads_cost_address_calc_plus_hit_time() {
        // Serial chain of loads to one hot line: each depends on the
        // previous, so latency adds up visibly.
        let chained_loads = |i: u64| {
            let inst = DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User).with_addr(0x40);
            if i > 0 {
                inst.with_src(InstId::new(i - 1))
            } else {
                inst
            }
        };
        // hit = 1: issue->addr(1) + port + hit(1) => ~3 cycles/load once hot.
        let mut c1 =
            Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), stream(chained_loads))
                .unwrap();
        c1.run(200);
        let s1 = c1.run(2_000);
        // hit = 3: two extra cycles per load in the chain.
        let mut c3 =
            Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 3), stream(chained_loads))
                .unwrap();
        c3.run(200);
        let s3 = c3.run(2_000);
        assert!(
            s3.avg_load_latency() > s1.avg_load_latency() + 1.5,
            "pipelined hit time must show up in serial load chains: {} vs {}",
            s1.avg_load_latency(),
            s3.avg_load_latency()
        );
        assert!(s1.ipc() > s3.ipc());
    }

    #[test]
    fn independent_loads_hide_pipelined_hit_time() {
        // Independent loads across distinct hot lines: out-of-order issue
        // overlaps the extra hit cycles almost completely.
        let independent = |i: u64| {
            DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User).with_addr((i % 64) * 32)
        };
        let ipc_at = |hit| {
            let mut c =
                Core::new(CpuConfig::paper(), mem(PortModel::Ideal(2), hit), stream(independent))
                    .unwrap();
            c.run(2_000);
            c.run(10_000).ipc()
        };
        let one = ipc_at(1);
        let three = ipc_at(3);
        assert!(three > 0.85 * one, "OoO should hide pipelining: {one} vs {three}");
    }

    #[test]
    fn more_ports_help_load_heavy_streams() {
        let independent = |i: u64| {
            DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User).with_addr((i % 64) * 32)
        };
        let ipc_with = |ports| {
            let mut c = Core::new(CpuConfig::paper(), mem(ports, 1), stream(independent)).unwrap();
            c.run(2_000);
            c.run(10_000).ipc()
        };
        let one = ipc_with(PortModel::Ideal(1));
        let two = ipc_with(PortModel::Ideal(2));
        let four = ipc_with(PortModel::Ideal(4));
        assert!(two > 1.5 * one, "1->2 ports: {one} -> {two}");
        assert!(four > two, "2->4 ports: {two} -> {four}");
        assert!((one - 1.0).abs() < 0.1, "one port serializes pure loads: {one}");
    }

    #[test]
    fn stores_do_not_block_loads() {
        // Alternating stores and independent ALU ops: stores drain into
        // idle cycles and commit never wedges.
        let s = stream(|i| {
            if i % 4 == 0 {
                DynInst::new(InstId::new(i), OpClass::Store, ExecMode::User)
                    .with_addr((i % 256) * 32)
            } else {
                DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User)
            }
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        core.run(2_000);
        let stats = core.run(10_000);
        assert!(stats.ipc() > 2.0, "ipc {}", stats.ipc());
        assert_eq!(stats.stores, 2_500);
    }

    #[test]
    fn run_windows_are_additive() {
        let s = stream(|i| DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User));
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        let a = core.run(1_000);
        let b = core.run(1_000);
        assert_eq!(core.retired(), 2_000);
        assert_eq!(a.instructions, 1_000);
        assert_eq!(b.instructions, 1_000);
        assert!(core.now() >= a.cycles + b.cycles);
    }

    #[test]
    fn store_flood_stalls_commit_but_recovers() {
        // A pure store stream overwhelms the drain path of a duplicate
        // cache (stores need both copies idle): commit must stall on the
        // full buffer yet the machine keeps retiring.
        let s = stream(|i| {
            DynInst::new(InstId::new(i), OpClass::Store, ExecMode::User).with_addr((i % 128) * 32)
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        core.run(1_000);
        let stats = core.run(5_000);
        assert!(stats.store_stall_cycles > 0, "expected store-buffer backpressure");
        assert_eq!(stats.stores, 5_000);
        assert!(stats.ipc() > 0.3);
    }

    #[test]
    fn lsq_capacity_limits_inflight_memory_ops() {
        // All loads to one cold line: the first miss is slow, the LSQ (32)
        // plus ROB (64) bound how many can queue; lsq_full must register.
        let s = stream(|i| {
            DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User).with_addr((i % 2048) * 32)
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Ideal(1), 1), s).unwrap();
        let stats = core.run(5_000);
        assert!(
            stats.lsq_full_cycles > 0,
            "an all-load stream must hit the load/store queue limit"
        );
    }

    #[test]
    fn rob_full_registers_on_long_latency_head() {
        // A load miss at the window head with independent work behind it
        // fills the reorder buffer.
        let s = stream(|i| {
            if i % 200 == 0 {
                DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User)
                    .with_addr(0x40_0000 + i * 64)
            } else {
                DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User)
            }
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Ideal(2), 1), s).unwrap();
        let stats = core.run(10_000);
        assert!(stats.rob_full_cycles > 0);
    }

    #[test]
    fn accessors_report_progress() {
        let s = stream(|i| DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User));
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        assert_eq!(core.retired(), 0);
        core.run(100);
        assert_eq!(core.retired(), 100);
        assert!(core.now() >= 25, "four-wide machine needs at least 25 cycles");
        assert_eq!(core.mem().stats().stores, 0);
    }

    #[test]
    fn workload_driven_ipc_is_sane() {
        use hbc_workloads::{Benchmark, WorkloadGen};
        for b in [Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Database] {
            let gen = WorkloadGen::new(b, 7);
            let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Ideal(2), 1), gen).unwrap();
            core.run(5_000);
            let stats = core.run(20_000);
            assert!(stats.ipc() > 0.3 && stats.ipc() < 4.0, "{b}: implausible IPC {}", stats.ipc());
        }
    }

    #[test]
    fn event_horizon_skips_stall_spans_invisibly() {
        use hbc_workloads::{Benchmark, WorkloadGen};
        // A miss-heavy stream against the slow DRAM cache stalls for long,
        // provably idle spans; fast-forwarding them must leave every
        // statistic and the final clock untouched.
        let run = |skip: bool| {
            let gen = WorkloadGen::new(Benchmark::Compress, 13);
            let dram = MemSystem::new(MemConfig::paper_dram(8)).unwrap();
            let mut core = Core::new(CpuConfig::paper(), dram, gen).unwrap();
            core.set_event_horizon(skip);
            let stats = core.run(20_000);
            (stats, core.now(), core.skipped_cycles(), core.skip_spans())
        };
        let (ticked, ticked_now, ticked_skipped, _) = run(false);
        let (skipped, skipped_now, skipped_cycles, spans) = run(true);
        assert_eq!(ticked, skipped, "skipping changed the run statistics");
        assert_eq!(ticked_now, skipped_now, "skipping changed the clock");
        assert_eq!(ticked_skipped, 0);
        assert!(skipped_cycles > 0, "a DRAM-cache run must fast-forward");
        assert!(spans > 0 && skipped_cycles >= spans, "spans skip at least one cycle each");
    }
}

#[cfg(all(test, feature = "probe"))]
mod probe_tests {
    use super::*;
    use hbc_isa::{ExecMode, OpClass};
    use hbc_mem::{MemConfig, PortModel};
    use hbc_probe::StallCause;

    fn mem(ports: PortModel, hit: u64) -> MemSystem {
        MemSystem::new(MemConfig::paper_sram(32 << 10, hit, ports)).unwrap()
    }

    fn stream(f: impl Fn(u64) -> DynInst + 'static) -> impl Iterator<Item = DynInst> {
        (0u64..).map(f)
    }

    #[test]
    fn stall_attribution_sums_to_cycles() {
        use hbc_workloads::{Benchmark, WorkloadGen};
        let gen = WorkloadGen::new(Benchmark::Gcc, 11);
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Banked(8), 1), gen).unwrap();
        core.run(1_000);
        let stats = core.run(5_000);
        assert_eq!(stats.stall.total(), stats.cycles);
        assert!(stats.stall.get(StallCause::Commit) > 0);
        let widths: u64 = stats.issue_width.iter().sum();
        assert_eq!(widths, stats.cycles, "every cycle has exactly one issue width");
    }

    #[test]
    fn branch_recovery_charged_while_squelched() {
        let s = stream(|i| {
            if i % 8 == 7 {
                DynInst::new(InstId::new(i), OpClass::Branch, ExecMode::User)
                    .with_branch(true, true)
            } else {
                DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User)
            }
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        let stats = core.run(5_000);
        assert!(
            stats.stall.get(StallCause::BranchRecovery) > 0,
            "mispredict squelch must be attributed: {:?}",
            stats.stall
        );
    }

    #[test]
    fn pipelined_hits_charge_dcache_occupancy() {
        // A serial chain of hot loads on a 3-cycle pipelined cache: while
        // the head's hit sits in the array, nothing retires and the cycle
        // belongs to the data cache.
        let chained = |i: u64| {
            let inst = DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User).with_addr(0x40);
            if i > 0 {
                inst.with_src(InstId::new(i - 1))
            } else {
                inst
            }
        };
        let mut core =
            Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 3), stream(chained)).unwrap();
        core.run(500);
        let stats = core.run(2_000);
        assert!(
            stats.stall.get(StallCause::DcachePortConflict) > 0,
            "pipelined hit occupancy must be attributed: {:?}",
            stats.stall
        );
        assert_eq!(stats.stall.total(), stats.cycles);
    }

    #[test]
    fn cold_misses_charge_dram_busy() {
        // Striding loads across 2 MB dodge both caches often enough that
        // the head spends cycles waiting on fills.
        let s = stream(|i| {
            DynInst::new(InstId::new(i), OpClass::Load, ExecMode::User)
                .with_addr((i * 8192) % (256 << 20))
        });
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Ideal(2), 1), s).unwrap();
        let stats = core.run(2_000);
        assert!(stats.stall.get(StallCause::DramBusy) > 0, "{:?}", stats.stall);
    }

    #[test]
    fn tracer_is_bounded_and_dumpable() {
        let s = stream(|i| DynInst::new(InstId::new(i), OpClass::IntAlu, ExecMode::User));
        let mut core = Core::new(CpuConfig::paper(), mem(PortModel::Duplicate, 1), s).unwrap();
        assert_eq!(core.trace_jsonl(), None, "no tracer until enabled");
        core.enable_trace(64);
        core.run(1_000);
        let jsonl = core.trace_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 64, "ring buffer stays bounded");
        assert!(jsonl.lines().all(|l| l.starts_with("{\"ev\":\"")), "JSONL shape");
        assert!(jsonl.contains("\"ev\":\"commit\""));
    }

    #[test]
    fn trace_is_deterministic() {
        use hbc_workloads::{Benchmark, WorkloadGen};
        let run = || {
            let gen = WorkloadGen::new(Benchmark::Compress, 3);
            let mut core =
                Core::new(CpuConfig::paper(), mem(PortModel::Banked(8), 1), gen).unwrap();
            core.enable_trace(256);
            core.run(3_000);
            core.trace_jsonl().unwrap()
        };
        assert_eq!(run(), run());
    }
}
