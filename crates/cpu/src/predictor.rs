//! Hardware branch prediction.
//!
//! The paper's MXS models "hardware branch prediction" without detail; the
//! workload models carry per-branch outcome/misprediction flags calibrated
//! to group-level accuracies. This module provides an actual predictor —
//! a gshare two-bit scheme [after McFarling] — so the fixed-accuracy
//! assumption can itself be validated: run the predictor over a synthetic
//! outcome stream and compare its accuracy to the spec's
//! `branch_accuracy` (see `examples/branch_prediction.rs`).

/// A two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Counter {
    StrongNot,
    WeakNot,
    #[default]
    WeakTaken,
    StrongTaken,
}

impl Counter {
    fn predict(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    fn update(self, taken: bool) -> Counter {
        match (self, taken) {
            (Counter::StrongNot, true) => Counter::WeakNot,
            (Counter::WeakNot, true) => Counter::WeakTaken,
            (Counter::WeakTaken, true) => Counter::StrongTaken,
            (Counter::StrongTaken, true) => Counter::StrongTaken,
            (Counter::StrongNot, false) => Counter::StrongNot,
            (Counter::WeakNot, false) => Counter::StrongNot,
            (Counter::WeakTaken, false) => Counter::WeakNot,
            (Counter::StrongTaken, false) => Counter::WeakTaken,
        }
    }
}

/// A gshare branch predictor: a table of two-bit counters indexed by the
/// exclusive-or of the branch address and the global history register.
///
/// # Example
///
/// ```
/// use hbc_cpu::Gshare;
///
/// let mut p = Gshare::new(12); // 4096 counters
/// // A loop branch taken 9 of 10 times is learned quickly.
/// for i in 0..1000u64 {
///     let taken = i % 10 != 9;
///     p.predict_and_update(0x4000, taken);
/// }
/// assert!(p.accuracy() > 0.75);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter>,
    history: u64,
    index_bits: u32,
    predictions: u64,
    correct: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or greater than 24 (a 16M-entry
    /// table is beyond any 1997 budget).
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index bits must be in 1..=24");
        Gshare {
            table: vec![Counter::default(); 1 << index_bits],
            history: 0,
            index_bits,
            predictions: 0,
            correct: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `pc`, then updates the counter and global
    /// history with the actual outcome; returns whether the prediction was
    /// correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].predict();
        self.table[idx] = self.table[idx].update(taken);
        self.history = (self.history << 1) | u64::from(taken);
        self.predictions += 1;
        let correct = predicted == taken;
        if correct {
            self.correct += 1;
        }
        correct
    }

    /// Predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_saturates() {
        let mut p = Gshare::new(10);
        for _ in 0..100 {
            p.predict_and_update(0x100, true);
        }
        // After warm-up every prediction is correct.
        let warm = p.accuracy();
        assert!(warm > 0.9, "accuracy {warm}");
    }

    #[test]
    fn alternating_branch_with_history_is_learnable() {
        // T,N,T,N... is perfectly predictable once the history register
        // disambiguates the two contexts.
        let mut p = Gshare::new(12);
        for i in 0..2000u64 {
            p.predict_and_update(0x200, i % 2 == 0);
        }
        assert!(p.accuracy() > 0.8, "accuracy {}", p.accuracy());
    }

    #[test]
    fn random_outcomes_hover_near_half() {
        use hbc_workloads::Rng;
        let mut rng = Rng::new(3);
        let mut p = Gshare::new(12);
        for _ in 0..20_000 {
            p.predict_and_update(0x300, rng.chance(0.5));
        }
        let acc = p.accuracy();
        assert!((0.4..0.6).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn biased_random_tracks_the_bias() {
        use hbc_workloads::Rng;
        let mut rng = Rng::new(5);
        let mut p = Gshare::new(12);
        for _ in 0..50_000 {
            p.predict_and_update(0x400, rng.chance(0.85));
        }
        // A 2-bit counter on an 85%-taken branch predicts taken nearly
        // always: accuracy approaches the bias.
        let acc = p.accuracy();
        assert!(acc > 0.78, "accuracy {acc}");
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias_much() {
        let mut p = Gshare::new(14);
        for i in 0..10_000u64 {
            p.predict_and_update(0x1000 + (i % 16) * 4, true);
            p.predict_and_update(0x8000 + (i % 16) * 4, false);
        }
        assert!(p.accuracy() > 0.85, "accuracy {}", p.accuracy());
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_rejected() {
        let _ = Gshare::new(0);
    }
}
