//! Processor statistics.

/// Statistics for one measured simulation window.
///
/// Produced by [`crate::Core::run`]; instructions retired during the window
/// divided by the cycles it took give the paper's IPC metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions retired in the window.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Mispredicted control transfers retired.
    pub mispredicts: u64,
    /// Cycles in which nothing could be dispatched because the reorder
    /// buffer was full.
    pub rob_full_cycles: u64,
    /// Cycles in which a memory operation could not dispatch because the
    /// load/store queue was full.
    pub lsq_full_cycles: u64,
    /// Cycles fetch was squelched waiting for a mispredicted branch.
    pub fetch_stall_cycles: u64,
    /// Cycles commit was blocked by a full store buffer.
    pub store_stall_cycles: u64,
    /// Sum over retired loads of (completion - dispatch) cycles.
    pub load_latency_sum: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean latency from dispatch to data return over retired loads.
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let s = RunStats { instructions: 200, cycles: 100, ..RunStats::default() };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(RunStats::default().ipc(), 0.0);
    }

    #[test]
    fn load_latency_math() {
        let s = RunStats { loads: 4, load_latency_sum: 20, ..RunStats::default() };
        assert!((s.avg_load_latency() - 5.0).abs() < 1e-12);
        assert_eq!(RunStats::default().avg_load_latency(), 0.0);
    }
}
