//! Processor statistics.

use hbc_probe::{ProbeExport, ProbeRegistry, StallBreakdown};

/// Statistics for one measured simulation window.
///
/// Produced by [`crate::Core::run`]; instructions retired during the window
/// divided by the cycles it took give the paper's IPC metric.
///
/// The per-cycle fields ([`RunStats::stall`], [`RunStats::issue_width`])
/// are populated only when the `probe` feature is enabled; without it they
/// stay zeroed and the core pays no per-cycle accounting cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions retired in the window.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Mispredicted control transfers retired.
    pub mispredicts: u64,
    /// Cycles in which nothing could be dispatched because the reorder
    /// buffer was full.
    pub rob_full_cycles: u64,
    /// Cycles in which a memory operation could not dispatch because the
    /// load/store queue was full.
    pub lsq_full_cycles: u64,
    /// Cycles fetch was squelched waiting for a mispredicted branch.
    pub fetch_stall_cycles: u64,
    /// Cycles commit was blocked by a full store buffer.
    pub store_stall_cycles: u64,
    /// Sum over retired loads of (completion - dispatch) cycles.
    pub load_latency_sum: u64,
    /// Every cycle of the window charged to exactly one stall cause
    /// (`probe` builds only; sums to [`RunStats::cycles`] when populated).
    pub stall: StallBreakdown,
    /// `issue_width[w]` counts cycles that issued exactly `w` instructions
    /// (`probe` builds only; the last slot aggregates anything wider).
    pub issue_width: [u64; 8],
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean latency from dispatch to data return over retired loads.
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads as f64
        }
    }
}

impl ProbeExport for RunStats {
    fn export_probes(&self, reg: &mut ProbeRegistry) {
        reg.counter("cpu.run.cycles").set(self.cycles);
        reg.counter("cpu.retire.instructions").set(self.instructions);
        reg.counter("cpu.retire.loads").set(self.loads);
        reg.counter("cpu.retire.stores").set(self.stores);
        reg.counter("cpu.retire.mispredicts").set(self.mispredicts);
        reg.counter("cpu.retire.load_latency_sum").set(self.load_latency_sum);
        reg.counter("cpu.fetch.rob_full_cycles").set(self.rob_full_cycles);
        reg.counter("cpu.fetch.lsq_full_cycles").set(self.lsq_full_cycles);
        reg.counter("cpu.fetch.squelch_cycles").set(self.fetch_stall_cycles);
        reg.counter("cpu.commit.store_stall_cycles").set(self.store_stall_cycles);
        self.stall.export(reg);
        let h = reg.histogram("cpu.issue.width_used");
        for (w, &n) in self.issue_width.iter().enumerate() {
            h.record_n(w as u64, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_probe::StallCause;

    #[test]
    fn ipc_math() {
        let s = RunStats { instructions: 200, cycles: 100, ..RunStats::default() };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(RunStats::default().ipc(), 0.0);
    }

    #[test]
    fn load_latency_math() {
        let s = RunStats { loads: 4, load_latency_sum: 20, ..RunStats::default() };
        assert!((s.avg_load_latency() - 5.0).abs() < 1e-12);
        assert_eq!(RunStats::default().avg_load_latency(), 0.0);
    }

    #[test]
    fn export_covers_fields_stalls_and_issue_widths() {
        let mut s = RunStats { cycles: 10, instructions: 8, ..RunStats::default() };
        for _ in 0..10 {
            s.stall.charge(StallCause::Commit);
        }
        s.issue_width[0] = 2;
        s.issue_width[4] = 8;
        let mut reg = ProbeRegistry::new();
        s.export_probes(&mut reg);
        assert_eq!(reg.get("cpu.run.cycles"), Some(10));
        assert_eq!(reg.get("cpu.stall.commit"), Some(10));
        assert_eq!(reg.get("cpu.stall.dram_busy"), Some(0));
        let h = reg.get_histogram("cpu.issue.width_used").unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 32);
        assert!((h.mean() - 3.2).abs() < 1e-12);
    }
}
