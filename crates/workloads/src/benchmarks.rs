//! The nine benchmarks of the study (paper Table 1).

use std::fmt;
use std::str::FromStr;

use crate::regions::PatternSpec;
use crate::spec::{BenchmarkSpec, Group, Table2Row};

/// The nine benchmarks: three SPEC95 integer, three SPEC95 floating point,
/// and three SimOS multiprogramming workloads.
///
/// # Example
///
/// ```
/// use hbc_workloads::{Benchmark, Group};
///
/// assert_eq!(Benchmark::ALL.len(), 9);
/// assert_eq!(Benchmark::Tomcatv.group(), Group::SpecFp95);
/// assert_eq!("database".parse::<Benchmark>()?, Benchmark::Database);
/// # Ok::<(), hbc_workloads::UnknownBenchmarkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPEC95 gcc: builds SPARC code.
    Gcc,
    /// SPEC95 li: LISP interpreter.
    Li,
    /// SPEC95 compress: compresses and decompresses a file in memory.
    Compress,
    /// SPEC95 tomcatv: mesh-generation program.
    Tomcatv,
    /// SPEC95 su2cor: quantum physics, Monte Carlo simulation.
    Su2cor,
    /// SPEC95 apsi: temperature, wind, velocity and pollutant distribution.
    Apsi,
    /// SimOS pmake: two parallel compilation processes over 17 files.
    Pmake,
    /// SimOS database: Sybase SQL server running TPC-B-style transactions.
    Database,
    /// SimOS VCS: Chronologic VCS simulating the Stanford FLASH MAGIC chip.
    Vcs,
}

impl Benchmark {
    /// All nine benchmarks in the paper's Table 1 order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Gcc,
        Benchmark::Li,
        Benchmark::Compress,
        Benchmark::Tomcatv,
        Benchmark::Su2cor,
        Benchmark::Apsi,
        Benchmark::Pmake,
        Benchmark::Database,
        Benchmark::Vcs,
    ];

    /// The three representatives the paper plots: gcc (integer), tomcatv
    /// (floating point), and database (multiprogramming).
    pub const REPRESENTATIVES: [Benchmark; 3] =
        [Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Database];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gcc => "gcc",
            Benchmark::Li => "li",
            Benchmark::Compress => "compress",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Su2cor => "su2cor",
            Benchmark::Apsi => "apsi",
            Benchmark::Pmake => "pmake",
            Benchmark::Database => "database",
            Benchmark::Vcs => "VCS",
        }
    }

    /// Benchmark group.
    pub fn group(self) -> Group {
        match self {
            Benchmark::Gcc | Benchmark::Li | Benchmark::Compress => Group::SpecInt95,
            Benchmark::Tomcatv | Benchmark::Su2cor | Benchmark::Apsi => Group::SpecFp95,
            Benchmark::Pmake | Benchmark::Database | Benchmark::Vcs => Group::Multiprogramming,
        }
    }

    /// The full synthetic-model specification for this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            Benchmark::Gcc => gcc(),
            Benchmark::Li => li(),
            Benchmark::Compress => compress(),
            Benchmark::Tomcatv => tomcatv(),
            Benchmark::Su2cor => su2cor(),
            Benchmark::Apsi => apsi(),
            Benchmark::Pmake => pmake(),
            Benchmark::Database => database(),
            Benchmark::Vcs => vcs(),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmarkError {
    given: String,
}

impl fmt::Display for UnknownBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}` (expected one of the nine Table 1 names)", self.given)
    }
}

impl std::error::Error for UnknownBenchmarkError {}

impl FromStr for Benchmark {
    type Err = UnknownBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownBenchmarkError { given: s.to_owned() })
    }
}

const KB: u64 = 1024;

fn default_kernel_mem() -> Vec<(f64, PatternSpec)> {
    vec![
        (0.40, PatternSpec::Stack { footprint: 6 * KB }),
        (0.40, PatternSpec::Random { footprint: 32 * KB, reuse: 0.64 }),
        (0.20, PatternSpec::Random { footprint: 384 * KB, reuse: 0.50 }),
    ]
}

fn gcc() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gcc",
        description: "Builds SPARC code",
        group: Group::SpecInt95,
        table2: Table2Row {
            kernel_pct: 10.0,
            user_pct: 90.0,
            idle_pct: 0.0,
            load_pct: 28.1,
            store_pct: 12.2,
        },
        branch_frac: 0.16,
        branch_accuracy: 0.94,
        taken_frac: 0.60,
        fp_frac: 0.01,
        int_long_frac: 0.03,
        fp_long_frac: 0.05,
        dep_mean: 6.0,
        load_use_prob: 0.40,
        two_src_prob: 0.40,
        user_mem: vec![
            (0.55, PatternSpec::Stack { footprint: 3 * KB }),
            (0.38, PatternSpec::Random { footprint: 6 * KB, reuse: 0.80 }),
            (0.05, PatternSpec::Random { footprint: 64 * KB, reuse: 0.70 }),
            (0.02, PatternSpec::Random { footprint: 512 * KB, reuse: 0.60 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn li() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "li",
        description: "LISP interpreter",
        group: Group::SpecInt95,
        table2: Table2Row {
            kernel_pct: 0.2,
            user_pct: 99.8,
            idle_pct: 0.0,
            load_pct: 33.2,
            store_pct: 13.0,
        },
        branch_frac: 0.17,
        branch_accuracy: 0.95,
        taken_frac: 0.62,
        fp_frac: 0.0,
        int_long_frac: 0.01,
        fp_long_frac: 0.0,
        dep_mean: 5.0,
        load_use_prob: 0.42,
        two_src_prob: 0.35,
        user_mem: vec![
            (0.50, PatternSpec::Stack { footprint: 3 * KB }),
            (0.08, PatternSpec::Chase { footprint: 6 * KB }),
            (0.38, PatternSpec::Random { footprint: 6 * KB, reuse: 0.75 }),
            (0.04, PatternSpec::Random { footprint: 128 * KB, reuse: 0.62 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn compress() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "compress",
        description: "Compresses and decompresses file in memory",
        group: Group::SpecInt95,
        table2: Table2Row {
            kernel_pct: 8.4,
            user_pct: 91.6,
            idle_pct: 0.0,
            load_pct: 34.5,
            store_pct: 8.0,
        },
        branch_frac: 0.14,
        branch_accuracy: 0.93,
        taken_frac: 0.58,
        fp_frac: 0.0,
        int_long_frac: 0.02,
        fp_long_frac: 0.0,
        dep_mean: 5.5,
        load_use_prob: 0.38,
        two_src_prob: 0.40,
        user_mem: vec![
            (0.42, PatternSpec::Stack { footprint: 3 * KB }),
            // Hash-table probes over the compression dictionary.
            (0.48, PatternSpec::Random { footprint: 24 * KB, reuse: 0.80 }),
            // Sequential input/output streaming (never fits on-chip).
            (0.04, PatternSpec::Strided { footprint: 8192 * KB, stride: 8, streams: 2 }),
            (0.06, PatternSpec::Random { footprint: 192 * KB, reuse: 0.70 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn tomcatv() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "tomcatv",
        description: "Mesh-generation program",
        group: Group::SpecFp95,
        table2: Table2Row {
            kernel_pct: 0.4,
            user_pct: 99.6,
            idle_pct: 0.0,
            load_pct: 26.9,
            store_pct: 8.5,
        },
        branch_frac: 0.03,
        branch_accuracy: 0.99,
        taken_frac: 0.85,
        fp_frac: 0.78,
        int_long_frac: 0.01,
        fp_long_frac: 0.03,
        dep_mean: 16.0,
        load_use_prob: 0.12,
        two_src_prob: 0.55,
        user_mem: vec![
            // Seven mesh arrays swept each iteration. The combined arrays
            // exceed every on-chip size including the 4 MB DRAM cache (the
            // paper finds tomcatv's IPC flat from 32 KB to 1 MB, and the
            // 512-byte row cache costs tomcatv 17% against 32-byte lines);
            // the column sweeps carry a 2 KB stride that long rows cannot
            // prefetch.
            (0.065, PatternSpec::Strided { footprint: 6144 * KB, stride: 8, streams: 4 }),
            (0.035, PatternSpec::Strided { footprint: 6144 * KB, stride: 2048, streams: 3 }),
            (0.34, PatternSpec::Stack { footprint: 2 * KB }),
            (0.52, PatternSpec::Random { footprint: 6 * KB, reuse: 0.80 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn su2cor() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "su2cor",
        description: "Quantum physics; Monte Carlo simulation",
        group: Group::SpecFp95,
        table2: Table2Row {
            kernel_pct: 0.5,
            user_pct: 99.5,
            idle_pct: 0.0,
            load_pct: 28.0,
            store_pct: 6.3,
        },
        branch_frac: 0.04,
        branch_accuracy: 0.985,
        taken_frac: 0.82,
        fp_frac: 0.72,
        int_long_frac: 0.01,
        fp_long_frac: 0.05,
        dep_mean: 14.0,
        load_use_prob: 0.12,
        two_src_prob: 0.55,
        user_mem: vec![
            // Lattice arrays that fit once the cache reaches 128 KB: the
            // "radical drop at a specific size" of the SPEC95 fp codes.
            (0.25, PatternSpec::Strided { footprint: 96 * KB, stride: 8, streams: 3 }),
            (0.03, PatternSpec::Strided { footprint: 96 * KB, stride: 1024, streams: 1 }),
            (0.26, PatternSpec::Stack { footprint: 2 * KB }),
            (0.46, PatternSpec::Random { footprint: 8 * KB, reuse: 0.76 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn apsi() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "apsi",
        description: "Temperature, wind, velocity and pollutant distribution",
        group: Group::SpecFp95,
        table2: Table2Row {
            kernel_pct: 2.2,
            user_pct: 97.8,
            idle_pct: 0.0,
            load_pct: 40.0,
            store_pct: 11.7,
        },
        branch_frac: 0.05,
        branch_accuracy: 0.98,
        taken_frac: 0.80,
        fp_frac: 0.70,
        int_long_frac: 0.01,
        fp_long_frac: 0.06,
        dep_mean: 12.0,
        load_use_prob: 0.15,
        two_src_prob: 0.50,
        user_mem: vec![
            // Field arrays that fit at 512 KB; half the sweeps are
            // column-order (1 KB stride).
            (0.19, PatternSpec::Strided { footprint: 448 * KB, stride: 8, streams: 4 }),
            (0.05, PatternSpec::Strided { footprint: 448 * KB, stride: 1024, streams: 2 }),
            (0.22, PatternSpec::Stack { footprint: 3 * KB }),
            (0.48, PatternSpec::Random { footprint: 8 * KB, reuse: 0.78 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

fn pmake() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "pmake",
        description: "Two compilation processes for 17 files",
        group: Group::Multiprogramming,
        table2: Table2Row {
            kernel_pct: 8.9,
            user_pct: 86.0,
            idle_pct: 5.1,
            load_pct: 25.8,
            store_pct: 11.9,
        },
        branch_frac: 0.16,
        branch_accuracy: 0.93,
        taken_frac: 0.60,
        fp_frac: 0.01,
        int_long_frac: 0.02,
        fp_long_frac: 0.0,
        dep_mean: 5.5,
        load_use_prob: 0.40,
        two_src_prob: 0.40,
        user_mem: vec![
            (0.46, PatternSpec::Stack { footprint: 4 * KB }),
            (0.34, PatternSpec::Random { footprint: 8 * KB, reuse: 0.75 }),
            (0.15, PatternSpec::Random { footprint: 96 * KB, reuse: 0.68 }),
            (0.05, PatternSpec::Random { footprint: 640 * KB, reuse: 0.60 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 2,
        ctx_interval: 30_000,
    }
}

fn database() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "database",
        description: "Sybase SQL server, TPC-B-style transaction processing",
        group: Group::Multiprogramming,
        table2: Table2Row {
            kernel_pct: 18.4,
            user_pct: 17.0,
            idle_pct: 64.6,
            load_pct: 24.8,
            store_pct: 13.6,
        },
        branch_frac: 0.15,
        branch_accuracy: 0.92,
        taken_frac: 0.58,
        fp_frac: 0.0,
        int_long_frac: 0.02,
        fp_long_frac: 0.0,
        dep_mean: 5.0,
        load_use_prob: 0.40,
        two_src_prob: 0.40,
        user_mem: vec![
            (0.36, PatternSpec::Stack { footprint: 4 * KB }),
            (0.03, PatternSpec::Chase { footprint: 64 * KB }),
            (0.30, PatternSpec::Random { footprint: 12 * KB, reuse: 0.76 }),
            (0.21, PatternSpec::Random { footprint: 128 * KB, reuse: 0.70 }),
            (0.10, PatternSpec::Random { footprint: 1536 * KB, reuse: 0.70 }),
        ],
        kernel_mem: vec![
            (0.46, PatternSpec::Stack { footprint: 6 * KB }),
            (0.38, PatternSpec::Random { footprint: 48 * KB, reuse: 0.74 }),
            (0.16, PatternSpec::Random { footprint: 512 * KB, reuse: 0.68 }),
        ],
        processes: 2,
        ctx_interval: 20_000,
    }
}

fn vcs() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "VCS",
        description: "Chronologic VCS simulating the Stanford FLASH MAGIC chip",
        group: Group::Multiprogramming,
        table2: Table2Row {
            kernel_pct: 9.9,
            user_pct: 90.1,
            idle_pct: 0.0,
            load_pct: 25.7,
            store_pct: 15.1,
        },
        branch_frac: 0.14,
        branch_accuracy: 0.94,
        taken_frac: 0.60,
        fp_frac: 0.02,
        int_long_frac: 0.02,
        fp_long_frac: 0.05,
        dep_mean: 5.5,
        load_use_prob: 0.38,
        two_src_prob: 0.42,
        user_mem: vec![
            (0.42, PatternSpec::Stack { footprint: 4 * KB }),
            (0.38, PatternSpec::Random { footprint: 16 * KB, reuse: 0.74 }),
            (0.06, PatternSpec::Strided { footprint: 256 * KB, stride: 16, streams: 3 }),
            (0.14, PatternSpec::Random { footprint: 448 * KB, reuse: 0.64 }),
        ],
        kernel_mem: default_kernel_mem(),
        processes: 1,
        ctx_interval: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for b in Benchmark::ALL {
            b.spec().validate().unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn specs_carry_table2_values() {
        let t = Benchmark::Database.spec().table2;
        assert_eq!(t.kernel_pct, 18.4);
        assert_eq!(t.idle_pct, 64.6);
        assert_eq!(t.load_pct, 24.8);
        let g = Benchmark::Gcc.spec().table2;
        assert_eq!(g.load_pct, 28.1);
        assert_eq!(g.store_pct, 12.2);
    }

    #[test]
    fn groups_partition_three_by_three() {
        for g in [Group::SpecInt95, Group::SpecFp95, Group::Multiprogramming] {
            assert_eq!(Benchmark::ALL.iter().filter(|b| b.group() == g).count(), 3);
        }
    }

    #[test]
    fn fp_benchmarks_have_more_ilp_than_int() {
        let fp_min = Benchmark::ALL
            .iter()
            .filter(|b| b.group() == Group::SpecFp95)
            .map(|b| b.spec().dep_mean)
            .fold(f64::INFINITY, f64::min);
        let int_max = Benchmark::ALL
            .iter()
            .filter(|b| b.group() != Group::SpecFp95)
            .map(|b| b.spec().dep_mean)
            .fold(0.0, f64::max);
        assert!(fp_min > int_max, "fp dep_mean ({fp_min}) must exceed int ({int_max})");
    }

    #[test]
    fn multiprogramming_uses_multiple_processes() {
        assert!(Benchmark::Pmake.spec().processes > 1);
        assert!(Benchmark::Database.spec().processes > 1);
        assert_eq!(Benchmark::Gcc.spec().processes, 1);
    }

    #[test]
    fn parse_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert_eq!("TOMCATV".parse::<Benchmark>().unwrap(), Benchmark::Tomcatv);
        let err = "mcf".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("mcf"));
    }

    #[test]
    fn representatives_cover_each_group() {
        let groups: Vec<Group> = Benchmark::REPRESENTATIVES.iter().map(|b| b.group()).collect();
        assert_eq!(groups, vec![Group::SpecInt95, Group::SpecFp95, Group::Multiprogramming]);
    }

    #[test]
    fn working_sets_order_gcc_below_database() {
        // The representative integer benchmark has a much smaller working
        // set than the representative multiprogramming benchmark (paper
        // Figure 3 discussion). The aggregate footprint counts every
        // process's copy of the user patterns plus the kernel regions.
        let total = |b: Benchmark| {
            let spec = b.spec();
            let user: u64 = spec.user_mem.iter().map(|(_, p)| p.footprint()).sum();
            let kernel: u64 = spec.kernel_mem.iter().map(|(_, p)| p.footprint()).sum();
            user * u64::from(spec.processes) + kernel
        };
        assert!(
            total(Benchmark::Database) > 2 * total(Benchmark::Gcc),
            "database WS must dwarf gcc: {} vs {}",
            total(Benchmark::Database),
            total(Benchmark::Gcc)
        );
    }
}
