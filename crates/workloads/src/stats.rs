//! Instruction-stream characterization (paper Table 2 reproduction).

use std::collections::BTreeSet;

use hbc_isa::{ExecMode, OpClass};
use hbc_probe::{saturating_count, ProbeExport, ProbeRegistry};

use crate::WorkloadGen;

/// Aggregate statistics of a generated instruction stream.
///
/// # Example
///
/// ```
/// use hbc_workloads::{Benchmark, StreamStats, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
/// let stats = StreamStats::characterize(&mut gen, 50_000);
/// assert!((stats.load_pct() - 28.1).abs() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    instructions: u64,
    loads: u64,
    stores: u64,
    branches: u64,
    jumps: u64,
    mispredicted: u64,
    fp_ops: u64,
    kernel: u64,
    distinct_lines: u64,
}

impl StreamStats {
    /// Consumes `n` instructions from `gen` and tallies them.
    pub fn characterize(gen: &mut WorkloadGen, n: u64) -> Self {
        let mut s = StreamStats {
            instructions: n,
            loads: 0,
            stores: 0,
            branches: 0,
            jumps: 0,
            mispredicted: 0,
            fp_ops: 0,
            kernel: 0,
            distinct_lines: 0,
        };
        let mut lines: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..n {
            let i = gen.next_inst();
            match i.op() {
                OpClass::Load => saturating_count(&mut s.loads, 1),
                OpClass::Store => saturating_count(&mut s.stores, 1),
                OpClass::Branch => saturating_count(&mut s.branches, 1),
                OpClass::Jump => saturating_count(&mut s.jumps, 1),
                op if op.is_fp() => saturating_count(&mut s.fp_ops, 1),
                _ => {}
            }
            if i.op().is_control() && i.mispredicted() {
                saturating_count(&mut s.mispredicted, 1);
            }
            if i.mode() == ExecMode::Kernel {
                saturating_count(&mut s.kernel, 1);
            }
            if let Some(a) = i.addr() {
                lines.insert(a / 32);
            }
        }
        s.distinct_lines = lines.len() as u64;
        s
    }

    /// Number of instructions characterized.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Percentage of loads in the stream.
    pub fn load_pct(&self) -> f64 {
        100.0 * self.loads as f64 / self.instructions as f64
    }

    /// Percentage of stores in the stream.
    pub fn store_pct(&self) -> f64 {
        100.0 * self.stores as f64 / self.instructions as f64
    }

    /// Percentage of control transfers (branches plus jumps).
    pub fn control_pct(&self) -> f64 {
        100.0 * (self.branches + self.jumps) as f64 / self.instructions as f64
    }

    /// Percentage of floating-point operations.
    pub fn fp_pct(&self) -> f64 {
        100.0 * self.fp_ops as f64 / self.instructions as f64
    }

    /// Percentage of instructions executed in kernel mode.
    pub fn kernel_pct(&self) -> f64 {
        100.0 * self.kernel as f64 / self.instructions as f64
    }

    /// Fraction of control transfers the front end mispredicts.
    pub fn mispredict_rate(&self) -> f64 {
        let c = self.branches + self.jumps;
        if c == 0 {
            0.0
        } else {
            self.mispredicted as f64 / c as f64
        }
    }

    /// Number of distinct 32-byte lines touched — a working-set proxy.
    pub fn distinct_lines(&self) -> u64 {
        self.distinct_lines
    }

    /// Touched bytes (distinct lines times the 32-byte line size).
    pub fn touched_bytes(&self) -> u64 {
        self.distinct_lines * 32
    }
}

impl ProbeExport for StreamStats {
    fn export_probes(&self, reg: &mut ProbeRegistry) {
        reg.counter("workload.mix.instructions").set(self.instructions);
        reg.counter("workload.mix.loads").set(self.loads);
        reg.counter("workload.mix.stores").set(self.stores);
        reg.counter("workload.mix.branches").set(self.branches);
        reg.counter("workload.mix.jumps").set(self.jumps);
        reg.counter("workload.mix.mispredicted").set(self.mispredicted);
        reg.counter("workload.mix.fp_ops").set(self.fp_ops);
        reg.counter("workload.mix.kernel").set(self.kernel);
        reg.counter("workload.ws.distinct_lines").set(self.distinct_lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn table2_mix_reproduced_for_all_benchmarks() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            let mut gen = WorkloadGen::new(b, 42);
            let s = StreamStats::characterize(&mut gen, 80_000);
            assert!(
                (s.load_pct() - spec.table2.load_pct).abs() < 1.5,
                "{b}: loads {:.1} vs {:.1}",
                s.load_pct(),
                spec.table2.load_pct
            );
            assert!(
                (s.store_pct() - spec.table2.store_pct).abs() < 1.0,
                "{b}: stores {:.1} vs {:.1}",
                s.store_pct(),
                spec.table2.store_pct
            );
        }
    }

    #[test]
    fn working_set_ordering_matches_groups() {
        let touched = |b: Benchmark| {
            let mut gen = WorkloadGen::new(b, 7);
            StreamStats::characterize(&mut gen, 200_000).touched_bytes()
        };
        let gcc = touched(Benchmark::Gcc);
        let database = touched(Benchmark::Database);
        assert!(database > 2 * gcc, "database WS ({database}) should dwarf gcc ({gcc})");
    }

    #[test]
    fn fp_pct_separates_groups() {
        let fp = |b: Benchmark| {
            let mut gen = WorkloadGen::new(b, 3);
            StreamStats::characterize(&mut gen, 30_000).fp_pct()
        };
        assert!(fp(Benchmark::Tomcatv) > 25.0);
        assert!(fp(Benchmark::Gcc) < 2.0);
    }

    #[test]
    fn control_pct_counts_branches_and_jumps() {
        let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
        let s = StreamStats::characterize(&mut gen, 40_000);
        // gcc's spec requests 16% control transfers.
        assert!((s.control_pct() - 16.0).abs() < 1.5, "control {}", s.control_pct());
        assert!(s.touched_bytes() > 0);
        assert_eq!(s.instructions(), 40_000);
    }

    #[test]
    fn export_covers_the_mix() {
        let mut gen = WorkloadGen::new(Benchmark::Gcc, 1);
        let s = StreamStats::characterize(&mut gen, 10_000);
        let mut reg = ProbeRegistry::new();
        s.export_probes(&mut reg);
        assert_eq!(reg.get("workload.mix.instructions"), Some(10_000));
        assert_eq!(reg.get("workload.ws.distinct_lines"), Some(s.distinct_lines()));
        assert_eq!(reg.len(), 9);
    }

    #[test]
    fn mispredict_rate_in_range() {
        let mut gen = WorkloadGen::new(Benchmark::Compress, 5);
        let s = StreamStats::characterize(&mut gen, 100_000);
        let r = s.mispredict_rate();
        assert!(r > 0.03 && r < 0.15, "compress mispredict rate {r}");
    }
}
