//! Memory reference pattern models.
//!
//! Each benchmark's data references are modeled as a weighted mixture of
//! *patterns*, each with its own footprint and locality structure:
//!
//! * [`PatternSpec::Strided`] — unit-or-small-stride sweeps over arrays,
//!   the dominant pattern of the floating-point codes (tomcatv, su2cor,
//!   apsi). Misses are compulsory per line until the arrays fit in the
//!   cache, producing the "radical drops in miss rates at specific cache
//!   sizes" the paper observes for SPEC95 fp (Section 4).
//! * [`PatternSpec::Random`] — uniform references within a working set,
//!   modeling hashed/irregular structures; the miss rate falls gradually
//!   as capacity approaches the footprint, like the integer codes.
//! * [`PatternSpec::Stack`] — a random walk with strong spatial and
//!   temporal locality, modeling activation records and hot scalars; it
//!   provides the short-reuse references that a line buffer captures.
//! * [`PatternSpec::Chase`] — dependent pointer chasing: each address is a
//!   uniform pick, but the *load that uses it depends on the previous chase
//!   load*, serializing memory-level parallelism (LISP cells in li, B-tree
//!   descent in database).

use crate::Rng;

/// Window of address space owned by one pattern instance (32 MB).
const REGION_WINDOW_PAGES: u64 = 8192;
/// Page size used for scattering (4 KB, as on the paper's IRIX machine).
const PAGE_BYTES: u64 = 4096;

/// Translates a logical offset within a region to a page-scattered address.
///
/// Real operating systems place the pages of a data structure at
/// effectively arbitrary physical frames, so a region's cache sets are
/// loaded uniformly rather than piling every region onto the low sets.
/// The translation permutes 4 KB pages inside the region's 32 MB window
/// with an odd multiplier (a bijection modulo a power of two), preserving
/// locality within each page.
fn scatter(base: u64, offset: u64) -> u64 {
    let page = offset / PAGE_BYTES;
    let lo = offset % PAGE_BYTES;
    let frame = page.wrapping_mul(0x9E37_79B9_7F4A_7C15) % REGION_WINDOW_PAGES;
    base + frame * PAGE_BYTES + lo
}

/// Hot-block granularity of irregular structures (one 64-byte record).
const HOT_BLOCK: u64 = 64;

/// Spacing between hot blocks.
///
/// Heap records are not packed: a hot 64-byte record sits among cold
/// neighbours, so only a fraction of any *long* cache line is useful.
/// Spreading each hot block across `DISPERSAL` bytes (20% occupancy)
/// leaves 32- and 64-byte-line caches unaffected while making the 512-byte
/// DRAM row-buffer cache of Section 2.4 pay the conflict/fragmentation
/// penalty the paper observes for its long lines.
const DISPERSAL: u64 = 320;

/// The dispersed span of an irregular region: `footprint` grows by the
/// `DISPERSAL / HOT_BLOCK` occupancy ratio (5x). Computed once per
/// [`PatternState`] — not per reference — and shared with the tests.
fn dispersal_span(footprint: u64) -> u64 {
    (footprint * (DISPERSAL / HOT_BLOCK)).max(DISPERSAL)
}

/// Maps a dense logical offset of an irregular region to its dispersed
/// offset (bijective over the region's hot blocks), given the region's
/// precomputed [`dispersal_span`].
fn disperse(offset: u64, span: u64) -> u64 {
    let block = offset / HOT_BLOCK;
    let within = offset % HOT_BLOCK;
    // Equivalent to `% span` (offsets stay below the footprint, so the
    // product barely exceeds the span) without the per-reference hardware
    // divide; the loop runs at most once for any footprint >= HOT_BLOCK.
    let mut at = block * DISPERSAL + within;
    while at >= span {
        at -= span;
    }
    at
}

/// Specification of one reference pattern (footprints in bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternSpec {
    /// `streams` interleaved sequential sweeps of `stride` bytes covering a
    /// combined `footprint`.
    Strided {
        /// Total bytes covered by all streams.
        footprint: u64,
        /// Access stride in bytes.
        stride: u64,
        /// Number of concurrently advancing streams.
        streams: u32,
    },
    /// Uniform references within `footprint` bytes, with a tunable
    /// probability of re-referencing the previously touched line (spatial
    /// locality: real irregular code touches two to four words per line).
    Random {
        /// Working-set size in bytes.
        footprint: u64,
        /// Probability that a reference re-touches the previous line at a
        /// different offset instead of picking a new random line.
        reuse: f64,
    },
    /// High-locality random walk within `footprint` bytes.
    Stack {
        /// Region size in bytes.
        footprint: u64,
    },
    /// Dependent pointer chase within `footprint` bytes.
    Chase {
        /// Pool size in bytes.
        footprint: u64,
    },
}

impl PatternSpec {
    /// The pattern's footprint in bytes.
    pub fn footprint(&self) -> u64 {
        match *self {
            PatternSpec::Strided { footprint, .. }
            | PatternSpec::Random { footprint, .. }
            | PatternSpec::Stack { footprint }
            | PatternSpec::Chase { footprint } => footprint,
        }
    }

    /// `true` if loads from this pattern serialize on the previous load.
    pub fn is_dependent(&self) -> bool {
        matches!(self, PatternSpec::Chase { .. })
    }
}

/// Instantiated pattern state bound to a base address.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PatternState {
    spec: PatternSpec,
    base: u64,
    /// Per-stream cursors (strided), or walk position (stack), or current
    /// pointer (chase).
    cursors: Vec<u64>,
    next_stream: usize,
    /// Precomputed [`dispersal_span`] of the footprint (irregular
    /// patterns reference it on every address).
    span: u64,
}

impl PatternState {
    pub(crate) fn new(spec: PatternSpec, base: u64, rng: &mut Rng) -> Self {
        let cursors = match spec {
            PatternSpec::Strided { footprint, streams, .. } => {
                let streams = streams.max(1) as u64;
                // Skew each stream's start by a non-power-of-two amount so
                // concurrent streams do not alias to the same cache set (as
                // real arrays allocated at arbitrary offsets do not).
                (0..streams).map(|i| (i * (footprint / streams) + i * 104) % footprint).collect()
            }
            PatternSpec::Stack { footprint } => vec![footprint / 2],
            PatternSpec::Chase { footprint } => vec![rng.below(footprint.max(8)) & !7],
            PatternSpec::Random { footprint, .. } => vec![rng.below(footprint.max(8)) & !7],
        };
        PatternState { spec, base, cursors, next_stream: 0, span: dispersal_span(spec.footprint()) }
    }

    pub(crate) fn spec(&self) -> PatternSpec {
        self.spec
    }

    /// Produces the next referenced address (8-byte aligned).
    pub(crate) fn next_addr(&mut self, rng: &mut Rng) -> u64 {
        match self.spec {
            PatternSpec::Strided { footprint, stride, streams } => {
                let streams = streams.max(1) as usize;
                let i = self.next_stream;
                self.next_stream = (self.next_stream + 1) % streams;
                let at = self.cursors[i];
                // `cursor < wrap` and `stride <= wrap` always hold, so the
                // wrap is one conditional subtract, not a hardware divide.
                let wrap = footprint.max(stride);
                let next = at + stride;
                self.cursors[i] = if next >= wrap { next - wrap } else { next };
                scatter(self.base, at & !7)
            }
            PatternSpec::Random { footprint, reuse } => {
                let pos = &mut self.cursors[0];
                if rng.chance(reuse) {
                    // Re-touch the same 32-byte line at another word.
                    *pos = (*pos & !31) | (rng.below(4) * 8);
                } else {
                    *pos = rng.below(footprint.max(8)) & !7;
                }
                scatter(self.base, disperse(*pos, self.span))
            }
            PatternSpec::Stack { footprint } => {
                // Short random walk: mostly re-touch the same few lines,
                // occasionally jump a frame (128 B) up or down.
                let pos = &mut self.cursors[0];
                if rng.chance(0.12) {
                    let frame = 128;
                    *pos = if rng.chance(0.5) { pos.saturating_sub(frame) } else { *pos + frame };
                } else {
                    let jitter = rng.below(64) & !7;
                    *pos = (*pos & !63) + jitter;
                }
                if *pos >= footprint {
                    *pos = footprint / 2;
                }
                scatter(self.base, *pos & !7)
            }
            PatternSpec::Chase { footprint } => {
                let next = rng.below(footprint.max(8)) & !7;
                self.cursors[0] = next;
                scatter(self.base, disperse(next, self.span))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(spec: PatternSpec, n: usize) -> Vec<u64> {
        let mut rng = Rng::new(1);
        let mut st = PatternState::new(spec, 0x10_0000, &mut rng);
        (0..n).map(|_| st.next_addr(&mut rng)).collect()
    }

    #[test]
    fn strided_advances_by_stride() {
        let a = addrs(PatternSpec::Strided { footprint: 1024, stride: 8, streams: 1 }, 4);
        assert_eq!(a, vec![0x10_0000, 0x10_0008, 0x10_0010, 0x10_0018]);
    }

    #[test]
    fn strided_wraps_within_footprint() {
        let a = addrs(PatternSpec::Strided { footprint: 64, stride: 16, streams: 1 }, 10);
        for addr in &a {
            assert!((0x10_0000..0x10_0000 + 64).contains(addr));
        }
        assert_eq!(a[4], a[0], "sweep should wrap after footprint/stride accesses");
    }

    #[test]
    fn strided_streams_interleave() {
        let a = addrs(PatternSpec::Strided { footprint: 1024, stride: 8, streams: 2 }, 4);
        // Stream 0 starts at 0, stream 1 near half the footprint (skewed by
        // 104 bytes to avoid cache-set aliasing between streams).
        assert_eq!(a[0], 0x10_0000);
        assert_eq!(a[1], 0x10_0000 + 512 + 104);
        assert_eq!(a[2], 0x10_0008);
        assert_eq!(a[3], 0x10_0000 + 512 + 104 + 8);
    }

    #[test]
    fn random_stays_in_dispersed_window() {
        // Hot blocks are dispersed at 20% occupancy, so a 4 KB footprint
        // spans 5x the bytes — still inside the region's address window.
        let span = 4096 * 5;
        for addr in addrs(PatternSpec::Random { footprint: 4096, reuse: 0.5 }, 1000) {
            assert!((0x10_0000..0x10_0000 + 32 * (1 << 20)).contains(&addr));
            let _ = span;
            assert_eq!(addr % 8, 0, "addresses are 8-byte aligned");
        }
    }

    #[test]
    fn dispersal_keeps_distinct_lines_distinct() {
        // The hot-block dispersal is a bijection: two logical lines never
        // collapse onto one physical line.
        let span = super::dispersal_span(4096);
        hbc_ptest::assert_injective("hot-block dispersal", 0..128u64, |&logical_line| {
            super::disperse(logical_line * 32, span) / 32
        });
    }

    #[test]
    fn random_reuse_controls_line_locality() {
        let same_line_frac = |reuse| {
            let a = addrs(PatternSpec::Random { footprint: 1 << 20, reuse }, 4000);
            a.windows(2).filter(|w| w[0] / 32 == w[1] / 32).count() as f64 / (a.len() - 1) as f64
        };
        assert!(same_line_frac(0.0) < 0.01);
        let hot = same_line_frac(0.6);
        assert!((0.5..0.7).contains(&hot), "observed {hot}");
    }

    #[test]
    fn stack_has_high_line_locality() {
        let a = addrs(PatternSpec::Stack { footprint: 4096 }, 2000);
        let same_line = a.windows(2).filter(|w| w[0] / 32 == w[1] / 32).count();
        let frac = same_line as f64 / (a.len() - 1) as f64;
        assert!(frac > 0.4, "stack walk should mostly re-touch lines, got {frac}");
        for addr in a {
            assert!((0x10_0000..0x10_0000 + 4096).contains(&addr));
        }
    }

    #[test]
    fn chase_is_dependent() {
        assert!(PatternSpec::Chase { footprint: 1 << 20 }.is_dependent());
        assert!(!PatternSpec::Random { footprint: 1 << 20, reuse: 0.5 }.is_dependent());
    }

    #[test]
    fn footprint_accessor() {
        assert_eq!(PatternSpec::Stack { footprint: 4096 }.footprint(), 4096);
        assert_eq!(
            PatternSpec::Strided { footprint: 65536, stride: 8, streams: 4 }.footprint(),
            65536
        );
    }
}
