//! Deterministic synthetic workload models for the nine benchmarks of
//! Wilson & Olukotun, *"Designing High Bandwidth On-Chip Caches"*
//! (ISCA 1997).
//!
//! The paper drives its simulations with SimOS running IRIX 5.3: SPEC95
//! integer (gcc, li, compress), SPEC95 floating point (tomcatv, su2cor,
//! apsi), and three multiprogramming workloads (pmake, database, VCS),
//! including operating-system references. Those traces are not available;
//! this crate substitutes parameterized stochastic models that reproduce the
//! properties the paper's results actually depend on:
//!
//! * the instruction mix of Table 2 (load/store percentages, kernel vs user
//!   split, idle time),
//! * group-level instruction-level parallelism (floating-point codes carry
//!   long dependency distances, integer codes short ones),
//! * branch density and predictability per group,
//! * working-set structure that reproduces the Figure 3 miss-rate-vs-size
//!   curves: stack-like high-locality references, irregular working sets,
//!   array sweeps with sharp miss drops, dependent pointer chases, and
//!   multi-process context switching.
//!
//! Every stream is a pure function of `(spec, seed)` — see [`WorkloadGen`].
//!
//! # Example
//!
//! ```
//! use hbc_workloads::{Benchmark, StreamStats, WorkloadGen};
//!
//! let mut gen = WorkloadGen::new(Benchmark::Tomcatv, 42);
//! let stats = StreamStats::characterize(&mut gen, 10_000);
//! assert!(stats.fp_pct() > 20.0); // tomcatv is floating-point heavy
//! ```

#![warn(missing_docs)]

mod benchmarks;
mod gen;
mod regions;
mod rng;
mod spec;
mod stats;

pub use benchmarks::{Benchmark, UnknownBenchmarkError};
pub use gen::WorkloadGen;
pub use regions::PatternSpec;
pub use rng::Rng;
pub use spec::{BenchmarkSpec, Group, SpecError, Table2Row};
pub use stats::StreamStats;
